"""Quickstart: estimate an index's compression fraction from a sample.

Builds a realistic single-column table in the bundled storage engine,
runs the paper's SampleCF estimator (Figure 2) for both compression
techniques the paper analyses, and compares against the exact answer
obtained by actually compressing the full index.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (DictionaryCompression, NullSuppression, SampleCF,
                   make_table, ns_confidence_interval, ratio_error,
                   true_cf_table)


def main() -> None:
    # A 50k-row table with 1,000 distinct CHAR(20) values, Zipf-skewed —
    # the kind of warehouse dimension column compression loves.
    print("building a 50,000-row table (char(20), d=1000, zipf) ...")
    table = make_table(n=50_000, d=1_000, k=20, distribution="zipf",
                       seed=7)

    fraction = 0.02
    for algorithm in (NullSuppression(), DictionaryCompression()):
        estimator = SampleCF(algorithm)
        estimate = estimator.estimate_table(table, fraction, ["a"],
                                            seed=42)
        truth = true_cf_table(table, ["a"], algorithm)
        print(f"\n{algorithm.name}")
        print(f"  sample          : {estimate.sample_rows} rows "
              f"({fraction:.0%})")
        print(f"  estimated CF'   : {estimate.estimate:.4f}")
        print(f"  true CF         : {truth:.4f}")
        print(f"  ratio error     : "
              f"{ratio_error(truth, estimate.estimate):.4f}")
        print(f"  space savings   : {1 - estimate.estimate:.1%} "
              f"(estimated)")
        if isinstance(algorithm, NullSuppression):
            interval = ns_confidence_interval(
                estimate.estimate, estimate.sample_rows, confidence=0.95)
            print(f"  95% interval    : [{interval.low:.4f}, "
                  f"{interval.high:.4f}]  (Theorem 1)")
            inside = "yes" if interval.contains(truth) else "no"
            print(f"  truth inside?   : {inside}")
        else:
            print("  note: dictionary estimates overshoot whenever the "
                  "sample is small relative to d")
            print("  (Section III-B ties this to distinct-value "
                  "estimation hardness). Larger samples converge:")
            for larger in (0.1, 0.5):
                converged = estimator.estimate_table(
                    table, larger, ["a"], seed=42)
                print(f"    f={larger:>4.0%}: CF' = "
                      f"{converged.estimate:.4f} (ratio error "
                      f"{ratio_error(truth, converged.estimate):.3f})")


if __name__ == "__main__":
    main()
