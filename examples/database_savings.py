"""The headline API: estimate_compression_savings on a database catalog.

Mirrors the workflow around SQL Server's
``sp_estimate_data_compression_savings`` — the shipped feature whose
estimator the paper analyses: create a database, load tables, ask for
the estimated savings of compressing each candidate index, persist the
database, and show that estimates survive a reload.

Run:  python examples/database_savings.py
"""

from __future__ import annotations

import tempfile

from repro.storage.catalog import Database
from repro.storage.index import IndexKind
from repro.workloads import make_multicolumn_table

PAGE = 4096


def main() -> None:
    db = Database("warehouse", page_size=PAGE)
    print(f"creating database {db.name!r} ...")
    db.attach(make_multicolumn_table(
        "orders", 8_000,
        [("status", 10, 6), ("customer", 24, 700), ("region", 12, 20)],
        page_size=PAGE, seed=1))
    db.attach(make_multicolumn_table(
        "parts", 5_000, [("sku", 24, 400), ("brand", 16, 30)],
        page_size=PAGE, seed=2))

    print("\nestimated compression savings (1% samples):")
    candidates = [
        ("orders", ["status"], IndexKind.NONCLUSTERED),
        ("orders", ["customer"], IndexKind.NONCLUSTERED),
        ("orders", ["status", "region"], IndexKind.NONCLUSTERED),
        ("parts", ["sku"], IndexKind.NONCLUSTERED),
        ("orders", ["status"], IndexKind.CLUSTERED),
    ]
    for table, columns, kind in candidates:
        for algorithm in ("null_suppression", "page"):
            report = db.estimate_compression_savings(
                table, columns, algorithm=algorithm, fraction=0.01,
                kind=kind, seed=42)
            print(f"  {report.describe()}")

    with tempfile.TemporaryDirectory() as scratch:
        print(f"\npersisting to {scratch} and reloading ...")
        db.save(scratch)
        restored = Database.load("warehouse", scratch)
        report = restored.estimate_compression_savings(
            "orders", ["status"], algorithm="page", fraction=0.01,
            seed=42)
        print(f"  after reload: {report.describe()}")


if __name__ == "__main__":
    main()
