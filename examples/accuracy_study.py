"""Accuracy study: a desk-size version of the paper's Table II.

Measures SampleCF's bias, standard deviation and ratio error for both
compression techniques in both distinct-count regimes, prints the grid
next to the analytic bounds (Theorems 1-3), and demonstrates the
histogram fast path at the paper's Example 1 scale (100M rows).

Run:  python examples/accuracy_study.py
"""

from __future__ import annotations

from repro import (GlobalDictionaryCompression, NullSuppression,
                   SampleCF, dict_large_d_bound, dict_small_d_bound,
                   make_histogram, ns_stddev_bound)
from repro.core.cf_models import global_dictionary_cf, ns_cf
from repro.core.metrics import ErrorSummary
from repro.experiments import format_table, run_trials

N = 200_000
K = 20
P = 2
F = 0.01
TRIALS = 100


def measure(histogram, algorithm, truth, seed) -> ErrorSummary:
    estimator = SampleCF(algorithm)
    estimates = run_trials(
        lambda rng: estimator.estimate_histogram(histogram, F,
                                                 seed=rng).estimate,
        trials=TRIALS, seed=seed)
    return ErrorSummary.from_estimates(truth, estimates)


def main() -> None:
    small = make_histogram(N, 100, K, distribution="zipf", seed=1)
    large = make_histogram(N, N // 2, K,
                           distribution="singleton_heavy", seed=2)

    rows = []
    for regime, histogram in (("small d (100)", small),
                              (f"large d ({N // 2:,})", large)):
        ns_summary = measure(histogram, NullSuppression(),
                             ns_cf(histogram), 10)
        dict_truth = global_dictionary_cf(histogram, pointer_bytes=P)
        dict_summary = measure(
            histogram, GlobalDictionaryCompression(pointer_bytes=P),
            dict_truth, 11)
        rows.append(["null_suppression", regime,
                     f"{ns_summary.bias:+.6f}",
                     f"{ns_summary.std:.6f}",
                     f"{ns_summary.mean_ratio_error:.4f}"])
        rows.append(["global_dictionary", regime,
                     f"{dict_summary.bias:+.6f}",
                     f"{dict_summary.std:.6f}",
                     f"{dict_summary.mean_ratio_error:.4f}"])
    print(format_table(
        ["algorithm", "regime", "bias", "sigma", "mean ratio error"],
        rows,
        title=f"SampleCF accuracy (n={N:,}, f={F:.0%}, "
              f"{TRIALS} trials/cell)"))

    print("\nanalytic context:")
    print(f"  Theorem 1 sigma bound          : "
          f"{ns_stddev_bound(n=N, f=F):.6f}")
    print(f"  Theorem 2 bound (d=100)        : "
          f"{dict_small_d_bound(N, 100, K, P, F).bound:.4f}")
    print(f"  Theorem 3 bound (alpha=0.5)    : "
          f"{dict_large_d_bound(0.5, F, K, P).bound:.4f}")

    print("\nExample 1 scale (n = 100M, r = 1M) on the histogram path:")
    big = make_histogram(100_000_000, 5_000, K, seed=3)
    estimator = SampleCF(NullSuppression())
    estimate = estimator.estimate_histogram(big, 0.01, seed=4)
    print(f"  estimated CF' = {estimate.estimate:.6f} from "
          f"{estimate.sample_rows:,} sampled rows "
          f"(true CF = {ns_cf(big):.6f}; "
          f"sigma bound 0.0005)")


if __name__ == "__main__":
    main()
