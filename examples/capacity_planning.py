"""Capacity planning: size an archive without compressing anything.

The paper's second application (Section I): "estimate the amount of
storage space required for data archival". This example builds three
tables of different shapes, asks the capacity planner for a compressed
size estimate per table (1% samples), and prints the plan with the
Theorem 1 safety margins a storage team would quote.

Run:  python examples/capacity_planning.py
"""

from __future__ import annotations

from repro import get_scenario
from repro.advisor import plan_capacity
from repro.workloads import histogram_to_table

PAGE = 8192


def main() -> None:
    print("materialising three archival candidates ...")
    tables = []
    for scenario_name, rows in (("customer_names", 30_000),
                                ("status_codes", 40_000),
                                ("order_comments", 8_000)):
        scenario = get_scenario(scenario_name)
        histogram = scenario.build(rows, seed=11)
        table = histogram_to_table(histogram, name=scenario_name,
                                   page_size=PAGE, seed=12)
        tables.append(table)
        print(f"  {scenario_name}: {rows:,} rows, k={scenario.k}, "
              f"d={histogram.d:,} — {scenario.description}")

    print("\nnull-suppression archival plan (f = 1%):")
    plan = plan_capacity(tables, algorithm="null_suppression",
                         fraction=0.01, seed=13)
    print(plan.describe())

    print("\nPAGE-compression archival plan (f = 1%):")
    plan = plan_capacity(tables, algorithm="page", fraction=0.01,
                         seed=14)
    print(plan.describe())

    savings = 1 - plan.total_compressed_bytes / \
        plan.total_uncompressed_bytes
    print(f"\nestimated archive savings with PAGE compression: "
          f"{savings:.1%}")


if __name__ == "__main__":
    main()
