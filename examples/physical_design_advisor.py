"""Physical design under a storage bound — the paper's motivating app.

Section I: automated physical design tools take a workload and a
storage bound and pick indexes; handling compression requires exactly
the estimate SampleCF provides. This example builds a small star-schema
workload, enumerates compressed and uncompressed index candidates sized
by SampleCF, and runs the greedy storage-bounded selection, showing how
compression lets more indexes fit the bound.

Run:  python examples/physical_design_advisor.py
"""

from __future__ import annotations

from repro import CostModel, Query, TableStats
from repro.advisor import enumerate_candidates, select_indexes
from repro.advisor.selection import design_summary
from repro.workloads import make_multicolumn_table

PAGE = 4096


def main() -> None:
    print("building a 3-table schema ...")
    tables = {
        "orders": make_multicolumn_table(
            "orders", 6_000,
            [("status", 10, 6), ("customer", 24, 500),
             ("region", 12, 20)],
            page_size=PAGE, seed=1),
        "parts": make_multicolumn_table(
            "parts", 4_000, [("sku", 24, 400), ("brand", 16, 30)],
            page_size=PAGE, seed=2),
    }
    queries = [
        Query("q_status", "orders", ("status",), selectivity=0.25,
              weight=10),
        Query("q_customer", "orders", ("customer",), selectivity=0.02,
              weight=6),
        Query("q_region", "orders", ("region",), selectivity=0.10,
              weight=4),
        Query("q_sku", "parts", ("sku",), selectivity=0.05, weight=5),
        Query("q_brand", "parts", ("brand",), selectivity=0.15,
              weight=2),
    ]
    stats = {name: TableStats(name, table.num_rows,
                              table.heap.num_pages)
             for name, table in tables.items()}

    print("enumerating candidates (sizes via SampleCF, f = 2%) ...")
    candidates = enumerate_candidates(tables, queries, algorithm="page",
                                      fraction=0.02, seed=3)
    print(f"  {len(candidates)} candidates "
          f"({sum(c.compressed for c in candidates)} compressed)")
    for candidate in candidates:
        note = (f"CF~{candidate.estimated_cf:.3f}"
                if candidate.estimated_cf is not None else "uncompressed")
        print(f"  {candidate.name:42s} {candidate.size_bytes:>10,.0f} B "
              f"({note})")

    for bound in (300_000.0, 120_000.0):
        print(f"\n=== storage bound: {bound:,.0f} bytes ===")
        result = select_indexes(candidates, queries, stats, bound,
                                CostModel(page_size=PAGE))
        print(design_summary(result))
        for step in result.steps:
            print(f"  step: {step}")


if __name__ == "__main__":
    main()
