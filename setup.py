"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so PEP 660 editable
installs cannot build; this shim lets ``pip install -e .`` use the legacy
``setup.py develop`` path. All metadata lives in pyproject.toml and is
duplicated minimally here because legacy installs cannot read the
``[project]`` table with the preinstalled setuptools.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Estimating the Compression Fraction of an "
        "Index using Sampling' (ICDE 2010)"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
