"""Experiment `micro-storage` — storage-engine microbenchmarks and
fidelity checks.

Times the primitives everything else is built on (page fill, heap
insert, B+-tree bulk load and search, per-algorithm compression
throughput) and re-asserts the load-bearing fidelity property: payload
accounting equals the closed-form models exactly.
"""

from __future__ import annotations

import pytest

from repro.storage.btree import BPlusTree
from repro.storage.heap import HeapFile
from repro.storage.page import Page
from repro.storage.record import encode_record
from repro.storage.schema import single_char_schema
from repro.compression.registry import get_algorithm, list_algorithms
from repro.core.samplecf import true_cf_table
from repro.experiments.report import format_table
from repro.workloads.generators import histogram_to_table, make_histogram

from _common import write_report

K = 20
SCHEMA = single_char_schema(K)
PAGE = 8192


@pytest.fixture(scope="module")
def records() -> list[bytes]:
    histogram = make_histogram(50_000, 1_000, K, seed=1100)
    return [encode_record(SCHEMA, (value,))
            for value in histogram.expand("sorted")]


def test_page_fill(benchmark, records):
    def fill() -> int:
        page = Page(PAGE)
        count = 0
        for record in records:
            if not page.fits(record):
                break
            page.insert(record)
            count += 1
        return count

    filled = benchmark(fill)
    assert filled == (PAGE - 16) // (K + 4)


def test_heap_bulk_insert(benchmark, records):
    def load() -> HeapFile:
        heap = HeapFile(page_size=PAGE)
        heap.insert_many(records[:10_000])
        return heap

    heap = benchmark(load)
    assert heap.num_records == 10_000


def test_btree_bulk_load(benchmark, records):
    entries = [((record,), record) for record in records[:20_000]]

    def load() -> BPlusTree:
        return BPlusTree.bulk_load(entries, page_size=PAGE,
                                   presorted=True)

    tree = benchmark(load)
    assert tree.num_entries == 20_000


def test_btree_point_search(benchmark, records):
    entries = [((record,), record) for record in records[:20_000]]
    tree = BPlusTree.bulk_load(entries, page_size=PAGE, presorted=True)
    probe = entries[12_345][0]

    found = benchmark(tree.search, probe)
    assert found


@pytest.mark.parametrize("name", sorted(list_algorithms()))
def test_compression_throughput(benchmark, records, name):
    algorithm = get_algorithm(name)
    page_records = records[:300]  # one page's worth at 8 KiB
    block = benchmark(algorithm.compress, page_records, SCHEMA)
    assert block.row_count == 300
    assert algorithm.decompress(block, SCHEMA) == page_records


def test_fidelity_payload_equals_models(benchmark):
    """The engine's payload CF equals every closed form, byte-exactly."""
    histogram = make_histogram(20_000, 400, K, seed=1111)
    table = histogram_to_table(histogram, page_size=PAGE, seed=1112)

    def check() -> list[list[str]]:
        rows = []
        for name in ("null_suppression", "dictionary",
                     "global_dictionary", "rle"):
            algorithm = get_algorithm(name)
            engine = true_cf_table(table, ["a"], algorithm,
                                   page_size=PAGE)
            model = algorithm.cf_from_histogram(histogram,
                                                page_size=PAGE)
            assert engine == pytest.approx(model, abs=1e-12), name
            rows.append([name, f"{engine:.6f}", f"{model:.6f}"])
        return rows

    rows = benchmark.pedantic(check, rounds=1, iterations=1)
    write_report("micro_storage_fidelity", format_table(
        ["algorithm", "engine CF (payload)", "closed-form CF"], rows,
        title="Engine vs model fidelity (20k rows, byte-exact)"))
