"""Experiment `ex1` — Example 1 at the paper's true scale.

"Suppose that table T has n = 100 million rows [and] we draw a sample of
size r = 1 million (a 1% sample). Then Theorem 1 implies that the
standard deviation of CF'_NS is at most 0.0005."

The histogram fast path makes the literal scale tractable: uniform row
sampling over 100M rows is a multinomial draw over the value histogram,
so each trial costs milliseconds instead of a 100M-row table scan. The
substitution is exact in distribution (DESIGN.md, substitutions table).
"""

from __future__ import annotations

import math

import pytest

from repro.compression.null_suppression import NullSuppression
from repro.core.bounds import example1, ns_stddev_bound
from repro.core.cf_models import ns_cf
from repro.core.metrics import ErrorSummary
from repro.core.samplecf import SampleCF
from repro.experiments.report import format_table
from repro.experiments.runner import run_trials
from repro.workloads.generators import make_histogram

from _common import write_report

N = 100_000_000
R = 1_000_000
F = R / N
K = 20
TRIALS = 60


@pytest.fixture(scope="module")
def measurements() -> dict:
    histogram = make_histogram(N, 5_000, K, distribution="zipf",
                               min_len=2, max_len=18, seed=404)
    truth = ns_cf(histogram)
    estimator = SampleCF(NullSuppression())
    estimates = run_trials(
        lambda rng: estimator.estimate_histogram(histogram, F,
                                                 seed=rng).estimate,
        trials=TRIALS, seed=405)
    return {"histogram": histogram,
            "summary": ErrorSummary.from_estimates(truth, estimates)}


def test_ex1_single_estimate_throughput(benchmark, measurements):
    """Time one full 1M-row estimate at the 100M-row scale."""
    histogram = measurements["histogram"]
    estimator = SampleCF(NullSuppression())
    estimate = benchmark(estimator.estimate_histogram, histogram, F, 42)
    assert estimate.sample_rows == R
    # The granular tests below are skipped under --benchmark-only, so
    # Example 1's claims are asserted here as well.
    test_ex1_sigma_below_paper_bound(measurements)
    test_ex1_unbiased(measurements)
    test_ex1_bound_matches_formula(measurements)


def test_ex1_sigma_below_paper_bound(measurements):
    paper = example1()
    summary = measurements["summary"]
    assert paper["stddev_bound"] == pytest.approx(0.0005)
    assert summary.std <= paper["stddev_bound"]

    rows = [
        ["n (rows)", f"{N:,}"],
        ["r (sample)", f"{R:,} (f = {F:.0%})"],
        ["paper bound on sigma", f"{paper['stddev_bound']:.6f}"],
        ["measured sigma", f"{summary.std:.6f}"],
        ["measured |bias|", f"{abs(summary.bias):.7f}"],
        ["true CF", f"{summary.true_value:.6f}"],
        ["trials", str(summary.trials)],
    ]
    write_report("ex1", format_table(
        ["Example 1 quantity", "value"], rows,
        title="Example 1 at paper scale (100M rows, 1M-row samples)"))


def test_ex1_unbiased(measurements):
    summary = measurements["summary"]
    standard_error = max(summary.std / math.sqrt(summary.trials), 1e-12)
    assert abs(summary.bias) <= 5 * standard_error


def test_ex1_bound_matches_formula(measurements):
    assert ns_stddev_bound(n=N, f=F) == pytest.approx(0.0005)
