"""Experiment `engine-batching` — shared samples vs. naive advisor loop.

The engine's reason to exist: a physical-design advisor sizing
(column-set × algorithm) candidates over the same tables should pay for
one sample per table, not one per candidate. This bench runs the same
candidate-sizing workload twice —

* **naive** — the historical per-candidate loop
  (:func:`enumerate_candidates` once per algorithm: every compressed
  candidate draws, decodes, and indexes its own sample);
* **batched** — one :class:`EstimationEngine` batch
  (:func:`enumerate_candidates_batch`): per table one materialized
  sample, per column set one built index, shared by all algorithms —

and asserts the batched path is faster while producing equivalent
estimates and the reuse the engine's stats promise.
"""

from __future__ import annotations

import pytest

from repro.advisor.candidates import (enumerate_candidates,
                                      enumerate_candidates_batch,
                                      workload_key_sets)
from repro.advisor.cost import Query
from repro.engine import EstimationEngine
from repro.experiments.report import format_table
from repro.experiments.runner import timed
from repro.workloads.generators import make_multicolumn_table

from _common import emit_result

PAGE = 4096
FRACTION = 0.05
#: A realistic advisor sweep: every per-page/per-index technique that
#: could win on some column. The more algorithms probe a column set,
#: the more the shared sample index amortizes.
ALGORITHMS = ["null_suppression", "null_suppression_runs",
              "global_dictionary", "dictionary", "prefix", "delta"]


@pytest.fixture(scope="module")
def workload() -> dict:
    orders = make_multicolumn_table(
        "orders", 12_000,
        [("status", 10, 6), ("customer", 24, 500), ("region", 12, 20)],
        page_size=PAGE, seed=4100)
    parts = make_multicolumn_table(
        "parts", 8_000, [("sku", 24, 400), ("brand", 16, 30)],
        page_size=PAGE, seed=4101)
    shipments = make_multicolumn_table(
        "shipments", 10_000, [("carrier", 14, 8), ("dest", 20, 300)],
        page_size=PAGE, seed=4102)
    tables = {"orders": orders, "parts": parts, "shipments": shipments}
    queries = [
        Query("q1", "orders", ("status",), selectivity=0.25, weight=10),
        Query("q2", "orders", ("customer",), selectivity=0.02, weight=6),
        Query("q3", "orders", ("region",), selectivity=0.1, weight=4),
        Query("q4", "orders", ("status", "region"), selectivity=0.05,
              weight=3),
        Query("q5", "parts", ("sku",), selectivity=0.05, weight=5),
        Query("q6", "parts", ("brand",), selectivity=0.15, weight=2),
        Query("q7", "shipments", ("carrier",), selectivity=0.3, weight=4),
        Query("q8", "shipments", ("dest",), selectivity=0.03, weight=3),
    ]
    return {"tables": tables, "queries": queries}


def _naive(workload: dict) -> list:
    # seed=None gives every candidate fresh entropy — the historical
    # per-candidate behaviour. (A fixed seed would replay identical
    # per-candidate seeds across the algorithm loop and let the
    # SampleCF facade's shared engine cache-hit, quietly turning the
    # "naive" baseline into a batched run.)
    candidates = []
    for algorithm in ALGORITHMS:
        candidates.extend(enumerate_candidates(
            workload["tables"], workload["queries"], algorithm=algorithm,
            fraction=FRACTION, size_source="samplecf", seed=None))
    return candidates


def _batched(workload: dict, engine: EstimationEngine) -> list:
    return enumerate_candidates_batch(
        workload["tables"], workload["queries"], algorithms=ALGORITHMS,
        fraction=FRACTION, engine=engine)


def test_engine_batching(benchmark, workload):
    engine = EstimationEngine(seed=1234)
    naive = timed(lambda: _naive(workload))
    batched = timed(lambda: _batched(workload, engine))
    benchmark.pedantic(
        _batched, args=(workload, EstimationEngine(seed=1234)),
        rounds=1, iterations=1)

    key_sets = workload_key_sets(workload["tables"], workload["queries"])
    stats = engine.stats.as_dict()
    naive_samples = len(key_sets) * len(ALGORITHMS)
    speedup = naive.seconds / batched.seconds
    rows = [
        ["naive per-candidate", f"{naive.seconds * 1e3:,.1f}",
         str(naive_samples), str(naive_samples), "1.00x"],
        ["engine batched", f"{batched.seconds * 1e3:,.1f}",
         str(stats["samples_materialized"]),
         str(stats["indexes_built"]), f"{speedup:.2f}x"],
    ]
    emit_result(
        "engine_batching",
        {"naive_seconds": naive.seconds,
         "batched_seconds": batched.seconds,
         "naive_samples": naive_samples,
         "samples_materialized": stats["samples_materialized"],
         "indexes_built": stats["indexes_built"],
         "speedup": speedup},
        parameters={"fraction": FRACTION, "page_size": PAGE,
                    "algorithms": list(ALGORITHMS),
                    "key_sets": len(key_sets)},
        text=format_table(
            ["method", "ms", "samples drawn", "indexes built",
             "speedup"], rows,
            title=f"Candidate sizing: {len(key_sets)} key sets x "
                  f"{len(ALGORITHMS)} algorithms at f={FRACTION:.0%}"))

    # The reuse contract: one sample per table, one index per key set.
    assert stats["samples_materialized"] == len(workload["tables"])
    assert stats["indexes_built"] == len(key_sets)
    assert stats["index_reuse_hits"] == \
        len(key_sets) * (len(ALGORITHMS) - 1)
    # The point of the PR: batching beats the naive loop outright.
    assert batched.seconds < naive.seconds

    # Estimates agree with the naive path (different seeds, same
    # population) — no accuracy was traded for the speedup.
    naive_cf = {(c.table, c.key_columns, c.algorithm): c.estimated_cf
                for c in naive.value if c.compressed}
    for candidate in batched.value:
        if not candidate.compressed:
            continue
        twin = naive_cf[(candidate.table, candidate.key_columns,
                         candidate.algorithm)]
        assert 0.5 * twin < candidate.estimated_cf < 2.0 * twin


def test_warm_cache_amortizes_repeat_runs(workload):
    engine = EstimationEngine(seed=99)
    cold = timed(lambda: _batched(workload, engine))
    warm = timed(lambda: _batched(workload, engine))
    assert engine.stats["samples_materialized"] == \
        len(workload["tables"])  # second run drew nothing new
    assert warm.seconds < cold.seconds
