"""Experiment `thm2` — Theorem 2: dictionary compression, small d.

With ``d(n) = o(n)`` and a fixed sampling fraction, the ``p/k`` term of
the simplified model dominates and SampleCF's expected ratio error
approaches 1 as n grows. We sweep n with ``d = ceil(sqrt(n))`` and
overlay the deterministic bound ``1 + d k / (f n p)`` — the series the
paper's figure for Theorem 2 would plot.
"""

from __future__ import annotations

import math

import pytest

from repro.compression.global_dictionary import GlobalDictionaryCompression
from repro.core.bounds import dict_small_d_bound
from repro.core.cf_models import global_dictionary_cf
from repro.engine.requests import EstimationRequest, derive_seed
from repro.experiments.report import format_table
from repro.experiments.runner import engine_sweep
from repro.workloads.generators import make_histogram

from _common import bench_store, emit_result

K = 20
P = 2
F = 0.01
TRIALS = 40
# With d = sqrt(n), f = 1%, k = 20, p = 2 the bound is 1 + 1000/sqrt(n):
# the last point (n = 100M, the paper's Example 1 scale) brings it to
# 1.1. Only the histogram fast path makes that point affordable.
SIZES = (10_000, 100_000, 1_000_000, 10_000_000, 100_000_000)


def _sweep(sizes) -> list[dict]:
    """The whole size series as one engine_sweep batch."""
    def make(n: int):
        d = max(2, math.isqrt(n))
        histogram = make_histogram(n, d, K, distribution="zipf",
                                   seed=500 + d)
        truth = global_dictionary_cf(histogram, pointer_bytes=P)
        request = EstimationRequest(
            histogram=histogram,
            algorithm=GlobalDictionaryCompression(pointer_bytes=P),
            fraction=F, label=f"thm2_n{n}")
        return truth, request, {"d": d}

    points = []
    for point in engine_sweep(sizes, make, trials=TRIALS,
                              seed=derive_seed("thm2", "trials"),
                              store=bench_store()):
        n = point.parameter
        d = point.extra["d"]
        points.append({
            "n": n,
            "d": d,
            "truth": point.summary.true_value,
            "mean_error": point.summary.mean_ratio_error,
            "max_error": point.summary.max_ratio_error,
            "bound": dict_small_d_bound(n, d, K, P, F).bound,
        })
    return points


@pytest.fixture(scope="module")
def series() -> list[dict]:
    return _sweep(SIZES)


def test_thm2_sweep(benchmark, series):
    benchmark.pedantic(lambda: _sweep(SIZES[:1]), rounds=1, iterations=1)
    rows = [[f"{point['n']:,}", f"{point['d']:,}",
             f"{point['truth']:.5f}", f"{point['mean_error']:.4f}",
             f"{point['max_error']:.4f}", f"{point['bound']:.4f}"]
            for point in series]
    emit_result(
        "thm2", series,
        parameters={"k": K, "p": P, "fraction": F, "trials": TRIALS,
                    "sizes": list(SIZES)},
        text=format_table(
            ["n", "d = sqrt(n)", "true CF", "mean ratio err",
             "max ratio err", "bound 1 + dk/(fnp)"], rows,
            title=f"Theorem 2 — small d (f={F:.0%}, {TRIALS} "
                  f"trials/point)"))
    # Assert the theorem's claims inside the bench run too (the
    # granular tests below are skipped under --benchmark-only).
    test_thm2_all_points_within_bound(series)
    test_thm2_error_converges_to_one(series)
    test_thm2_bound_converges_to_one(series)


def test_thm2_all_points_within_bound(series):
    for point in series:
        assert point["max_error"] <= point["bound"] + 1e-9, point["n"]


def test_thm2_error_converges_to_one(series):
    errors = [point["mean_error"] for point in series]
    assert errors[-1] < errors[0]
    assert errors[-1] < 1.15  # at n = 100M the bound itself is 1.1
    # Monotone decrease across the sweep (allowing tiny noise).
    for before, after in zip(errors, errors[1:]):
        assert after <= before * 1.05


def test_thm2_bound_converges_to_one(series):
    bounds = [point["bound"] for point in series]
    assert bounds[-1] <= 1.11
    assert all(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:]))
