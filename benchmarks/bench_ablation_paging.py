"""Experiment `abl-paging` — paging effects in dictionary compression.

The paper analyses a *simplified* global-dictionary model and leaves
"paging effects" (each distinct value stored once per page it occupies,
the ``Pg(i)`` term) to future work. This ablation quantifies the gap:

* model level: paged CF vs global CF across the d spectrum;
* engine level: in-place page compression vs repacked pages;
* estimator level: does SampleCF track the *paged* truth as well as it
  tracks the simplified one?
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression.dictionary import DictionaryCompression
from repro.compression.global_dictionary import GlobalDictionaryCompression
from repro.core.cf_models import (global_dictionary_cf,
                                  paged_dictionary_cf)
from repro.core.samplecf import SampleCF, true_cf_table
from repro.experiments.report import format_table
from repro.experiments.runner import run_trials
from repro.workloads.generators import (histogram_to_table,
                                        make_histogram)

from _common import write_report

N = 200_000
K = 20
P = 2
PAGE = 8192
D_SWEEP = (10, 100, 1_000, 10_000, 100_000)


@pytest.fixture(scope="module")
def model_rows() -> list[dict]:
    rows = []
    for d in D_SWEEP:
        histogram = make_histogram(N, d, K, seed=700 + d % 13)
        rows.append({
            "d": d,
            "global": global_dictionary_cf(histogram, pointer_bytes=P),
            "paged": paged_dictionary_cf(histogram, pointer_bytes=P,
                                         page_size=PAGE),
        })
    return rows


def test_paging_model_gap(benchmark, model_rows):
    benchmark.pedantic(
        lambda: paged_dictionary_cf(
            make_histogram(N, 1000, K, seed=1), pointer_bytes=P,
            page_size=PAGE),
        rounds=3, iterations=1)
    table_rows = [[f"{row['d']:,}", f"{row['global']:.5f}",
                   f"{row['paged']:.5f}",
                   f"{row['paged'] - row['global']:+.5f}"]
                  for row in model_rows]
    write_report("abl_paging_model", format_table(
        ["d", "global (simplified) CF", "paged CF", "paging cost"],
        table_rows,
        title=f"Paging effects, model level (n={N:,}, {PAGE}B pages)"))
    for row in model_rows:
        assert row["paged"] >= row["global"] - 1e-12
    # Granular tests are skipped under --benchmark-only; assert here.
    test_paging_gap_small_for_small_d(model_rows)
    test_paging_gap_bounded_by_page_straddles(model_rows)


def test_paging_gap_small_for_small_d(model_rows):
    """With few, heavy values the run of each value spans whole pages,
    so per-page duplication is negligible — the simplified model is a
    good approximation exactly where Theorem 2 operates."""
    smallest = model_rows[0]
    assert smallest["paged"] - smallest["global"] < 0.01


def test_paging_gap_bounded_by_page_straddles(model_rows):
    """The measured law: ``sum Pg(i) - d`` counts page boundaries that a
    value run straddles, so the paging cost is at most
    ``(pages - 1)/n`` in CF units — small and nearly constant in d,
    shrinking once runs become too short to straddle."""
    from repro.core.cf_models import layout_rows_per_page

    histogram = make_histogram(N, 10, K, seed=700 + 10 % 13)
    rows_per_page = layout_rows_per_page(histogram, page_size=PAGE)
    pages = -(-N // rows_per_page)
    ceiling = (pages - 1) / N + 1e-9
    gaps = [row["paged"] - row["global"] for row in model_rows]
    assert all(gap <= ceiling for gap in gaps)
    # Very large d (short runs) straddles least.
    assert gaps[-1] == min(gaps)


def test_engine_in_place_vs_repacked(benchmark):
    histogram = make_histogram(20_000, 500, K, seed=711)
    table = histogram_to_table(histogram, page_size=4096, seed=712)
    algorithm = DictionaryCompression(pointer_bytes=P)

    def run() -> tuple:
        in_place = true_cf_table(table, ["a"], algorithm,
                                 page_size=4096, accounting="physical")
        repacked = true_cf_table(table, ["a"], algorithm,
                                 page_size=4096, accounting="physical",
                                 repack=True)
        return in_place, repacked

    in_place, repacked = benchmark.pedantic(run, rounds=3, iterations=1)
    # In-place compression frees bytes inside pages but no pages.
    assert in_place == pytest.approx(1.0)
    assert repacked < 0.6
    write_report("abl_paging_engine", format_table(
        ["strategy", "physical CF"],
        [["compress in place", f"{in_place:.4f}"],
         ["repack pages", f"{repacked:.4f}"]],
        title="Engine-level paging: in-place vs repacked (20k rows)"))


def test_estimator_tracks_paged_truth(benchmark):
    """SampleCF with the page-scoped algorithm estimates the paged CF.

    In the small-d regime (Theorem 2's) the estimate is tight; the
    mid-d regime inherits the same d'/r overshoot as the simplified
    model — paging changes the target, not the estimator's hardness.
    """
    histogram = make_histogram(N, 100, K, seed=721)
    truth = paged_dictionary_cf(histogram, pointer_bytes=P,
                                page_size=PAGE)
    estimator = SampleCF(DictionaryCompression(pointer_bytes=P),
                         page_size=PAGE)
    estimates = benchmark.pedantic(
        lambda: run_trials(
            lambda rng: estimator.estimate_histogram(
                histogram, 0.01, seed=rng).estimate,
            trials=40, seed=722),
        rounds=1, iterations=1)
    errors = np.maximum(truth / estimates, estimates / truth)
    assert errors.mean() < 1.6
