"""Experiment `fig2` — Figure 2: the SampleCF algorithm, end to end.

Runs the published pseudocode stage by stage against the storage
engine — (1) uniform sample with replacement, (2) bulk-load an index on
the sample, (3) compress it, (4) return the sample's CF — timing each
stage and checking the estimate against the full-index truth.

The accuracy comparison runs through :func:`engine_sweep` (the
engine-aware experiment registry path): both algorithms execute as one
shared-sample batch, so the table is sampled once per trial and each
algorithm merely re-compresses the shared sample index — asserted via
the engine's reuse stats.
"""

from __future__ import annotations

import time

import pytest

from repro.engine import EstimationEngine, EstimationRequest
from repro.experiments.runner import engine_sweep
from repro.sampling.rng import make_rng
from repro.sampling.row_samplers import WithReplacementSampler
from repro.storage.index import Index, IndexKind
from repro.storage.table import Table
from repro.compression.dictionary import DictionaryCompression
from repro.compression.null_suppression import NullSuppression
from repro.core.metrics import ratio_error
from repro.core.samplecf import SampleCF, true_cf_table
from repro.experiments.report import format_table
from repro.workloads.generators import make_table

from _common import write_report

N = 100_000
PAGE = 8192


@pytest.fixture(scope="module")
def table() -> Table:
    return make_table(n=N, d=2_000, k=20, page_size=PAGE, seed=202)


def _staged_samplecf(table: Table, fraction: float, seed: int) -> dict:
    """The four pseudocode steps, individually timed."""
    rng = make_rng(seed)
    timings: dict[str, float] = {}

    start = time.perf_counter()
    sampler = WithReplacementSampler()
    r = max(1, round(fraction * table.num_rows))
    positions = sampler.sample_positions(table.num_rows, r, rng)
    rows = table.rows_at([int(p) for p in positions])
    timings["1. sample"] = time.perf_counter() - start

    start = time.perf_counter()
    sample_index = Index("fig2", table.schema, ["a"],
                         kind=IndexKind.CLUSTERED, page_size=PAGE)
    sample_index.build([(row, None) for row in rows])
    timings["2. build index"] = time.perf_counter() - start

    start = time.perf_counter()
    result = sample_index.compress(NullSuppression())
    timings["3. compress"] = time.perf_counter() - start

    timings["4. return CF"] = 0.0
    return {"cf": result.compression_fraction, "rows": r,
            "timings": timings}


def test_fig2_staged_pipeline(benchmark, table):
    staged = benchmark.pedantic(_staged_samplecf, args=(table, 0.01, 7),
                                rounds=3, iterations=1)
    truth = true_cf_table(table, ["a"], NullSuppression(), page_size=PAGE)
    assert ratio_error(truth, staged["cf"]) < 1.1

    rows = [[stage, f"{seconds * 1e3:.2f} ms"]
            for stage, seconds in staged["timings"].items()]
    rows.append(["estimate CF'", f"{staged['cf']:.4f}"])
    rows.append(["true CF", f"{truth:.4f}"])
    rows.append(["ratio error", f"{ratio_error(truth, staged['cf']):.4f}"])
    write_report("fig2_staged", format_table(
        ["SampleCF stage (f=1%, n=100k)", "value"], rows,
        title="Figure 2 — SampleCF pseudocode, staged"))


@pytest.mark.parametrize("fraction", [0.01, 0.05])
def test_fig2_accuracy_both_algorithms(benchmark, table, fraction):
    """Both algorithms as ONE engine_sweep batch over a shared sample."""
    algorithms = [NullSuppression(), DictionaryCompression()]
    truths = {algorithm.name: true_cf_table(table, ["a"], algorithm,
                                            page_size=PAGE)
              for algorithm in algorithms}

    def make(algorithm):
        request = EstimationRequest(
            table=table, columns=("a",), algorithm=algorithm,
            fraction=fraction, kind=IndexKind.CLUSTERED, page_size=PAGE,
            seed=11)
        return truths[algorithm.name], request, \
            {"algorithm": algorithm.name}

    def sweep_once():
        engine = EstimationEngine(seed=11)
        points = engine_sweep(algorithms, make, trials=1, engine=engine)
        return points, engine.stats.snapshot()

    points, stats = benchmark.pedantic(sweep_once, rounds=3,
                                       iterations=1)
    # The shared-sample contract: one draw serves both algorithms.
    assert stats["samples_materialized"] == 1
    assert stats["sample_cache_hits"] == 1
    # Only NS carries an accuracy bound here: dictionary at small f
    # overestimates until the sample sees enough distinct values (the
    # paper's d' < d discussion) — it is reported, not asserted.
    ns_point = next(point for point in points
                    if point.extra["algorithm"] == "null_suppression")
    assert ratio_error(truths["null_suppression"],
                       ns_point.summary.mean) < 1.1

    rows = [
        [point.extra["algorithm"], f"{point.summary.mean:.4f}",
         f"{truths[point.extra['algorithm']]:.4f}",
         f"{ratio_error(truths[point.extra['algorithm']], point.summary.mean):.4f}"]
        for point in points
    ]
    write_report(f"fig2_accuracy_f{fraction}", format_table(
        ["algorithm", "CF' (sample)", "CF (true)", "ratio error"], rows,
        title=f"Figure 2 — estimate vs truth at f={fraction:.0%}"))


def test_fig2_index_sampling_variant(benchmark, table):
    """Section II-C: sampling an existing index is cheaper; same answer."""
    index = table.create_index("fig2_ix", ["a"], kind=IndexKind.CLUSTERED)
    estimator = SampleCF(NullSuppression(), page_size=PAGE)
    estimate = benchmark.pedantic(
        estimator.estimate_index, args=(index, 0.01),
        kwargs={"seed": 13}, rounds=3, iterations=1)
    truth = true_cf_table(table, ["a"], NullSuppression(), page_size=PAGE)
    assert ratio_error(truth, estimate.estimate) < 1.1
