"""Experiment `fig1` — Figure 1: the two compression techniques.

Regenerates the paper's illustration at byte level:

* Figure 1.a: the CHAR(20) value ``'abc'`` occupies 20 bytes
  uncompressed and ``3 + 1`` bytes under null suppression (body plus
  length header), and a zero-padded value collapses under the run
  variant;
* Figure 1.b: repeated ``'abcdefghij'`` values are stored once in the
  page dictionary with a pointer per row.

Also measures compression/decompression throughput of both techniques
on a realistic page workload (the quantity a physical-design tool pays
when it estimates by actually compressing).
"""

from __future__ import annotations

import pytest

from repro.storage.record import encode_record
from repro.storage.schema import single_char_schema
from repro.compression.dictionary import DictionaryCompression
from repro.compression.null_suppression import NullSuppression
from repro.experiments.report import format_table
from repro.workloads.generators import make_histogram

from _common import hexdump, write_report

K = 20
SCHEMA = single_char_schema(K)


def _page_workload() -> list[bytes]:
    histogram = make_histogram(n=10_000, d=200, k=K, seed=101)
    return [encode_record(SCHEMA, (value,))
            for value in histogram.expand("sorted")]


@pytest.fixture(scope="module")
def page_records() -> list[bytes]:
    return _page_workload()


def test_fig1a_null_suppression(benchmark, page_records):
    algorithm = NullSuppression()
    block = benchmark(algorithm.compress, page_records, SCHEMA)
    assert algorithm.decompress(block, SCHEMA) == page_records

    # The figure's literal example.
    abc = encode_record(SCHEMA, ("abc",))
    abc_block = algorithm.compress([abc], SCHEMA)
    assert len(abc) == 20
    assert abc_block.payload_size == 3 + 1

    zero_padded = encode_record(SCHEMA, ("00000000000000000abc",))
    runs_block = NullSuppression(mode="runs").compress([zero_padded],
                                                       SCHEMA)
    rows = [
        ["'abc' uncompressed", 20, hexdump(abc)],
        ["'abc' null-suppressed", abc_block.payload_size,
         hexdump(abc_block.columns[0].blob)],
        ["'0...0abc' trailing NS",
         NullSuppression().compress([zero_padded],
                                    SCHEMA).payload_size, "(no gain)"],
        ["'0...0abc' run NS", runs_block.payload_size,
         hexdump(runs_block.columns[0].blob)],
    ]
    report = format_table(
        ["value (char(20))", "bytes", "stored image"], rows,
        title="Figure 1.a — null suppression, byte level")
    report += (f"\npage workload: {len(page_records)} records, "
               f"NS CF = "
               f"{algorithm.compress(page_records, SCHEMA).payload_size / (len(page_records) * K):.4f}")
    write_report("fig1_null_suppression", report)


def test_fig1b_dictionary(benchmark, page_records):
    algorithm = DictionaryCompression()
    block = benchmark(algorithm.compress, page_records, SCHEMA)
    assert algorithm.decompress(block, SCHEMA) == page_records

    repeated = [encode_record(SCHEMA, ("abcdefghij",)) for _ in range(4)]
    fig_block = algorithm.compress(repeated, SCHEMA)
    # One 20-byte entry + four 2-byte pointers.
    assert fig_block.payload_size == K + 4 * 2

    rows = [
        ["4 x 'abcdefghij' uncompressed", 4 * K],
        ["dictionary entry (stored once)", K],
        ["4 pointers (2 B each)", 4 * 2],
        ["total compressed", fig_block.payload_size],
    ]
    report = format_table(
        ["component", "bytes"], rows,
        title="Figure 1.b — dictionary compression, byte level")
    cf = block.payload_size / (len(page_records) * K)
    report += (f"\npage workload: {len(page_records)} records, "
               f"dictionary CF = {cf:.4f}")
    write_report("fig1_dictionary", report)


def test_fig1_decompression_throughput(benchmark, page_records):
    """Decompression is the CPU cost Section I says must be paid."""
    algorithm = NullSuppression()
    block = algorithm.compress(page_records, SCHEMA)
    restored = benchmark(algorithm.decompress, block, SCHEMA)
    assert restored == page_records
