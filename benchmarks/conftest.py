"""Benchmark-suite fixtures (module-scoped workloads shared per file)."""

from __future__ import annotations

import sys
import pathlib

# Make `benchmarks/_common.py` importable when pytest is invoked from
# the repository root (benchmarks/ is intentionally not a package).
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
