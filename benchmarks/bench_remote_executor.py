"""Experiment `perf-remote` — the remote executor's scheduling wins.

The remote executor exists for one reason: an advisor batch is a bag of
independent plan units whose costs span orders of magnitude (fraction
0.01 histogram probes next to fraction 0.3 multi-column table samples),
and a fleet of store-warmed workers should chew through it at fleet
speed, not at ``units / workers`` rounded up by the unluckiest shard.
This bench pins the three claims the design makes:

1. **Throughput scales with workers.** Unit service time is simulated
   (``--simulate-cost-scale`` makes each worker sleep its unit's
   predicted cost) so the *scheduler* is measured honestly even on the
   single-core CI runner: sleeps overlap across worker processes
   exactly the way real CPU work overlaps across real hosts, while the
   actual estimate arithmetic stays a rounding error. The full run
   requires >= 2.5x unit throughput at 4 workers vs 1.
2. **A warm shared store means workers materialize nothing.** After one
   priming run against a store directory, a fresh engine plus fresh
   workers resolve every unit from disk: ``samples_materialized == 0``.
3. **LPT beats round-robin on skewed batches** — both on the cost
   model's predicted makespan and on measured wall clock.

Results land in ``benchmarks/results/BENCH_remote_executor.json``. Run::

    PYTHONPATH=src python benchmarks/bench_remote_executor.py           # full
    PYTHONPATH=src python benchmarks/bench_remote_executor.py --smoke   # CI
"""

from __future__ import annotations

import argparse
import json
import math
import os
import pathlib
import platform
import sys
import tempfile

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from _common import RESULTS_DIR, emit_result  # noqa: E402

from repro._version import __version__  # noqa: E402
from repro.engine import (EstimationEngine, EstimationRequest,  # noqa: E402
                          RemotePlanExecutor, SerialExecutor)
from repro.engine.remote import (UnitCostModel, lpt_assign,  # noqa: E402
                                 makespan, round_robin_assign,
                                 spawn_local_workers)
from repro.engine.units import plan_units  # noqa: E402
from repro.experiments.runner import timed  # noqa: E402
from repro.storage.index import IndexKind  # noqa: E402
from repro.workloads.generators import (make_histogram,  # noqa: E402
                                        make_multicolumn_table)

MASTER_SEED = 7100

#: Sleep seconds per unit of predicted cost in the simulated-service
#: scaling runs; tuned so a full skewed batch is ~10 s of service time,
#: far above the protocol's per-chunk round-trip overhead.
SIMULATE_SCALE = 2e-4


def build_requests(smoke: bool) -> list[EstimationRequest]:
    """A deliberately cost-skewed advisor batch.

    Giant units (fat fractions over the wide table) next to near-free
    histogram probes — the shape where round-robin strands a shard
    behind the giants and LPT + stealing should not.
    """
    scale = 1 if smoke else 4
    orders = make_multicolumn_table(
        "orders", 2_000 * scale,
        [("status", 10, 6), ("customer", 24, 500), ("region", 12, 20)],
        page_size=4096, seed=7101)
    histogram = make_histogram(30_000, 200, 16, seed=7102)
    requests = []
    fractions = (0.02, 0.3) if smoke else (0.01, 0.05, 0.15, 0.3)
    for fraction in fractions:
        for columns in (("status",), ("customer", "region")):
            for algorithm in ("null_suppression", "rle"):
                requests.append(EstimationRequest(
                    table=orders, columns=columns, algorithm=algorithm,
                    fraction=fraction, trials=2 if smoke else 3,
                    kind=IndexKind.NONCLUSTERED, page_size=4096,
                    label=f"{','.join(columns)}:{algorithm}:{fraction}"))
        requests.append(EstimationRequest(
            histogram=histogram, algorithm="null_suppression",
            fraction=fraction, trials=2 if smoke else 3,
            label=f"hist:ns:{fraction}"))
    return requests


def fingerprint(batch) -> list[tuple]:
    return [(estimate.estimate, estimate.sample_rows,
             estimate.compressed_sample_bytes)
            for result in batch.results
            for estimate in result.estimates]


def run_batch(requests, executor, store_dir=None):
    engine = EstimationEngine(seed=MASTER_SEED, executor=executor,
                              store=store_dir)
    outcome = timed(lambda: engine.execute(requests))
    return outcome.value, outcome.seconds


def with_workers(count, store_dir, simulate, fn):
    """Run ``fn(addresses)`` against freshly spawned worker processes."""
    processes, addresses = spawn_local_workers(
        count, store_dir=store_dir,
        simulate_cost_scale=SIMULATE_SCALE if simulate else None)
    try:
        return fn(addresses)
    finally:
        for process in processes:
            process.terminate()
        for process in processes:
            process.wait(timeout=10)


def unit_count(requests) -> int:
    engine = EstimationEngine(seed=MASTER_SEED)
    return len(plan_units(engine.plan(requests)))


def predicted_costs(requests) -> list[float]:
    engine = EstimationEngine(seed=MASTER_SEED)
    return [UnitCostModel.predict(unit)
            for unit in plan_units(engine.plan(requests))]


def run(smoke: bool, output: pathlib.Path) -> dict:
    requests = build_requests(smoke)
    units = unit_count(requests)
    report: dict = {
        "experiment": "remote_executor",
        "version": __version__,
        "mode": "smoke" if smoke else "full",
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "batch": {"requests": len(requests), "plan_units": units},
        "simulated_service": {
            "note": "scaling runs sleep simulate_cost_scale * predicted "
                    "cost per unit in the worker, so scheduler overlap "
                    "is measured honestly on any core count; estimates "
                    "are unaffected",
            "scale": SIMULATE_SCALE,
        },
    }

    with tempfile.TemporaryDirectory(prefix="bench-remote-") as tmp:
        store_dir = os.path.join(tmp, "store")

        # -- identity + store priming (2 real workers, no simulation) --
        serial_batch, serial_seconds = run_batch(
            requests, SerialExecutor(), store_dir=store_dir)
        remote_batch, remote_seconds = with_workers(
            2, store_dir, False,
            lambda addresses: run_batch(
                requests,
                RemotePlanExecutor(workers=addresses, chunk_units=2),
                store_dir=store_dir))
        identical = fingerprint(serial_batch) == fingerprint(remote_batch)
        if not identical:
            raise AssertionError(
                "remote executor changed the estimates — the "
                "determinism contract is broken")
        report["identity"] = {
            "estimates_identical": True,
            "serial_seconds": round(serial_seconds, 4),
            "remote_seconds_2_workers": round(remote_seconds, 4),
            "remote_units": remote_batch.stats["remote_units"],
        }

        # -- cost-model calibration from observed span timings ---------
        # The dispatcher feeds every unit's measured seconds back into
        # UnitCostModel and publishes the EMA rates plus the
        # predicted-vs-actual error as engine gauges; a remote run that
        # stops producing them (or produces nonsense) is a scheduler
        # quality regression even when the estimates stay correct.
        gauges = remote_batch.stats["gauges"]
        calibration = {name: gauges[name] for name in sorted(gauges)
                       if name.startswith("cost_model.")}
        report["calibration"] = calibration
        rates = [value for name, value in calibration.items()
                 if name.startswith("cost_model.seconds_per_cost.")]
        if not rates or any(rate <= 0 for rate in rates):
            raise AssertionError(
                "remote run published no positive seconds-per-cost "
                f"rates: {calibration}")
        error = calibration.get("cost_model.mean_abs_rel_error")
        if error is not None and not math.isfinite(error):
            raise AssertionError(
                f"predicted-vs-actual error is not finite: {error}")
        if calibration.get("cost_model.observed_units", 0) != units:
            raise AssertionError(
                "calibration observed "
                f"{calibration.get('cost_model.observed_units')} units, "
                f"expected {units}")

        # -- warm store: fresh engine + fresh workers materialize 0 ----
        warm_batch, warm_seconds = with_workers(
            2, store_dir, False,
            lambda addresses: run_batch(
                requests,
                RemotePlanExecutor(workers=addresses, chunk_units=2),
                store_dir=store_dir))
        report["warm_store"] = {
            "samples_materialized": warm_batch.stats[
                "samples_materialized"],
            "sample_store_hits": warm_batch.stats["sample_store_hits"],
            "seconds": round(warm_seconds, 4),
        }
        if warm_batch.stats["samples_materialized"] != 0:
            raise AssertionError(
                "a warm shared store should materialize nothing, got "
                f"{warm_batch.stats['samples_materialized']}")

        # -- scheduler quality on the predicted cost profile -----------
        costs = predicted_costs(requests)
        shard_counts = [2, 4]
        report["makespan_model"] = {
            str(shards): {
                "lpt": round(makespan(costs, lpt_assign(costs, shards)), 1),
                "round_robin": round(
                    makespan(costs, round_robin_assign(costs, shards)), 1),
            }
            for shards in shard_counts}
        for shards in shard_counts:
            modeled = report["makespan_model"][str(shards)]
            if modeled["lpt"] > modeled["round_robin"]:
                raise AssertionError(
                    f"LPT lost to round-robin at {shards} shards")

        # -- simulated-service scaling: 1 / 2 / 4 workers --------------
        if not smoke:
            scaling = {}
            for count in (1, 2, 4):
                batch, seconds = with_workers(
                    count, store_dir, True,
                    lambda addresses: run_batch(
                        requests,
                        RemotePlanExecutor(workers=addresses,
                                           chunk_units=2),
                        store_dir=store_dir))
                scaling[str(count)] = {
                    "seconds": round(seconds, 4),
                    "units_per_second": round(units / seconds, 2),
                    "remote_steals": batch.stats["remote_steals"],
                }
            ratio = (scaling["4"]["units_per_second"]
                     / scaling["1"]["units_per_second"])
            scaling["throughput_4v1"] = round(ratio, 3)
            report["scaling"] = scaling
            if ratio < 2.5:
                raise AssertionError(
                    f"4-worker throughput only {ratio:.2f}x of 1 worker; "
                    "the scheduler is leaving parallelism on the floor")

            # Under simulated service the time per unit IS
            # scale * predicted cost, so the feedback loop must
            # calibrate tightly — a large mean error means observed
            # timings are no longer reaching the cost model.
            sim_error = batch.stats["gauges"].get(
                "cost_model.mean_abs_rel_error")
            scaling["mean_abs_rel_error_simulated"] = (
                round(sim_error, 4) if sim_error is not None else None)
            if sim_error is None or sim_error > 1.0:
                raise AssertionError(
                    "simulated-service calibration error too large: "
                    f"{sim_error}")

            # -- measured LPT vs round-robin under simulated service ---
            measured = {}
            for scheduler in ("lpt", "round_robin"):
                _, seconds = with_workers(
                    4, store_dir, True,
                    lambda addresses: run_batch(
                        requests,
                        RemotePlanExecutor(workers=addresses,
                                           scheduler=scheduler,
                                           chunk_units=2, steal=False),
                        store_dir=store_dir))
                measured[scheduler] = round(seconds, 4)
            report["makespan_measured_4_workers_no_steal"] = measured

    emit_result("remote_executor", report,
                parameters={"mode": "smoke" if smoke else "full"},
                output=output)
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the remote plan executor: scaling, warm "
                    "stores, and LPT vs round-robin.")
    parser.add_argument("--smoke", action="store_true",
                        help="small CI-sized run (identity + warm store "
                             "+ modeled makespan only)")
    parser.add_argument("--output", type=pathlib.Path,
                        default=RESULTS_DIR / "BENCH_remote_executor.json",
                        help="where to write the JSON baseline")
    args = parser.parse_args(argv)
    report = run(args.smoke, args.output)
    print(json.dumps(report, indent=2))
    print(f"\nbaseline written to {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
