"""Experiment `executors` — serial vs. thread pool vs. process pool.

The advisor workload (Kimura et al.'s compression-aware physical design
loop) is a large batch of independent (column-set × algorithm) CF
estimations. The units are compress-heavy pure Python, so a thread pool
is GIL-bound; the process-pool executor ships picklable plan units to
worker processes and parallelizes for real. This bench times the same
advisor-sized batch on all three executors, checks the estimates are
bit-identical (the engine's determinism contract), and persists a JSON
baseline — ``benchmarks/results/BENCH_executors.json`` — so the perf
trajectory of later PRs has a first data point.

Run it directly (it is a script, not a pytest module)::

    PYTHONPATH=src python benchmarks/bench_executors.py           # full
    PYTHONPATH=src python benchmarks/bench_executors.py --smoke   # CI

Interpreting the numbers: the process pool only wins when real cores
are available (the JSON records ``cpu_count``) and the batch is heavy
enough to amortize worker startup plus the one-time pickling of the
unit list. On a single-core runner the three executors are expected to
tie, which is itself worth recording.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from _common import RESULTS_DIR, emit_result  # noqa: E402

from repro._version import __version__  # noqa: E402
from repro.engine import (EstimationEngine, EstimationRequest,  # noqa: E402
                          make_executor)
from repro.experiments.runner import timed  # noqa: E402
from repro.storage.index import IndexKind  # noqa: E402
from repro.workloads.generators import make_multicolumn_table  # noqa: E402

MASTER_SEED = 4200

#: Per-page/per-index techniques an advisor would sweep; every extra
#: algorithm deepens the compress-heavy part each sample is reused for.
FULL_ALGORITHMS = ["null_suppression", "null_suppression_runs",
                   "global_dictionary", "dictionary", "prefix", "delta",
                   "rle"]
SMOKE_ALGORITHMS = ["null_suppression", "global_dictionary"]


def build_workload(smoke: bool) -> tuple[dict, list[tuple[str, tuple]]]:
    """Tables plus the advisor's (table, column-set) candidate grid."""
    scale = 1 if smoke else 8
    tables = {
        "orders": make_multicolumn_table(
            "orders", 1_500 * scale,
            [("status", 10, 6), ("customer", 24, 500),
             ("region", 12, 20)], page_size=4096, seed=4201),
        "parts": make_multicolumn_table(
            "parts", 1_000 * scale,
            [("sku", 24, 400), ("brand", 16, 30)],
            page_size=4096, seed=4202),
    }
    key_sets = [
        ("orders", ("status",)),
        ("orders", ("customer",)),
        ("orders", ("region",)),
        ("orders", ("status", "region")),
        ("parts", ("sku",)),
        ("parts", ("brand",)),
    ]
    return tables, key_sets


def build_requests(tables: dict, key_sets: list, algorithms: list,
                   fraction: float, trials: int,
                   ) -> list[EstimationRequest]:
    requests = []
    for table_name, key_columns in key_sets:
        table = tables[table_name]
        for algorithm in algorithms:
            requests.append(EstimationRequest(
                table=table, columns=key_columns, algorithm=algorithm,
                fraction=fraction, trials=trials,
                kind=IndexKind.NONCLUSTERED, page_size=table.page_size,
                label=f"{table_name}:{','.join(key_columns)}"
                      f":{algorithm}"))
    return requests


def fingerprint(batch) -> list[tuple]:
    return [(estimate.estimate, estimate.sample_rows,
             estimate.compressed_sample_bytes)
            for result in batch.results
            for estimate in result.estimates]


def run(smoke: bool, workers: int, output: pathlib.Path) -> dict:
    algorithms = SMOKE_ALGORITHMS if smoke else FULL_ALGORITHMS
    # Full mode draws fat samples (f=0.2 of 8-12k rows) for many trials
    # so the byte-level compression loops dominate pool overhead — the
    # compress-heavy advisor shape the process pool exists for.
    fraction = 0.05 if smoke else 0.2
    trials = 1 if smoke else 5
    tables, key_sets = build_workload(smoke)
    requests = build_requests(tables, key_sets, algorithms, fraction,
                              trials)

    timings: dict[str, float] = {}
    prints: dict[str, list] = {}
    for name in ("serial", "threads", "process"):
        engine = EstimationEngine(
            seed=MASTER_SEED,
            executor=make_executor(name, max_workers=workers))
        outcome = timed(lambda: engine.execute(requests))
        timings[name] = outcome.seconds
        prints[name] = fingerprint(outcome.value)
    identical = prints["serial"] == prints["threads"] == \
        prints["process"]
    if not identical:
        raise AssertionError(
            "executor choice changed the estimates — the determinism "
            "contract is broken")

    report = {
        "experiment": "executors",
        "version": __version__,
        "mode": "smoke" if smoke else "full",
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "workers": workers,
        "batch": {
            "requests": len(requests),
            "trial_units": len(requests) * trials,
            "algorithms": algorithms,
            "fraction": fraction,
            "trials": trials,
            "tables": {name: table.num_rows
                       for name, table in tables.items()},
        },
        "seconds": timings,
        "speedup_vs_serial": {
            name: round(timings["serial"] / seconds, 3)
            for name, seconds in timings.items()},
        "process_vs_threads": round(
            timings["threads"] / timings["process"], 3),
        "estimates_identical": identical,
    }
    emit_result("executors", report,
                parameters={"mode": "smoke" if smoke else "full",
                            "workers": workers},
                output=output)
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Time serial/thread/process executors on an "
                    "advisor-sized estimation batch.")
    parser.add_argument("--smoke", action="store_true",
                        help="small CI-sized batch (seconds, not minutes)")
    parser.add_argument("--workers", type=int,
                        default=min(4, os.cpu_count() or 2),
                        help="worker count for the pooled executors")
    parser.add_argument("--output", type=pathlib.Path,
                        default=RESULTS_DIR / "BENCH_executors.json",
                        help="where to write the JSON baseline")
    args = parser.parse_args(argv)
    report = run(args.smoke, args.workers, args.output)
    print(json.dumps(report, indent=2))
    print(f"\nbaseline written to {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
