"""Experiment `thm1` — Theorem 1: NS unbiasedness and the std-dev bound.

Sweeps the sampling fraction and the value-length distribution, and for
every point compares the measured standard deviation of ``CF'_NS``
against the bound ``(1/2) sqrt(1/(f n))``, plus the sharper
known-range variant. The series printed here is the figure a full-length
version of the paper would plot: sigma vs f, measured under bound.

Each workload's fraction sweep executes as **one**
:func:`engine_sweep` batch (with content-derived seeds, so the series
replays bit-identically across processes); ``REPRO_BENCH_STORE_DIR``
warm-starts repeated regenerations from disk.
"""

from __future__ import annotations

import math

import pytest

from repro.compression.null_suppression import NullSuppression
from repro.core.bounds import ns_stddev_bound, ns_stddev_bound_range
from repro.core.cf_models import ColumnHistogram, ns_cf
from repro.engine.requests import EstimationRequest, derive_seed
from repro.experiments.report import format_table
from repro.experiments.runner import engine_sweep
from repro.workloads.generators import make_histogram

from _common import bench_store, emit_result

N = 1_000_000
K = 20
TRIALS = 150
FRACTIONS = (0.001, 0.005, 0.01, 0.05, 0.1)

WORKLOADS = {
    "uniform_lengths": dict(distribution="uniform", d=1000, min_len=1,
                            max_len=20),
    "zipf_short": dict(distribution="zipf", d=1000, min_len=2, max_len=8),
    "bimodal": dict(distribution="geometric", d=500, min_len=None,
                    max_len=None),
}


def _histogram(name: str) -> ColumnHistogram:
    params = WORKLOADS[name]
    # derive_seed, not hash(): PYTHONHASHSEED randomises str hashes per
    # process, and the workload must be identical in every run.
    return make_histogram(N, params["d"], K,
                          distribution=params["distribution"],
                          min_len=params["min_len"],
                          max_len=params["max_len"],
                          seed=derive_seed("thm1", name))


def _sweep(name: str, fractions=FRACTIONS) -> list[dict]:
    histogram = _histogram(name)
    truth = ns_cf(histogram)
    stored = histogram.ns_stored_sizes()
    low = float(stored.min()) / K
    high = float(stored.max()) / K

    def make(fraction):
        request = EstimationRequest(
            histogram=histogram, algorithm=NullSuppression(),
            fraction=fraction, label=f"thm1_{name}")
        return truth, request, {}

    points = []
    for point in engine_sweep(fractions, make, trials=TRIALS,
                              seed=derive_seed("thm1", name, "trials"),
                              store=bench_store()):
        fraction = point.parameter
        r = round(fraction * N)
        points.append({
            "f": fraction,
            "summary": point.summary,
            "bound": ns_stddev_bound(r=r),
            "sharp_bound": ns_stddev_bound_range(r, low, high),
        })
    return points


@pytest.fixture(scope="module", params=sorted(WORKLOADS))
def sweep(request):
    return request.param, _sweep(request.param)


def test_thm1_sigma_below_bound(benchmark, sweep):
    name, points = sweep
    benchmark.pedantic(lambda: _sweep(name, FRACTIONS[:1]),
                       rounds=1, iterations=1)
    rows = []
    for point in points:
        summary = point["summary"]
        rows.append([
            f"{point['f']:.3%}",
            f"{summary.true_value:.5f}",
            f"{summary.bias:+.6f}",
            f"{summary.std:.6f}",
            f"{point['bound']:.6f}",
            f"{point['sharp_bound']:.6f}",
        ])
        assert summary.std <= point["bound"], point["f"]
    emit_result(
        f"thm1_{name}",
        [{"f": point["f"],
          "true_cf": point["summary"].true_value,
          "bias": point["summary"].bias,
          "std": point["summary"].std,
          "bound": point["bound"],
          "sharp_bound": point["sharp_bound"]}
         for point in points],
        parameters={"n": N, "k": K, "trials": TRIALS, "workload": name,
                    "fractions": list(FRACTIONS)},
        text=format_table(
            ["f", "true CF", "bias", "measured sigma",
             "Theorem 1 bound", "sharp bound"], rows,
            title=f"Theorem 1 — {name} (n={N:,}, {TRIALS} "
                  f"trials/point)"))
    # Granular tests are skipped under --benchmark-only; assert here.
    test_thm1_unbiased_at_every_fraction(sweep)
    test_thm1_sigma_scales_with_sqrt_f(sweep)
    test_thm1_sharp_bound_tighter(sweep)


def test_thm1_unbiased_at_every_fraction(sweep):
    _name, points = sweep
    for point in points:
        summary = point["summary"]
        standard_error = max(summary.std / math.sqrt(summary.trials),
                             1e-12)
        assert abs(summary.bias) <= 5 * standard_error, point["f"]


def test_thm1_sigma_scales_with_sqrt_f(sweep):
    """sigma should fall ~sqrt(10) when f rises 10x."""
    _name, points = sweep
    sigma_low = points[0]["summary"].std    # f = 0.1%
    sigma_high = points[2]["summary"].std   # f = 1%
    if sigma_low > 0 and sigma_high > 0:
        observed = sigma_low / sigma_high
        assert 1.5 < observed < 7.0


def test_thm1_sharp_bound_tighter(sweep):
    _name, points = sweep
    for point in points:
        assert point["sharp_bound"] <= point["bound"] + 1e-15
        assert point["summary"].std <= point["sharp_bound"] + 1e-12
