"""Experiment `abl-distinct` — can better distinct-value estimators beat
SampleCF?

Section III-B ties dictionary-CF estimation to distinct-value
estimation, which is provably hard from samples (ref [1], Charikar et
al.). SampleCF implicitly uses the naive scale-up rule d_hat = d' n/r.
This ablation races the classical estimators from that literature
(Chao'84, GEE, Shlosser) through the plug-in CF_hat = d_hat/n + p/k.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression.global_dictionary import GlobalDictionaryCompression
from repro.core.cf_models import global_dictionary_cf
from repro.core.estimator import DistinctPlugInEstimator
from repro.core.samplecf import SampleCF
from repro.experiments.report import format_table
from repro.experiments.runner import run_trials
from repro.workloads.generators import make_histogram

from _common import write_report

N = 1_000_000
K = 20
P = 2
F = 0.01
TRIALS = 50

REGIMES = {
    "small_d_zipf": dict(d=100, distribution="zipf"),
    "mid_d_uniform": dict(d=50_000, distribution="uniform"),
    "large_d_singleton": dict(d=N // 2, distribution="singleton_heavy"),
}

ESTIMATOR_NAMES = ("scale_up", "chao84", "gee", "shlosser")


def _mean_ratio_error(estimator_fn, truth: float, seed: int) -> float:
    estimates = run_trials(estimator_fn, trials=TRIALS, seed=seed)
    errors = np.maximum(truth / estimates, estimates / truth)
    return float(errors.mean())


@pytest.fixture(scope="module")
def grid() -> dict:
    results: dict = {}
    for regime, params in REGIMES.items():
        histogram = make_histogram(N, params["d"], K,
                                   distribution=params["distribution"],
                                   seed=900 + params["d"] % 11)
        truth = global_dictionary_cf(histogram, pointer_bytes=P)
        results[(regime, "truth")] = truth
        for name in ESTIMATOR_NAMES:
            plug_in = DistinctPlugInEstimator(name, pointer_bytes=P)
            results[(regime, name)] = _mean_ratio_error(
                lambda rng: plug_in.estimate_histogram(histogram, F,
                                                       seed=rng),
                truth, seed=hash((regime, name)) % 2**31)
    return results


def test_distinct_estimator_grid(benchmark, grid):
    histogram = make_histogram(100_000, 1000, K, seed=901)
    plug_in = DistinctPlugInEstimator("gee", pointer_bytes=P)
    benchmark.pedantic(plug_in.estimate_histogram,
                       args=(histogram, F), kwargs={"seed": 3},
                       rounds=3, iterations=1)
    rows = []
    for regime in REGIMES:
        row = [regime, f"{grid[(regime, 'truth')]:.4f}"]
        row.extend(f"{grid[(regime, name)]:.4f}"
                   for name in ESTIMATOR_NAMES)
        rows.append(row)
    write_report("abl_distinct", format_table(
        ["regime", "true CF", *ESTIMATOR_NAMES], rows,
        title=f"Plug-in CF estimators, mean ratio error "
              f"(n={N:,}, f={F:.0%}, {TRIALS} trials)"))
    # Granular tests are skipped under --benchmark-only; assert here.
    test_scale_up_is_samplecf(grid)
    test_small_d_everyone_is_fine(grid)
    test_mid_d_scale_up_overshoots(grid)
    test_no_estimator_is_uniformly_best(grid)


def test_scale_up_is_samplecf(grid):
    """Sanity: the scale-up plug-in equals SampleCF's estimate."""
    histogram = make_histogram(10_000, 500, K, seed=902)
    samplecf = SampleCF(GlobalDictionaryCompression(pointer_bytes=P))
    plug_in = DistinctPlugInEstimator("scale_up", pointer_bytes=P)
    for seed in range(3):
        assert plug_in.estimate_histogram(histogram, F, seed=seed) == \
            pytest.approx(samplecf.estimate_histogram(
                histogram, F, seed=seed).estimate)


def test_small_d_everyone_is_fine(grid):
    """Theorem 2 regime: the p/k term forgives any distinct estimate."""
    for name in ESTIMATOR_NAMES:
        assert grid[("small_d_zipf", name)] < 1.15, name


def test_mid_d_scale_up_overshoots(grid):
    """The moderate-count regime is where the naive rule suffers and
    the purpose-built estimators (notably Shlosser/GEE) pay off."""
    scale_up = grid[("mid_d_uniform", "scale_up")]
    best_other = min(grid[("mid_d_uniform", name)]
                     for name in ("chao84", "gee", "shlosser"))
    assert scale_up > 1.5
    assert best_other < scale_up


def test_no_estimator_is_uniformly_best(grid):
    """The hardness result in practice: winners change per regime."""
    winners = set()
    for regime in REGIMES:
        winner = min(ESTIMATOR_NAMES,
                     key=lambda name: grid[(regime, name)])
        winners.add(winner)
    assert len(winners) >= 2
