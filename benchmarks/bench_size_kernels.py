"""Experiment `size-kernels` — scalar vs. vectorized size-only kernels.

The estimator's inner loop is "compute the compressed size of every
leaf of the sample index"; the scalar path builds full self-describing
blobs per leaf and keeps only ``payload_size``. This bench times, per
registered codec, the scalar route (``Index.compress``) against the
size-only route (``Index.estimate_compression``) on the paper's
canonical clustered CHAR index, and checks the two report bit-identical
results (the parity contract the engine and the persistent store rely
on).

Two kernel timings are reported:

* ``cold`` — the columnar leaf views are rebuilt inside the timed
  region (a single-estimate worst case);
* ``shared`` — views already built, as in an engine batch, where every
  algorithm and trial over one sample index reuses them.

Run it directly (it is a script, not a pytest module)::

    PYTHONPATH=src python benchmarks/bench_size_kernels.py           # full
    PYTHONPATH=src python benchmarks/bench_size_kernels.py --smoke   # CI

The committed full-mode ``benchmarks/results/BENCH_size_kernels.json``
is the perf baseline; the acceptance gate for this experiment is a
>= 3x cold speedup for null suppression and dictionary. The
``null_suppression_runs`` codec has no kernel by design — its ~1x row
keeps the scalar-fallback cost visible in the trajectory.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from _common import RESULTS_DIR, emit_result  # noqa: E402

from repro._version import __version__  # noqa: E402
from repro.compression.registry import get_algorithm, list_algorithms  # noqa: E402
from repro.storage.index import Index, IndexKind  # noqa: E402
from repro.workloads.generators import make_table  # noqa: E402

MASTER_SEED = 5100


def build_index(smoke: bool) -> Index:
    """The paper's canonical shape: a clustered CHAR(24) index."""
    rows = 6_000 if smoke else 60_000
    distinct = 400 if smoke else 3_000
    table = make_table(rows, distinct, 24, distribution="zipf",
                       page_size=8192, seed=MASTER_SEED)
    index = Index("bench", table.schema, ["a"], kind=IndexKind.CLUSTERED,
                  page_size=8192)
    index.build_from_rows(list(table.rows()))
    return index


def best_of(callable_, repeats: int) -> tuple[float, object]:
    """Minimum wall time over ``repeats`` runs (plus the last result)."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = callable_()
        best = min(best, time.perf_counter() - start)
    return best, value


def run(smoke: bool, output: pathlib.Path) -> dict:
    repeats = 3 if smoke else 5
    index = build_index(smoke)
    size = index.size()

    codecs = {}
    for name in sorted(list_algorithms()):
        algorithm = get_algorithm(name)
        scalar_s, scalar = best_of(
            lambda: index.compress(algorithm), repeats)

        def cold():
            index._size_view_cache.clear()
            return index.estimate_compression(algorithm)

        cold_s, kernel = best_of(cold, repeats)
        shared_s, shared = best_of(
            lambda: index.estimate_compression(algorithm), repeats)
        if not (scalar == kernel == shared):
            raise AssertionError(
                f"{name}: size-only result diverged from compress() — "
                f"the parity contract is broken")
        codecs[name] = {
            "scalar_s": round(scalar_s, 6),
            "kernel_cold_s": round(cold_s, 6),
            "kernel_shared_s": round(shared_s, 6),
            "speedup_cold": round(scalar_s / cold_s, 2),
            "speedup_shared": round(scalar_s / shared_s, 2),
            "compressed_payload": scalar.details["compressed_payload"],
        }

    report = {
        "experiment": "size-kernels",
        "version": __version__,
        "mode": "smoke" if smoke else "full",
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "workload": {
            "rows": index.num_entries,
            "leaf_pages": size.leaf_pages,
            "payload_bytes": size.payload_bytes,
            "page_size": index.page_size,
            "repeats": repeats,
        },
        "codecs": codecs,
        "acceptance": {
            "required_cold_speedup": 3.0,
            "null_suppression_cold": codecs["null_suppression"]
            ["speedup_cold"],
            "dictionary_cold": codecs["dictionary"]["speedup_cold"],
        },
        "parity": "bit-identical (asserted per codec)",
    }
    emit_result("size_kernels", report,
                parameters={"mode": "smoke" if smoke else "full"},
                output=output)
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Time scalar vs. vectorized size-only compression "
                    "kernels per codec.")
    parser.add_argument("--smoke", action="store_true",
                        help="small CI-sized index (seconds, not minutes)")
    parser.add_argument("--output", type=pathlib.Path,
                        default=RESULTS_DIR / "BENCH_size_kernels.json",
                        help="where to write the JSON baseline")
    args = parser.parse_args(argv)
    report = run(args.smoke, args.output)
    print(json.dumps(report, indent=2))
    print(f"\nbaseline written to {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
