"""Experiment `store_warm_start` — cold vs. warm runs of one batch.

The persistent :class:`~repro.store.store.SampleStore` exists so that
repeated invocations over the same stored tables (the compression-aware
design-tool loop of Kimura et al.) skip re-drawing entirely. This bench
measures exactly that: the same advisor-sized estimation batch runs
three times against one store directory —

1. **cold** — empty store: every sample materializes and writes through;
2. **warm** — a fresh engine (simulating a new process) on the same
   store: every finished estimate loads from disk, zero samples drawn;
3. **sample-tier** — a previously unseen algorithm over the same
   tables: estimates must be recomputed, but samples come from disk.

It asserts the three runs' shared estimates are bit-identical, records
wall-times plus per-tier hit counts, and persists the JSON baseline —
``benchmarks/results/BENCH_store_warm_start.json`` — that CI uploads on
every PR.

Run it directly (it is a script, not a pytest module)::

    PYTHONPATH=src python benchmarks/bench_store_warm_start.py           # full
    PYTHONPATH=src python benchmarks/bench_store_warm_start.py --smoke   # CI

Interpreting the numbers: the warm run's speedup grows with sample
size and compression cost (both are skipped), and shrinks with disk
latency; the sample-tier run sits in between because only the draw is
skipped. All three are expected to beat cold even on a slow runner.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import shutil
import sys
import tempfile

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from _common import RESULTS_DIR, emit_result  # noqa: E402

from repro._version import __version__  # noqa: E402
from repro.engine import EstimationEngine, EstimationRequest  # noqa: E402
from repro.experiments.runner import timed  # noqa: E402
from repro.storage.index import IndexKind  # noqa: E402
from repro.store import SampleStore  # noqa: E402
from repro.workloads.generators import make_multicolumn_table  # noqa: E402

MASTER_SEED = 5100

FULL_ALGORITHMS = ["null_suppression", "global_dictionary", "dictionary",
                   "prefix", "rle"]
SMOKE_ALGORITHMS = ["null_suppression", "global_dictionary"]

#: Algorithm held out of the first two runs to exercise the sample tier.
HELD_OUT_ALGORITHM = "delta"


def build_workload(smoke: bool) -> tuple[dict, list[tuple[str, tuple]]]:
    """Tables plus the advisor's (table, column-set) candidate grid."""
    scale = 1 if smoke else 8
    tables = {
        "orders": make_multicolumn_table(
            "orders", 1_500 * scale,
            [("status", 10, 6), ("customer", 24, 500),
             ("region", 12, 20)], page_size=4096, seed=5101),
        "parts": make_multicolumn_table(
            "parts", 1_000 * scale,
            [("sku", 24, 400), ("brand", 16, 30)],
            page_size=4096, seed=5102),
    }
    key_sets = [
        ("orders", ("status",)),
        ("orders", ("customer",)),
        ("orders", ("region",)),
        ("parts", ("sku",)),
        ("parts", ("brand",)),
    ]
    return tables, key_sets


def build_requests(tables: dict, key_sets: list, algorithms: list,
                   fraction: float, trials: int,
                   ) -> list[EstimationRequest]:
    requests = []
    for table_name, key_columns in key_sets:
        table = tables[table_name]
        for algorithm in algorithms:
            requests.append(EstimationRequest(
                table=table, columns=key_columns, algorithm=algorithm,
                fraction=fraction, trials=trials,
                kind=IndexKind.NONCLUSTERED, page_size=table.page_size,
                label=f"{table_name}:{','.join(key_columns)}"
                      f":{algorithm}"))
    return requests


def fingerprint(batch) -> list[tuple]:
    return [(estimate.estimate, estimate.sample_rows,
             estimate.compressed_sample_bytes)
            for result in batch.results
            for estimate in result.estimates]


def tier_counts(stats: dict) -> dict:
    return {name: stats[name]
            for name in ("samples_materialized", "sample_cache_hits",
                         "sample_store_hits", "sample_store_writes",
                         "estimate_store_hits", "estimate_store_writes",
                         "estimates_computed")}


def run(smoke: bool, store_dir: pathlib.Path | None,
        output: pathlib.Path) -> dict:
    algorithms = SMOKE_ALGORITHMS if smoke else FULL_ALGORITHMS
    fraction = 0.05 if smoke else 0.2
    trials = 1 if smoke else 5

    cleanup = store_dir is None
    if store_dir is None:
        store_dir = pathlib.Path(tempfile.mkdtemp(prefix="repro-store-"))
    store = SampleStore(store_dir)
    try:
        # Workloads rebuild per run on purpose: a warm start must work
        # from *content*, not from object identity held in memory.
        runs: dict[str, dict] = {}
        prints: dict[str, list] = {}
        for name, algos in (("cold", algorithms), ("warm", algorithms),
                            ("sample_tier", [HELD_OUT_ALGORITHM])):
            tables, key_sets = build_workload(smoke)
            requests = build_requests(tables, key_sets, algos, fraction,
                                      trials)
            engine = EstimationEngine(seed=MASTER_SEED, store=store)
            outcome = timed(lambda: engine.execute(requests))
            runs[name] = {"seconds": outcome.seconds,
                          "tiers": tier_counts(outcome.value.stats)}
            prints[name] = fingerprint(outcome.value)

        if prints["cold"] != prints["warm"]:
            raise AssertionError(
                "warm-start changed the estimates — the store broke "
                "the determinism contract")
        if runs["warm"]["tiers"]["samples_materialized"] != 0:
            raise AssertionError(
                "warm run drew samples; expected every unit to load "
                "from the store")
        if runs["sample_tier"]["tiers"]["samples_materialized"] != 0:
            raise AssertionError(
                "sample-tier run drew samples; expected disk hits")

        store_stats = store.stats()
        report = {
            "experiment": "store_warm_start",
            "version": __version__,
            "mode": "smoke" if smoke else "full",
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
            "batch": {
                "requests": len(algorithms) * 5,
                "trial_units": len(algorithms) * 5 * trials,
                "algorithms": algorithms,
                "held_out_algorithm": HELD_OUT_ALGORITHM,
                "fraction": fraction,
                "trials": trials,
            },
            "runs": runs,
            "warm_speedup_vs_cold": round(
                runs["cold"]["seconds"] / runs["warm"]["seconds"], 3),
            "sample_tier_speedup_vs_cold": round(
                runs["cold"]["seconds"] /
                runs["sample_tier"]["seconds"], 3),
            "store": {
                "entries": store_stats["total_entries"],
                "bytes": store_stats["total_bytes"],
            },
            "estimates_identical": True,
        }
    finally:
        if cleanup:
            shutil.rmtree(store_dir, ignore_errors=True)
    emit_result("store_warm_start", report,
                parameters={"mode": "smoke" if smoke else "full"},
                output=output)
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Time cold vs. warm estimation batches against a "
                    "persistent sample store.")
    parser.add_argument("--smoke", action="store_true",
                        help="small CI-sized batch (seconds, not minutes)")
    parser.add_argument("--store-dir", type=pathlib.Path, default=None,
                        help="store directory to use (default: a "
                             "temporary one, removed afterwards)")
    parser.add_argument("--output", type=pathlib.Path,
                        default=RESULTS_DIR / "BENCH_store_warm_start.json",
                        help="where to write the JSON baseline")
    args = parser.parse_args(argv)
    report = run(args.smoke, args.store_dir, args.output)
    print(json.dumps(report, indent=2))
    print(f"\nbaseline written to {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
