"""Experiment `whatif_advisor` — lazy bound-pruned vs. eager advisor.

The eager :func:`~repro.advisor.selection.advise_from_data` estimates
every (key set × algorithm) candidate at the full trial budget before
selecting anything. The lazy
:class:`~repro.advisor.whatif.WhatIfAdvisor` drives the greedy loop
through the engine instead: Theorem 1/2 CF bounds prune candidates
that provably cannot win a round, and adaptive allocation stops
spending trials on candidates whose intervals are already decisive.
This bench measures exactly that trade on a paper-scale workload:

* **engine units executed** (trial estimations) — the what-if
  advisor's whole point; the run *fails* if the lazy path does not cut
  units by at least :data:`REQUIRED_SAVINGS` in full mode, or if any
  storage bound produces a design that differs from the eager one in
  any byte (candidates, sizes, step log, costs);
* **wall-clock** per advisor run, eager vs. lazy.

Run it directly (it is a script, not a pytest module)::

    PYTHONPATH=src python benchmarks/bench_whatif_advisor.py           # full
    PYTHONPATH=src python benchmarks/bench_whatif_advisor.py --smoke   # CI

Interpreting the numbers: savings grow with the trial budget (losers
stop after 1-2 trials instead of running all ``T``), with the
algorithm pool (more losers per key set), and with tighter storage
bounds (budget pruning needs no estimates at all); they shrink toward
zero when every candidate is a genuine contender.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from _common import RESULTS_DIR, emit_result  # noqa: E402

from repro._version import __version__  # noqa: E402
from repro.advisor import (CostModel, Query, WhatIfAdvisor,  # noqa: E402
                           advise_from_data)
from repro.engine import EstimationEngine  # noqa: E402
from repro.experiments.runner import timed  # noqa: E402
from repro.workloads.generators import make_multicolumn_table  # noqa: E402

MASTER_SEED = 7200
PAGE = 4096

FULL_ALGORITHMS = ["null_suppression", "dictionary", "global_dictionary",
                   "rle", "prefix"]
SMOKE_ALGORITHMS = ["null_suppression", "dictionary", "rle"]

#: Acceptance floor for full mode: the lazy advisor must execute at
#: least this fraction fewer engine units than the eager one.
REQUIRED_SAVINGS = 0.30

#: Storage bounds as fractions of the workload's total uncompressed
#: candidate footprint.
FULL_BOUND_FRACTIONS = (0.05, 0.1, 0.2, 0.4)
SMOKE_BOUND_FRACTIONS = (0.1, 0.2)


def build_workload(smoke: bool):
    scale = 1 if smoke else 6
    tables = {
        "orders": make_multicolumn_table(
            "orders", 1_500 * scale,
            [("status", 10, 6), ("customer", 24, 500),
             ("region", 12, 20)], page_size=PAGE, seed=7201),
        "parts": make_multicolumn_table(
            "parts", 1_000 * scale,
            [("sku", 24, 400), ("brand", 16, 30)],
            page_size=PAGE, seed=7202),
        "events": make_multicolumn_table(
            "events", 800 * scale,
            [("kind", 8, 12), ("source", 20, 150)],
            page_size=PAGE, seed=7203),
    }
    queries = [
        Query("q_status", "orders", ("status",), selectivity=0.15,
              weight=10),
        Query("q_customer", "orders", ("customer",), selectivity=0.03,
              weight=6),
        Query("q_region", "orders", ("region",), selectivity=0.2,
              weight=4),
        Query("q_cust_reg", "orders", ("customer", "region"),
              selectivity=0.02, weight=3),
        Query("q_sku", "parts", ("sku",), selectivity=0.05, weight=5),
        Query("q_brand", "parts", ("brand",), selectivity=0.25,
              weight=3),
        Query("q_kind", "events", ("kind",), selectivity=0.3, weight=4),
        Query("q_source", "events", ("source",), selectivity=0.04,
              weight=2),
    ]
    return tables, queries


def total_plain_bytes(tables) -> int:
    return sum(
        table.num_rows
        * (sum(column.dtype.fixed_size
               for column in table.schema.columns) + 8)
        for table in tables.values())


def design_fingerprint(result) -> list[tuple]:
    return [(c.table, c.key_columns, c.compressed, c.algorithm,
             c.size_bytes) for c in result.chosen]


def run_bound(tables, queries, algorithms, trials, fraction,
              bound: float) -> dict:
    """One eager run and one lazy run at the same storage bound."""
    model = CostModel(PAGE)
    eager_engine = EstimationEngine(seed=MASTER_SEED)
    eager_timing = timed(lambda: advise_from_data(
        tables, queries, bound, algorithms=algorithms,
        fraction=fraction, trials=trials, model=model,
        engine=eager_engine))
    eager = eager_timing.value
    eager_units = eager_engine.stats["trials"]

    advisor = WhatIfAdvisor(
        tables, queries, algorithms=algorithms, fraction=fraction,
        max_trials=trials, model=model, seed=MASTER_SEED)
    lazy_timing = timed(lambda: advisor.advise(bound))
    lazy = lazy_timing.value
    report = lazy.report

    identical = (lazy.chosen == eager.chosen
                 and lazy.steps == eager.steps
                 and lazy.bytes_used == eager.bytes_used
                 and lazy.cost_after == eager.cost_after)
    if not identical:
        raise AssertionError(
            f"lazy design diverged from eager at bound {bound:.0f}: "
            f"{design_fingerprint(lazy)} vs {design_fingerprint(eager)}")
    if report.units_executed != eager_units - report.units_saved:
        raise AssertionError(
            "what-if unit accounting does not reconcile with the "
            "eager engine's trial count")
    return {
        "storage_bound_bytes": round(bound),
        "chosen": len(lazy.chosen),
        "eager_units": eager_units,
        "lazy_units": report.units_executed,
        "units_saved": report.units_saved,
        "savings_fraction": round(report.savings_fraction, 4),
        "rounds": report.rounds,
        "pruned_never_estimated": report.pruned_never_estimated,
        "early_stopped": report.early_stopped,
        "prune_events": len(report.prune_events),
        "eager_seconds": eager_timing.seconds,
        "lazy_seconds": lazy_timing.seconds,
        "speedup": round(eager_timing.seconds
                         / max(lazy_timing.seconds, 1e-9), 3),
        "design": [f"{c.name} ({c.size_bytes:.0f} B)"
                   for c in lazy.chosen],
    }


def run(smoke: bool, output: pathlib.Path) -> dict:
    algorithms = SMOKE_ALGORITHMS if smoke else FULL_ALGORITHMS
    trials = 3 if smoke else 6
    fraction = 0.1
    bound_fractions = SMOKE_BOUND_FRACTIONS if smoke \
        else FULL_BOUND_FRACTIONS
    tables, queries = build_workload(smoke)
    footprint = total_plain_bytes(tables)
    bounds = [footprint * f for f in bound_fractions]
    runs = [run_bound(tables, queries, algorithms, trials, fraction,
                      bound) for bound in bounds]
    worst = min(entry["savings_fraction"] for entry in runs)
    mean_savings = sum(entry["savings_fraction"]
                       for entry in runs) / len(runs)
    if not smoke and worst < REQUIRED_SAVINGS:
        raise AssertionError(
            f"lazy advisor saved only {worst:.1%} engine units at its "
            f"worst bound; the acceptance floor is "
            f"{REQUIRED_SAVINGS:.0%}")
    report = {
        "experiment": "whatif_advisor",
        "version": __version__,
        "mode": "smoke" if smoke else "full",
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "workload": {
            "tables": {name: table.num_rows
                       for name, table in tables.items()},
            "queries": len(queries),
            "algorithms": algorithms,
            "trials": trials,
            "fraction": fraction,
            "uncompressed_candidate_bytes": footprint,
        },
        "required_savings": REQUIRED_SAVINGS,
        "runs": runs,
        "worst_savings_fraction": worst,
        "mean_savings_fraction": round(mean_savings, 4),
        "designs_identical": True,
    }
    emit_result("whatif_advisor", report,
                parameters={"mode": "smoke" if smoke else "full"},
                output=output)
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Engine units and wall-clock of the lazy what-if "
                    "advisor vs. the eager advisor, with identical "
                    "selected designs asserted.")
    parser.add_argument("--smoke", action="store_true",
                        help="small CI-sized workload (seconds)")
    parser.add_argument("--output", type=pathlib.Path,
                        default=RESULTS_DIR / "BENCH_whatif_advisor.json",
                        help="where to write the JSON baseline")
    args = parser.parse_args(argv)
    report = run(args.smoke, args.output)
    print(json.dumps(report, indent=2))
    print(f"\nbaseline written to {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
