"""Experiment `table2` — Table II: the paper's summary of results,
measured.

The paper's result grid:

| Technique  | Bias | Small d (o(n))           | Large d (O(n))            |
|------------|------|--------------------------|---------------------------|
| Null supp. | No   | Variance <= 1/(4r)       | Variance <= 1/(4r)        |
| Dictionary | Yes  | ratio error close to 1   | ratio error <= constant   |

This bench measures every cell at n = 1M (histogram fast path,
distributionally identical to the storage path) and asserts each claim.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.compression.global_dictionary import GlobalDictionaryCompression
from repro.compression.null_suppression import NullSuppression
from repro.core.bounds import (dict_large_d_bound, dict_small_d_bound,
                               ns_variance_bound)
from repro.core.cf_models import global_dictionary_cf, ns_cf
from repro.core.metrics import ErrorSummary
from repro.core.samplecf import SampleCF
from repro.experiments.runner import run_trials
from repro.experiments.report import format_table
from repro.workloads.generators import make_histogram

from _common import write_report

N = 1_000_000
K = 20
P = 2
F = 0.01
TRIALS = 200

SMALL_D = 100                       # o(n) regime
LARGE_D = N // 2                    # O(n) regime (alpha = 0.5)


def _cell(algorithm, histogram, truth, seed) -> ErrorSummary:
    estimator = SampleCF(algorithm)
    estimates = run_trials(
        lambda rng: estimator.estimate_histogram(histogram, F,
                                                 seed=rng).estimate,
        trials=TRIALS, seed=seed)
    return ErrorSummary.from_estimates(truth, estimates)


def _run_table2() -> dict:
    small = make_histogram(N, SMALL_D, K, distribution="zipf", seed=301)
    large = make_histogram(N, LARGE_D, K,
                           distribution="singleton_heavy", seed=302)
    cells = {}
    cells["ns_small"] = _cell(NullSuppression(), small, ns_cf(small), 1)
    cells["ns_large"] = _cell(NullSuppression(), large, ns_cf(large), 2)
    dictionary = GlobalDictionaryCompression(pointer_bytes=P)
    cells["dict_small"] = _cell(
        dictionary, small, global_dictionary_cf(small, pointer_bytes=P), 3)
    cells["dict_large"] = _cell(
        dictionary, large, global_dictionary_cf(large, pointer_bytes=P), 4)
    return cells


@pytest.fixture(scope="module")
def cells() -> dict:
    return _run_table2()


def test_table2_measured_grid(benchmark, cells):
    benchmark.pedantic(
        lambda: _cell(NullSuppression(),
                      make_histogram(N, SMALL_D, K, seed=301),
                      1.0, 9),
        rounds=1, iterations=1)
    _report(cells)
    # Run every Table II claim here too: the granular tests below are
    # skipped under --benchmark-only, and the bench run must assert the
    # paper's shape claims.
    test_table2_ns_unbiased_small_d(cells)
    test_table2_ns_unbiased_large_d(cells)
    test_table2_ns_variance_bounded_both_regimes(cells)
    test_table2_dict_biased(cells)
    test_table2_dict_small_d_close_to_one(cells)
    test_table2_dict_large_d_constant(cells)
    test_table2_ns_beats_dict_on_ratio_error(cells)


def _report(cells):
    r = round(F * N)
    variance_bound = ns_variance_bound(r=r)
    small_bound = dict_small_d_bound(N, SMALL_D, K, P, F).bound
    large_bound = dict_large_d_bound(LARGE_D / N, F, K, P).bound
    rows = [
        ["Null Suppression", "No",
         f"var {cells['ns_small'].variance:.2e} <= {variance_bound:.2e}",
         f"var {cells['ns_large'].variance:.2e} <= {variance_bound:.2e}"],
        ["Dictionary", "Yes",
         f"ratio err {cells['dict_small'].mean_ratio_error:.4f} "
         f"(bound {small_bound:.4f})",
         f"ratio err {cells['dict_large'].mean_ratio_error:.4f} "
         f"(bound {large_bound:.2f})"],
    ]
    write_report("table2", format_table(
        ["Compression Technique", "Estimator Bias",
         f"Small d ({SMALL_D})", f"Large d ({LARGE_D})"], rows,
        title=f"Table II measured (n={N:,}, f={F:.0%}, {TRIALS} trials)"))


def test_table2_ns_unbiased_small_d(cells):
    summary = cells["ns_small"]
    standard_error = max(summary.std / math.sqrt(summary.trials), 1e-12)
    assert abs(summary.bias) <= 4 * standard_error


def test_table2_ns_unbiased_large_d(cells):
    summary = cells["ns_large"]
    standard_error = max(summary.std / math.sqrt(summary.trials), 1e-12)
    assert abs(summary.bias) <= 4 * standard_error


def test_table2_ns_variance_bounded_both_regimes(cells):
    bound = ns_variance_bound(r=round(F * N))
    assert cells["ns_small"].variance <= bound
    assert cells["ns_large"].variance <= bound


def test_table2_dict_biased(cells):
    """Dictionary row, 'Bias: Yes' — visible in at least one regime.

    (In the singleton-heavy large-d workload the plug-in is nearly
    unbiased; the bias shows in the small-d/zipf cell where sampled
    distinct counts scale differently than d/n.)"""
    biased = []
    for cell in ("dict_small", "dict_large"):
        summary = cells[cell]
        standard_error = max(summary.std / math.sqrt(summary.trials),
                             1e-12)
        biased.append(abs(summary.bias) > 5 * standard_error)
    assert any(biased)


def test_table2_dict_small_d_close_to_one(cells):
    bound = dict_small_d_bound(N, SMALL_D, K, P, F).bound
    assert cells["dict_small"].max_ratio_error <= bound
    assert cells["dict_small"].mean_ratio_error <= 1.1


def test_table2_dict_large_d_constant(cells):
    bound = dict_large_d_bound(LARGE_D / N, F, K, P).bound
    assert cells["dict_large"].mean_ratio_error <= bound


def test_table2_ns_beats_dict_on_ratio_error(cells):
    """The qualitative story: NS estimates are uniformly tighter."""
    assert cells["ns_small"].mean_ratio_error <= \
        cells["dict_small"].mean_ratio_error + 1e-9
    assert cells["ns_large"].mean_ratio_error <= \
        cells["dict_large"].mean_ratio_error + 1e-9
