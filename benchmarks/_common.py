"""Shared helpers for the benchmark harness.

Every bench regenerates one paper artefact (DESIGN.md section 5): it
prints the paper-style rows, persists them under ``benchmarks/results/``
so the harness output survives pytest's capture, and asserts the *shape*
claims (who wins, what's bounded, what converges). Timings come from
pytest-benchmark.
"""

from __future__ import annotations

import os
import pathlib

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def bench_store() -> str | None:
    """Optional shared sample/estimate store for artefact regeneration.

    Set ``REPRO_BENCH_STORE_DIR`` to let every engine-backed bench
    warm-start from samples and estimates persisted by earlier runs
    (and by each other): a full-suite regeneration then materializes
    each (source, fraction, trial) sample once across figures instead
    of once per bench. Unset (the default, and what CI uses) keeps the
    benches hermetic.
    """
    directory = os.environ.get("REPRO_BENCH_STORE_DIR")
    return directory if directory else None


def write_report(experiment_id: str, text: str) -> None:
    """Print a report block and persist it to benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{experiment_id}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print()
    print(text)


def hexdump(data: bytes, limit: int = 24) -> str:
    """Short hex rendering used by the Figure 1 byte-image report."""
    shown = data[:limit]
    suffix = "..." if len(data) > limit else ""
    return shown.hex(" ") + suffix
