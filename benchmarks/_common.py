"""Shared helpers for the benchmark harness.

Every bench regenerates one paper artefact (DESIGN.md section 5): it
prints the paper-style rows, persists them under ``benchmarks/results/``
so the harness output survives pytest's capture, and asserts the *shape*
claims (who wins, what's bounded, what converges). Timings come from
pytest-benchmark.

Result files all flow through :func:`emit_result`, which stamps one
schema envelope (``schema_version`` / ``experiment`` / ``version`` /
``parameters`` / ``results``) around every bench's payload — the
machine-readable ``BENCH_<id>.json`` CI uploads as artifacts. Measured
durations belong in the payload; *creation* timestamps do not (results
must be byte-identical across reruns of an unchanged bench, the same
discipline ``repro lint`` enforces on the estimate path).
"""

from __future__ import annotations

import json
import os
import pathlib

from repro._version import __version__

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"

#: Envelope version for ``BENCH_*.json`` result files.
RESULT_SCHEMA_VERSION = 1


def bench_store() -> str | None:
    """Optional shared sample/estimate store for artefact regeneration.

    Set ``REPRO_BENCH_STORE_DIR`` to let every engine-backed bench
    warm-start from samples and estimates persisted by earlier runs
    (and by each other): a full-suite regeneration then materializes
    each (source, fraction, trial) sample once across figures instead
    of once per bench. Unset (the default, and what CI uses) keeps the
    benches hermetic.
    """
    directory = os.environ.get("REPRO_BENCH_STORE_DIR")
    return directory if directory else None


def emit_result(experiment_id: str, payload: object,
                parameters: dict | None = None,
                text: str | None = None,
                output: pathlib.Path | str | None = None) -> pathlib.Path:
    """Persist one bench's results in the shared schema envelope.

    Writes ``BENCH_<experiment_id>.json`` (or ``output`` when the bench
    takes an ``--output`` flag) containing ``schema_version``, the
    experiment id, the package version, the ``parameters`` the run was
    configured with, and the bench's ``payload`` under ``results``.
    ``text`` additionally persists the human-readable report block as
    ``<experiment_id>.txt`` and prints it, preserving the historical
    ``write_report`` behaviour.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    document = {
        "schema_version": RESULT_SCHEMA_VERSION,
        "experiment": experiment_id,
        "version": __version__,
        "parameters": dict(parameters) if parameters else {},
        "results": payload,
    }
    path = (pathlib.Path(output) if output is not None
            else RESULTS_DIR / f"BENCH_{experiment_id}.json")
    path.parent.mkdir(exist_ok=True)
    path.write_text(json.dumps(document, indent=2) + "\n",
                    encoding="utf-8")
    if text is not None:
        text_path = RESULTS_DIR / f"{experiment_id}.txt"
        text_path.write_text(text + "\n", encoding="utf-8")
        print()
        print(text)
    return path


def write_report(experiment_id: str, text: str,
                 parameters: dict | None = None) -> None:
    """Print a report block and persist it (text + schema envelope)."""
    emit_result(experiment_id, {"report": text.splitlines()},
                parameters=parameters, text=text)


def hexdump(data: bytes, limit: int = 24) -> str:
    """Short hex rendering used by the Figure 1 byte-image report."""
    shown = data[:limit]
    suffix = "..." if len(data) > limit else ""
    return shown.hex(" ") + suffix
