"""Experiment `abl-block` — tuple vs block-level sampling.

The paper assumes uniform tuple sampling and defers block (page)
sampling to future work, noting commercial systems sample pages. This
ablation measures what that substitution costs: at an equal row budget,
page sampling delivers correlated rows, and the measured effect cuts in
*opposite directions* for the two techniques on a clustered layout:

* for **null suppression** correlation hurts — one page holds values of
  similar length, so the effective sample is smaller and noisier;
* for **dictionary compression** correlation *helps* — pages are
  contiguous key runs, so the sampled distinct-per-row rate ``d'/r``
  stays proportional to ``d/n`` instead of saturating at
  ``min(d, r)/r`` the way tuple samples do.

On a shuffled (heap) layout pages are effectively random row sets and
block sampling matches tuple sampling for both techniques.
"""

from __future__ import annotations

import pytest

from repro.sampling.block import BlockSampler
from repro.compression.global_dictionary import GlobalDictionaryCompression
from repro.compression.null_suppression import NullSuppression
from repro.core.metrics import ErrorSummary
from repro.core.samplecf import SampleCF, true_cf_table
from repro.experiments.report import format_table
from repro.experiments.runner import run_trials
from repro.workloads.generators import histogram_to_table, make_histogram

from _common import write_report

N = 50_000
K = 20
PAGE = 4096
F = 0.01
TRIALS = 30


@pytest.fixture(scope="module")
def tables() -> dict:
    histogram = make_histogram(N, 500, K, seed=800)
    return {
        "histogram": histogram,
        "sorted": histogram_to_table(histogram, order="sorted",
                                     page_size=PAGE),
        "shuffled": histogram_to_table(histogram, order="shuffled",
                                       page_size=PAGE, seed=801),
    }


def _error_summary(table, algorithm, sampler, truth, seed) -> ErrorSummary:
    estimator = SampleCF(algorithm, sampler=sampler, page_size=PAGE)
    estimates = run_trials(
        lambda rng: estimator.estimate_table(
            table, F, ["a"], seed=rng).estimate,
        trials=TRIALS, seed=seed)
    return ErrorSummary.from_estimates(truth, estimates)


@pytest.fixture(scope="module")
def grid(tables) -> dict:
    results = {}
    for algo_name, algorithm in (
            ("null_suppression", NullSuppression()),
            ("global_dictionary", GlobalDictionaryCompression())):
        for layout in ("sorted", "shuffled"):
            table = tables[layout]
            truth = true_cf_table(table, ["a"], algorithm,
                                  page_size=PAGE)
            results[(algo_name, layout, "tuple")] = _error_summary(
                table, algorithm, None, truth, 11)
            results[(algo_name, layout, "block")] = _error_summary(
                table, algorithm, BlockSampler(), truth, 13)
    return results


def test_block_vs_tuple_grid(benchmark, grid, tables):
    estimator = SampleCF(NullSuppression(), sampler=BlockSampler(),
                         page_size=PAGE)
    benchmark.pedantic(
        estimator.estimate_table,
        args=(tables["shuffled"], F, ["a"]), kwargs={"seed": 5},
        rounds=3, iterations=1)
    rows = []
    for (algo, layout, design), summary in sorted(grid.items()):
        rows.append([algo, layout, design,
                     f"{summary.mean_ratio_error:.4f}",
                     f"{summary.std:.5f}"])
    write_report("abl_block", format_table(
        ["algorithm", "layout", "sampling", "mean ratio err", "sigma"],
        rows,
        title=f"Tuple vs block sampling (n={N:,}, f={F:.0%}, "
              f"{TRIALS} trials)"))
    # Granular tests are skipped under --benchmark-only; assert here.
    test_block_on_shuffled_layout_matches_tuple(grid)
    test_block_on_clustered_layout_opposite_effects(grid)
    test_tuple_sampling_layout_invariant(grid)


def test_block_on_shuffled_layout_matches_tuple(grid):
    """Random layout: pages are effectively random row sets, so block
    sampling inherits tuple sampling's accuracy (including the
    dictionary estimator's d'/r overshoot — that error belongs to the
    estimator, not the sampling design)."""
    for algo in ("null_suppression", "global_dictionary"):
        block = grid[(algo, "shuffled", "block")].mean_ratio_error
        tuple_ = grid[(algo, "shuffled", "tuple")].mean_ratio_error
        assert block == pytest.approx(tuple_, rel=0.25)
    assert grid[("null_suppression", "shuffled",
                 "block")].mean_ratio_error < 1.3


def test_block_on_clustered_layout_opposite_effects(grid):
    """Clustered layout: block sampling hurts NS but rescues the
    dictionary estimator (contiguous key runs keep d'/r proportional
    to d/n)."""
    ns_block = grid[("null_suppression", "sorted",
                     "block")].mean_ratio_error
    ns_tuple = grid[("null_suppression", "sorted",
                     "tuple")].mean_ratio_error
    assert ns_block > ns_tuple

    dict_block = grid[("global_dictionary", "sorted",
                       "block")].mean_ratio_error
    dict_tuple = grid[("global_dictionary", "sorted",
                       "tuple")].mean_ratio_error
    assert dict_block < dict_tuple
    assert dict_block < 1.5


def test_tuple_sampling_layout_invariant(grid):
    """Uniform tuple sampling cannot see the physical layout."""
    for algo in ("null_suppression", "global_dictionary"):
        sorted_error = grid[(algo, "sorted", "tuple")].mean_ratio_error
        shuffled_error = grid[(algo, "shuffled",
                               "tuple")].mean_ratio_error
        assert abs(sorted_error - shuffled_error) < 0.25
