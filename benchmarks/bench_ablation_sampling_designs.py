"""Experiment `abl-replacement` — sampling-design ablation.

The paper's analysis assumes uniform sampling *with replacement*
(Section II-C). Real systems use without-replacement row sampling,
Bernoulli scans, or reservoir sampling over a stream. This ablation
measures whether the design choice matters for the estimator at equal
sampling fraction. (Spoiler: without-replacement is never worse — the
finite-population correction only shrinks variance — so the paper's
with-replacement analysis is the conservative one.)
"""

from __future__ import annotations

import pytest

from repro.sampling.reservoir import ReservoirSampler
from repro.sampling.row_samplers import (BernoulliSampler,
                                         WithoutReplacementSampler,
                                         WithReplacementSampler)
from repro.compression.global_dictionary import GlobalDictionaryCompression
from repro.compression.null_suppression import NullSuppression
from repro.core.cf_models import global_dictionary_cf, ns_cf
from repro.core.metrics import ErrorSummary
from repro.core.samplecf import SampleCF
from repro.experiments.report import format_table
from repro.experiments.runner import run_trials
from repro.workloads.generators import make_histogram

from _common import write_report

N = 1_000_000
K = 20
P = 2
TRIALS = 100
FRACTIONS = (0.01, 0.1)


def _designs(fraction: float) -> dict:
    return {
        "with_replacement": WithReplacementSampler(),
        "without_replacement": WithoutReplacementSampler(),
        "bernoulli": BernoulliSampler(fraction),
        "reservoir": ReservoirSampler(),
    }


@pytest.fixture(scope="module")
def grid() -> dict:
    histogram = make_histogram(N, 5_000, K, seed=1000)
    truths = {
        "null_suppression": ns_cf(histogram),
        "global_dictionary": global_dictionary_cf(histogram,
                                                  pointer_bytes=P),
    }
    algorithms = {
        "null_suppression": NullSuppression(),
        "global_dictionary": GlobalDictionaryCompression(pointer_bytes=P),
    }
    results: dict = {}
    for fraction in FRACTIONS:
        for design_name, sampler in _designs(fraction).items():
            for algo_name, algorithm in algorithms.items():
                estimator = SampleCF(algorithm, sampler=sampler)
                estimates = run_trials(
                    lambda rng: estimator.estimate_histogram(
                        histogram, fraction, seed=rng).estimate,
                    trials=TRIALS,
                    seed=hash((design_name, algo_name, fraction)) % 2**31)
                results[(fraction, design_name, algo_name)] = \
                    ErrorSummary.from_estimates(truths[algo_name],
                                                estimates)
    return results


def test_sampling_design_grid(benchmark, grid):
    histogram = make_histogram(100_000, 500, K, seed=1001)
    estimator = SampleCF(NullSuppression(),
                         sampler=WithoutReplacementSampler())
    benchmark.pedantic(estimator.estimate_histogram,
                       args=(histogram, 0.01), kwargs={"seed": 1},
                       rounds=3, iterations=1)
    rows = []
    for (fraction, design, algo), summary in sorted(grid.items()):
        rows.append([f"{fraction:.0%}", design, algo,
                     f"{summary.bias:+.5f}", f"{summary.std:.5f}",
                     f"{summary.mean_ratio_error:.4f}"])
    write_report("abl_sampling_designs", format_table(
        ["f", "design", "algorithm", "bias", "sigma",
         "mean ratio err"], rows,
        title=f"Sampling designs at equal fraction (n={N:,}, "
              f"{TRIALS} trials)"))
    # Granular tests are skipped under --benchmark-only; assert here.
    test_without_replacement_never_noticeably_worse(grid)
    test_reservoir_matches_without_replacement(grid)
    test_bernoulli_comparable(grid)
    test_all_designs_unbiased_for_ns(grid)


def test_without_replacement_never_noticeably_worse(grid):
    for fraction in FRACTIONS:
        for algo in ("null_suppression", "global_dictionary"):
            with_r = grid[(fraction, "with_replacement", algo)]
            without_r = grid[(fraction, "without_replacement", algo)]
            assert without_r.std <= with_r.std * 1.25, (fraction, algo)


def test_reservoir_matches_without_replacement(grid):
    """Reservoir sampling IS uniform without replacement."""
    for fraction in FRACTIONS:
        reservoir = grid[(fraction, "reservoir", "null_suppression")]
        direct = grid[(fraction, "without_replacement",
                       "null_suppression")]
        assert reservoir.std == pytest.approx(direct.std, rel=0.5,
                                              abs=1e-4)


def test_bernoulli_comparable(grid):
    """Bernoulli's random size adds little at these scales."""
    for fraction in FRACTIONS:
        bernoulli = grid[(fraction, "bernoulli", "null_suppression")]
        fixed = grid[(fraction, "with_replacement", "null_suppression")]
        assert bernoulli.mean_ratio_error <= \
            fixed.mean_ratio_error * 1.25


def test_all_designs_unbiased_for_ns(grid):
    import math

    for (fraction, design, algo), summary in grid.items():
        if algo != "null_suppression":
            continue
        standard_error = max(summary.std / math.sqrt(summary.trials),
                             1e-12)
        assert abs(summary.bias) <= 6 * standard_error, (fraction, design)
