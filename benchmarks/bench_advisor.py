"""Experiment `app-advisor` — physical design under a storage bound.

The paper's motivating application (Section I): an automated physical
design tool must estimate compressed index sizes to (a) respect the
storage bound and (b) reason about I/O costs. This bench runs the full
advisor loop twice — once consuming SampleCF estimates and once
consuming exact compressed sizes — and measures how much the estimation
error changes the final design and its cost.
"""

from __future__ import annotations

import pytest

from repro.advisor.candidates import enumerate_candidates
from repro.advisor.cost import CostModel, Query, TableStats
from repro.advisor.selection import select_indexes
from repro.experiments.report import format_table
from repro.workloads.generators import make_multicolumn_table

from _common import write_report

PAGE = 4096


@pytest.fixture(scope="module")
def workload() -> dict:
    orders = make_multicolumn_table(
        "orders", 6_000,
        [("status", 10, 6), ("customer", 24, 500), ("region", 12, 20)],
        page_size=PAGE, seed=1200)
    parts = make_multicolumn_table(
        "parts", 4_000, [("sku", 24, 400), ("brand", 16, 30)],
        page_size=PAGE, seed=1201)
    shipments = make_multicolumn_table(
        "shipments", 5_000, [("carrier", 14, 8), ("dest", 20, 300)],
        page_size=PAGE, seed=1202)
    tables = {"orders": orders, "parts": parts, "shipments": shipments}
    queries = [
        Query("q1", "orders", ("status",), selectivity=0.25, weight=10),
        Query("q2", "orders", ("customer",), selectivity=0.02, weight=6),
        Query("q3", "orders", ("region",), selectivity=0.1, weight=4),
        Query("q4", "orders", ("status", "region"), selectivity=0.05,
              weight=3),
        Query("q5", "parts", ("sku",), selectivity=0.05, weight=5),
        Query("q6", "parts", ("brand",), selectivity=0.15, weight=2),
        Query("q7", "shipments", ("carrier",), selectivity=0.3,
              weight=4),
        Query("q8", "shipments", ("dest",), selectivity=0.03, weight=3),
    ]
    stats = {name: TableStats(name, table.num_rows,
                              table.heap.num_pages)
             for name, table in tables.items()}
    return {"tables": tables, "queries": queries, "stats": stats}


def _run_advisor(workload: dict, size_source: str, bound: float,
                 fraction: float = 0.02, algorithm: str = "page"):
    candidates = enumerate_candidates(
        workload["tables"], workload["queries"], algorithm=algorithm,
        fraction=fraction, size_source=size_source, seed=1234)
    return select_indexes(candidates, workload["queries"],
                          workload["stats"], bound,
                          CostModel(page_size=PAGE))


@pytest.fixture(scope="module")
def results(workload) -> dict:
    bound = 250_000.0
    return {
        "bound": bound,
        "samplecf": _run_advisor(workload, "samplecf", bound),
        "exact": _run_advisor(workload, "exact", bound),
        "ns_samplecf": _run_advisor(workload, "samplecf", bound,
                                    algorithm="null_suppression"),
        "ns_exact": _run_advisor(workload, "exact", bound,
                                 algorithm="null_suppression"),
    }


def _design_of(result) -> set:
    return {(c.table, c.key_columns, c.compressed)
            for c in result.chosen}


def test_advisor_end_to_end(benchmark, workload, results):
    benchmark.pedantic(
        _run_advisor, args=(workload, "samplecf", results["bound"]),
        rounds=1, iterations=1)
    rows = []
    for label, source in (("page / samplecf", "samplecf"),
                          ("page / exact", "exact"),
                          ("ns / samplecf", "ns_samplecf"),
                          ("ns / exact", "ns_exact")):
        outcome = results[source]
        rows.append([
            label,
            str(len(outcome.chosen)),
            f"{outcome.bytes_used:,.0f}",
            f"{outcome.cost_before:,.1f}",
            f"{outcome.cost_after:,.1f}",
            f"{outcome.improvement:.1%}",
        ])
    write_report("app_advisor", format_table(
        ["algorithm / size source", "indexes", "bytes used",
         "cost before", "cost after", "improvement"], rows,
        title=f"Advisor under a {results['bound']:,.0f}-byte bound"))
    # Granular tests are skipped under --benchmark-only; assert here.
    test_ns_designs_agree_perfectly(results)
    test_page_designs_conservative_but_close(results)
    test_both_respect_bound(results)
    test_compression_enables_more_indexes(workload)


def test_ns_designs_agree_perfectly(results):
    """Theorem 1 tightness translates to decisions: with NS candidates
    the estimated and oracle designs are identical."""
    assert _design_of(results["ns_samplecf"]) == \
        _design_of(results["ns_exact"])


def test_page_designs_conservative_but_close(results):
    """PAGE compression's dictionary stage overestimates sizes in this
    mid-d regime (the paper's hardness case), so the estimated design
    fits fewer indexes — but it still captures most of the oracle's
    improvement and never overshoots the storage bound."""
    estimated = results["samplecf"]
    oracle = results["exact"]
    overlap = _design_of(estimated) & _design_of(oracle)
    union = _design_of(estimated) | _design_of(oracle)
    assert len(overlap) / max(1, len(union)) >= 0.6
    assert estimated.improvement >= 0.7 * oracle.improvement
    # Inflated estimates make the design conservative, never infeasible.
    assert len(_design_of(estimated)) <= len(_design_of(oracle))


def test_both_respect_bound(results):
    for source in ("samplecf", "exact", "ns_samplecf", "ns_exact"):
        assert results[source].bytes_used <= results["bound"]


def test_compression_enables_more_indexes(workload):
    """With a tight bound, allowing compressed candidates buys a
    cheaper workload than uncompressed-only candidates."""
    bound = 120_000.0
    all_candidates = enumerate_candidates(
        workload["tables"], workload["queries"], algorithm="page",
        size_source="exact", seed=1234)
    plain_only = [c for c in all_candidates if not c.compressed]
    model = CostModel(page_size=PAGE)
    with_compression = select_indexes(
        all_candidates, workload["queries"], workload["stats"], bound,
        model)
    without_compression = select_indexes(
        plain_only, workload["queries"], workload["stats"], bound,
        model)
    assert with_compression.cost_after <= without_compression.cost_after
