"""Experiment `thm3` — Theorem 3: dictionary compression, large d.

With ``d >= alpha n`` the sample provably retains a constant fraction of
the distinct values, so the expected ratio error is bounded by a
constant *independent of n*. We sweep n for several alpha and check (a)
the error stays below the analytic constant, and (b) it does not grow
with n — the two halves of the theorem's claim.
"""

from __future__ import annotations

import pytest

from repro.compression.global_dictionary import GlobalDictionaryCompression
from repro.core.bounds import dict_large_d_bound
from repro.core.cf_models import global_dictionary_cf
from repro.engine.requests import EstimationRequest, derive_seed
from repro.experiments.report import format_table
from repro.experiments.runner import engine_sweep
from repro.workloads.generators import make_histogram

from _common import bench_store, emit_result

K = 20
P = 2
F = 0.01
TRIALS = 30
SIZES = (10_000, 100_000, 1_000_000)
ALPHAS = (0.1, 0.25, 0.5, 1.0)


def _sweep(cells) -> dict:
    """The whole (alpha, n) grid as one engine_sweep batch."""
    def make(cell):
        alpha, n = cell
        d = max(1, int(alpha * n))
        if d >= n:
            distribution = "uniform"  # d == n -> all singletons
        else:
            distribution = "singleton_heavy"
        histogram = make_histogram(n, d, K, distribution=distribution,
                                   seed=600 + n % 97)
        truth = global_dictionary_cf(histogram, pointer_bytes=P)
        request = EstimationRequest(
            histogram=histogram,
            algorithm=GlobalDictionaryCompression(pointer_bytes=P),
            fraction=F, label=f"thm3_a{alpha}_n{n}")
        return truth, request, {}

    grid = {}
    for point in engine_sweep(cells, make, trials=TRIALS,
                              seed=derive_seed("thm3", "trials"),
                              store=bench_store()):
        alpha, n = point.parameter
        grid[(alpha, n)] = {
            "alpha": alpha,
            "n": n,
            "truth": point.summary.true_value,
            "mean_error": point.summary.mean_ratio_error,
            "bound": dict_large_d_bound(alpha, F, K, P).bound,
        }
    return grid


@pytest.fixture(scope="module")
def grid() -> dict:
    return _sweep([(alpha, n) for alpha in ALPHAS for n in SIZES])


def test_thm3_sweep(benchmark, grid):
    benchmark.pedantic(lambda: _sweep([(0.5, 10_000)]),
                       rounds=1, iterations=1)
    rows = []
    for alpha in ALPHAS:
        for n in SIZES:
            point = grid[(alpha, n)]
            rows.append([f"{alpha:.2f}", f"{n:,}",
                         f"{point['truth']:.4f}",
                         f"{point['mean_error']:.4f}",
                         f"{point['bound']:.3f}"])
    emit_result(
        "thm3",
        [grid[(alpha, n)] for alpha in ALPHAS for n in SIZES],
        parameters={"k": K, "p": P, "fraction": F, "trials": TRIALS,
                    "sizes": list(SIZES), "alphas": list(ALPHAS)},
        text=format_table(
            ["alpha = d/n", "n", "true CF", "mean ratio err",
             "constant bound"], rows,
            title=f"Theorem 3 — large d (f={F:.0%}, {TRIALS} "
                  f"trials/point)"))
    # Assert the theorem's claims inside the bench run too (the
    # granular tests below are skipped under --benchmark-only).
    test_thm3_error_below_constant(grid)
    test_thm3_error_does_not_grow_with_n(grid)
    test_thm3_larger_alpha_easier(grid)
    test_thm3_bound_independent_of_n(grid)


def test_thm3_error_below_constant(grid):
    """Mean ratio error under the constant, with 1% Jensen slack.

    The analytic constant bounds the ratio of expectations; the
    *expected ratio* exceeds it by lower-order terms (documented in
    :func:`dict_large_d_bound`), so the empirical check allows 1%.
    """
    for (alpha, n), point in grid.items():
        assert point["mean_error"] <= point["bound"] * 1.01, (alpha, n)


def test_thm3_error_does_not_grow_with_n(grid):
    for alpha in ALPHAS:
        smallest = grid[(alpha, SIZES[0])]["mean_error"]
        largest = grid[(alpha, SIZES[-1])]["mean_error"]
        assert largest <= smallest * 1.3, alpha


def test_thm3_larger_alpha_easier(grid):
    """More distinct values -> the sample retains proportionally more."""
    n = SIZES[-1]
    errors = [grid[(alpha, n)]["mean_error"] for alpha in ALPHAS]
    assert errors[-1] <= errors[0] + 0.05


def test_thm3_bound_independent_of_n(grid):
    for alpha in ALPHAS:
        bounds = {grid[(alpha, n)]["bound"] for n in SIZES}
        assert len(bounds) == 1
