"""Experiment `perf-service` — multi-tenant micro-batching under load.

The service fronts one warm :class:`EstimationEngine` with an HTTP
surface and a collection window that coalesces concurrent clients into
shared engine batches. This bench pins the three claims that design
makes:

1. **Correctness under concurrency.** Every client's results are
   bit-identical to a serial one-spec-at-a-time reference run —
   coalescing, thread scheduling, and round composition never leak
   into an estimate.
2. **Cross-client sample sharing is real.** A fleet of clients posting
   overlapping specs materializes each distinct (source, fraction,
   seed) sample exactly once; everything else resolves from the
   memory tier (``sample_cache_hits`` + in-batch dedup cover the
   rest of the trial units).
3. **Coalescing reduces engine rounds.** With a collection window the
   engine executes far fewer batches than the number of submissions;
   with ``--window 0`` every submission is its own round. The bench
   reports rounds, coalesced submissions, and wall-clock for both.

Results land in ``benchmarks/results/BENCH_service.json``. Run::

    PYTHONPATH=src python benchmarks/bench_service.py           # full
    PYTHONPATH=src python benchmarks/bench_service.py --smoke   # CI
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import threading
import time
import urllib.request

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from _common import RESULTS_DIR, emit_result  # noqa: E402

from repro._version import __version__  # noqa: E402
from repro.service import ServiceConfig, make_server  # noqa: E402
from repro.service.app import EstimationService  # noqa: E402

MASTER_SEED = 7200


def build_specs(smoke: bool) -> list[dict]:
    """Overlapping tenant specs: same workloads, varied request mixes.

    Clients deliberately share workload definitions and most request
    shapes so the cross-client dedup has something to merge, with a
    few per-client fractions mixed in so rounds are not pure
    duplicates.
    """
    clients = 4 if smoke else 8
    specs = []
    for client in range(clients):
        spec = {
            "seed": MASTER_SEED,
            "workloads": {
                "names": {"scenario": "status_codes", "rows": 4000},
                "ids": {"n": 3000, "d": 30, "k": 20, "seed": 5},
            },
            "requests": [
                {"workload": "names", "algorithm": "null_suppression",
                 "fraction": 0.02, "trials": 3},
                {"workload": "ids", "algorithm": "rle",
                 "fraction": 0.05, "trials": 2},
                # One per-client shape so rounds mix shared + unique.
                {"workload": "ids", "algorithm": "null_suppression",
                 "fraction": 0.02 + 0.01 * (client % 4), "trials": 2},
            ],
        }
        specs.append(spec)
    return specs


def post_json(base: str, path: str, payload: dict) -> dict:
    request = urllib.request.Request(
        base + path, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=120) as resp:
        if resp.status != 200:
            raise AssertionError(f"POST {path} -> {resp.status}")
        return json.loads(resp.read())


def hammer(window: float, specs: list[dict],
           rounds: int) -> tuple[list[list], dict, float]:
    """Run ``rounds`` waves of concurrent clients; return results,
    final /stats-equivalent counters, and wall-clock seconds."""
    server, service = make_server(ServiceConfig(window=window))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    results: list[list] = [[] for _ in specs]
    try:
        start = time.perf_counter()
        for _ in range(rounds):
            barrier = threading.Barrier(len(specs))
            wave: list = [None] * len(specs)

            def client(position: int, spec: dict) -> None:
                barrier.wait()
                wave[position] = post_json(base, "/estimate-batch",
                                           spec)

            threads = [threading.Thread(target=client, args=(i, spec))
                       for i, spec in enumerate(specs)]
            for worker in threads:
                worker.start()
            for worker in threads:
                worker.join(timeout=120)
            if any(entry is None for entry in wave):
                raise AssertionError("a client never completed")
            for position, payload in enumerate(wave):
                results[position].append(payload["results"])
        seconds = time.perf_counter() - start
        counters = {
            "engine": service.engine.stats.as_dict(),
            "batcher": service.batcher.snapshot(),
            "workload_cache": service.workloads.snapshot(),
        }
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        thread.join(timeout=10)
    return results, counters, seconds


def run(smoke: bool, output: pathlib.Path) -> dict:
    specs = build_specs(smoke)
    waves = 2 if smoke else 4
    report: dict = {
        "experiment": "service",
        "version": __version__,
        "mode": "smoke" if smoke else "full",
        "platform": platform.platform(),
        "python": platform.python_version(),
        "clients": len(specs),
        "waves": waves,
    }

    # -- serial reference: each spec alone on a fresh service ----------
    serial = EstimationService(ServiceConfig(window=0.0))
    try:
        reference = [serial.run_batch(spec)["results"]
                     for spec in specs]
    finally:
        serial.close()

    # -- concurrent clients through the collection window --------------
    coalesced, stats, seconds = hammer(0.05, specs, waves)
    for client_results in zip(coalesced, reference):
        observed, expected = client_results
        for wave_results in observed:
            if wave_results != expected:
                raise AssertionError(
                    "coalesced results differ from the serial "
                    "reference — batching broke determinism")
    submissions = stats["batcher"]["submissions"]
    rounds = stats["batcher"]["rounds"]
    report["coalesced"] = {
        "seconds": round(seconds, 4),
        "submissions": submissions,
        "engine_rounds": rounds,
        "coalesced_submissions":
            stats["batcher"]["coalesced_submissions"],
        "largest_round": stats["batcher"]["largest_round"],
        "samples_materialized":
            stats["engine"]["samples_materialized"],
        "sample_cache_hits": stats["engine"]["sample_cache_hits"],
        "workload_cache": stats["workload_cache"],
    }
    if rounds >= submissions:
        raise AssertionError(
            f"no coalescing happened: {rounds} engine rounds for "
            f"{submissions} submissions")
    # Cross-client + cross-wave sharing: each distinct (source,
    # fraction, seed) sample materializes exactly once for the whole
    # run. Shared shapes: names@0.02 x3 trials + ids@0.05 x2. Extras
    # add fractions 0.02/0.03/0.04/0.05 over ids x2 trials each, but
    # samples are algorithm-blind, so the 0.05 extra rides the shared
    # ids@0.05 samples: 3 + 2 + (4*2 - 2) = 11.
    distinct = 11
    if stats["engine"]["samples_materialized"] != distinct:
        raise AssertionError(
            f"expected {distinct} distinct samples materialized, got "
            f"{stats['engine']['samples_materialized']}")
    if stats["workload_cache"]["entries"] != 2:
        raise AssertionError("workload cache failed to canonicalize "
                             "the shared workload definitions")

    # -- same load, window 0: every submission its own round -----------
    unbatched, stats0, seconds0 = hammer(0.0, specs, waves)
    for observed, expected in zip(unbatched, reference):
        for wave_results in observed:
            if wave_results != expected:
                raise AssertionError(
                    "window-0 results differ from the serial "
                    "reference")
    report["unbatched"] = {
        "seconds": round(seconds0, 4),
        "submissions": stats0["batcher"]["submissions"],
        "engine_rounds": stats0["batcher"]["rounds"],
        "samples_materialized":
            stats0["engine"]["samples_materialized"],
    }
    report["rounds_saved_fraction"] = round(
        1.0 - rounds / submissions, 3)

    emit_result("service", report,
                parameters={"mode": "smoke" if smoke else "full"},
                output=output)
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the estimation service: coalescing, "
                    "cross-client sharing, determinism under load.")
    parser.add_argument("--smoke", action="store_true",
                        help="small CI-sized run (4 clients, 2 waves)")
    parser.add_argument("--output", type=pathlib.Path,
                        default=RESULTS_DIR / "BENCH_service.json",
                        help="where to write the JSON baseline")
    args = parser.parse_args(argv)
    report = run(args.smoke, args.output)
    print(json.dumps(report, indent=2))
    print(f"\nbaseline written to {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
