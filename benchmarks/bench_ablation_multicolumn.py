"""Experiment `abl-multicol` — multi-column indexes.

The paper compresses each column independently (Section II-A) and notes
its single-column analysis "extends for the case of multi-column
indexes in a straightforward manner" (Section III). This bench makes
that remark measurable:

* the multi-column closed form equals the engine byte-exactly for the
  layout-free algorithms (NS, global dictionary);
* for the paged dictionary the model is a certified lower bound (only
  the leading key column forms contiguous runs);
* SampleCF on a two-column index is as tight for NS as in the
  single-column theorems, and the per-column decomposition shows which
  column earns the savings.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression.dictionary import DictionaryCompression
from repro.compression.global_dictionary import GlobalDictionaryCompression
from repro.compression.null_suppression import NullSuppression
from repro.core.multicolumn import (multicolumn_cf, sample_multicolumn_cf,
                                    table_histogram_from_table)
from repro.core.samplecf import SampleCF, true_cf_table
from repro.experiments.report import format_table
from repro.workloads.generators import make_multicolumn_table

from _common import write_report

N = 20_000
PAGE = 4096
COLUMNS = [("status", 10, 6), ("customer", 24, 800), ("region", 12, 20)]
KEY = ["status", "customer", "region"]


@pytest.fixture(scope="module")
def table():
    return make_multicolumn_table("orders", N, COLUMNS, page_size=PAGE,
                                  seed=1300)


@pytest.fixture(scope="module")
def histogram(table):
    return table_histogram_from_table(table, KEY)


def test_multicolumn_model_vs_engine(benchmark, table, histogram):
    def run() -> list[list[str]]:
        rows = []
        for algorithm in (NullSuppression(),
                          GlobalDictionaryCompression(),
                          DictionaryCompression()):
            engine = true_cf_table(table, KEY, algorithm, page_size=PAGE)
            model = multicolumn_cf(histogram, algorithm, page_size=PAGE)
            rows.append([algorithm.name, f"{engine:.5f}",
                         f"{model:.5f}", f"{engine - model:+.5f}"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report("abl_multicol_model", format_table(
        ["algorithm", "engine CF", "model CF", "gap"], rows,
        title=f"Multi-column index, model vs engine (n={N:,}, "
              f"3 columns)"))
    # Layout-free algorithms: exact. Paged dictionary: lower bound.
    assert rows[0][1] == rows[0][2]
    assert rows[1][1] == rows[1][2]
    assert float(rows[2][3].replace("+", "")) >= -1e-9
    test_per_column_decomposition(histogram)
    test_samplecf_accuracy_multicolumn(table, histogram)


def test_per_column_decomposition(histogram):
    """Each column's CF shows where the savings come from."""
    estimate = sample_multicolumn_cf(histogram, 0.05, NullSuppression(),
                                     page_size=PAGE, seed=5)
    per_column = estimate.per_column
    assert set(per_column) == set(KEY)
    rows = [[name, f"{cf:.4f}"] for name, cf in per_column.items()]
    write_report("abl_multicol_columns", format_table(
        ["column", "NS CF (sampled)"], rows,
        title="Per-column decomposition at f=5%"))
    # Short codes in a wide column compress best; all in range.
    assert all(0 < cf <= 1.2 for cf in per_column.values())


def test_samplecf_accuracy_multicolumn(table, histogram):
    """NS stays Theorem 1-tight on a three-column key."""
    truth = true_cf_table(table, KEY, NullSuppression(), page_size=PAGE)
    estimator = SampleCF(NullSuppression(), page_size=PAGE)
    estimates = np.array([
        estimator.estimate_table(table, 0.02, KEY, seed=s).estimate
        for s in range(20)])
    errors = np.maximum(truth / estimates, estimates / truth)
    assert errors.mean() < 1.05
    model_estimates = np.array([
        sample_multicolumn_cf(histogram, 0.02, NullSuppression(),
                              page_size=PAGE, seed=100 + s).estimate
        for s in range(20)])
    assert abs(model_estimates.mean() - estimates.mean()) < 0.02
