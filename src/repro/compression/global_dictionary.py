"""The paper's simplified global-dictionary model (Section III-B).

"Dictionary compression stores a 'global' dictionary in which each
distinct value is stored once and each row has a pointer to the
dictionary." Under this model, for a single ``char(k)`` column::

    CF_D = (d * k + n * p) / (n * k) = d/n + p/k

This algorithm is index-scoped: :meth:`compress` receives *all* records
of the index at once and builds one dictionary. Theorems 2 and 3 are
stated against exactly this model, which is why it exists as a separate
algorithm rather than a parameter of the paged variant.
"""

from __future__ import annotations

from typing import Sequence

from repro.constants import DEFAULT_POINTER_BYTES
from repro.errors import CompressionError
from repro.storage.schema import Schema
from repro.compression.base import (CompressedBlock, CompressionAlgorithm,
                                    PageSizeTracker)
from repro.compression.dictionary import EntryStorage, _DictionaryCodec


class GlobalDictionaryCompression(CompressionAlgorithm):
    """One index-wide dictionary per column; rows store pointers."""

    scope = "index"

    def __init__(self, pointer_bytes: int | None = DEFAULT_POINTER_BYTES,
                 entry_storage: EntryStorage = "fixed") -> None:
        self._codec = _DictionaryCodec(pointer_bytes, entry_storage)
        suffix = "" if pointer_bytes is not None else "_derived"
        self.name = f"global_dictionary{suffix}"

    @property
    def pointer_bytes(self) -> int | None:
        return self._codec.pointer_bytes

    @property
    def entry_storage(self) -> EntryStorage:
        return self._codec.entry_storage

    def compress(self, records: Sequence[bytes], schema: Schema,
                 ) -> CompressedBlock:
        if not records:
            raise CompressionError("cannot compress an empty record set")
        columns = self.columnize(records, schema)
        compressed = tuple(
            self._codec.compress_column(col.dtype, slices)
            for col, slices in zip(schema.columns, columns))
        return CompressedBlock(algorithm=self.name, row_count=len(records),
                               columns=compressed)

    def size_of(self, views, schema: Schema) -> int:
        """Vectorized global-dictionary payload over the whole index."""
        return sum(self._codec.size_of_column(col.dtype, view)
                   for col, view in zip(schema.columns, views))

    def decompress(self, block: CompressedBlock, schema: Schema,
                   ) -> list[bytes]:
        if len(block.columns) != len(schema):
            raise CompressionError(
                f"block has {len(block.columns)} columns, schema has "
                f"{len(schema)}")
        columns = [
            self._codec.decompress_column(col.dtype, comp.blob,
                                          block.row_count)
            for col, comp in zip(schema.columns, block.columns)]
        return self.recordize(columns)

    def make_tracker(self, schema: Schema) -> PageSizeTracker:
        # Index-scoped: a "page" tracker would be meaningless, but the
        # same incremental machinery measures the whole index correctly.
        from repro.compression.dictionary import _DictionaryTracker

        return _DictionaryTracker(self._codec, schema)

    def cf_from_histogram(self, histogram, **layout) -> float:
        """The paper's closed form: ``d/n + p/k`` (general column form).

        The simplified global model ignores paging by construction, so
        the ``layout`` keywords are accepted and ignored.
        """
        from repro.core.cf_models import global_dictionary_cf

        return global_dictionary_cf(
            histogram, pointer_bytes=self._codec.pointer_bytes,
            entry_storage=self._codec.entry_storage)
