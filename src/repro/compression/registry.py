"""Name-based construction of compression algorithms.

The estimator is configured with algorithm *names* in experiment specs
and on example command lines; this registry turns names into instances.
New algorithms register a factory at import time, which is also how a
downstream user would plug a custom technique into SampleCF (the
estimator is agnostic, so registration is all it takes).
"""

from __future__ import annotations

from typing import Callable

from repro.errors import CompressionError
from repro.compression.base import CompressionAlgorithm
from repro.compression.delta import DeltaEncoding
from repro.compression.dictionary import DictionaryCompression
from repro.compression.global_dictionary import GlobalDictionaryCompression
from repro.compression.null_suppression import NullSuppression
from repro.compression.page_compression import PageCompression
from repro.compression.prefix import PrefixCompression
from repro.compression.rle import RunLengthEncoding

_FACTORIES: dict[str, Callable[..., CompressionAlgorithm]] = {}


def register_algorithm(name: str,
                       factory: Callable[..., CompressionAlgorithm],
                       ) -> None:
    """Register a factory under ``name`` (overwrites are rejected)."""
    if name in _FACTORIES:
        raise CompressionError(f"algorithm {name!r} already registered")
    _FACTORIES[name] = factory


def get_algorithm(name: str, **kwargs) -> CompressionAlgorithm:
    """Instantiate the algorithm registered under ``name``."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise CompressionError(
            f"unknown compression algorithm {name!r}; "
            f"known: {sorted(_FACTORIES)}") from None
    return factory(**kwargs)


def list_algorithms() -> list[str]:
    """Sorted names of all registered algorithms."""
    return sorted(_FACTORIES)


register_algorithm("null_suppression", NullSuppression)
register_algorithm(
    "null_suppression_runs", lambda **kw: NullSuppression(mode="runs", **kw))
register_algorithm("dictionary", DictionaryCompression)
register_algorithm("global_dictionary", GlobalDictionaryCompression)
register_algorithm("rle", RunLengthEncoding)
register_algorithm("prefix", PrefixCompression)
register_algorithm("page", PageCompression)
register_algorithm("delta", DeltaEncoding)
