"""Repacking records into pages *after* compression.

Compressing pages in place does not reduce the number of allocated pages;
real systems rebuild the object so each page is refilled to capacity with
compressed data. This module performs that rebuild: records are walked in
key order and assigned to pages greedily, using each algorithm's
incremental :class:`~repro.compression.base.PageSizeTracker` to know the
page's compressed payload size *if* the next record were added.

The interplay matters for page-scoped dictionary compression: packing
more rows per page lets one dictionary entry cover more occurrences,
which is exactly the paging effect (the ``Pg(i)`` term) the paper isolates
away in its simplified model — and which the `abl-paging` experiment
quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.constants import PAGE_HEADER_SIZE
from repro.errors import CompressionError
from repro.storage.schema import Schema
from repro.compression.base import CompressionAlgorithm

#: Bytes reserved in each compressed page for compression metadata
#: (anchor/prefix info pointers, dictionary offsets) beyond the normal
#: page header; mirrors the "CI structure" of SQL Server page compression.
COMPRESSION_INFO_BYTES: int = 8


@dataclass(frozen=True)
class RepackedPage:
    """One rebuilt page: which records landed on it and its payload size."""

    record_start: int
    record_count: int
    payload_size: int


@dataclass(frozen=True)
class RepackResult:
    """Outcome of repacking an index's records."""

    pages: tuple[RepackedPage, ...]
    page_size: int

    @property
    def num_pages(self) -> int:
        return len(self.pages)

    @property
    def payload_size(self) -> int:
        return sum(page.payload_size for page in self.pages)

    @property
    def physical_bytes(self) -> int:
        return self.num_pages * self.page_size


def compressed_page_capacity(page_size: int) -> int:
    """Payload budget of one compressed page."""
    capacity = page_size - PAGE_HEADER_SIZE - COMPRESSION_INFO_BYTES
    if capacity <= 0:
        raise CompressionError(
            f"page size {page_size} leaves no room for compressed payload")
    return capacity


def repack(records: Sequence[bytes], schema: Schema,
           algorithm: CompressionAlgorithm, page_size: int,
           ) -> RepackResult:
    """Greedily refill pages with compressed records in the given order.

    Each page holds as many records as keep the algorithm's incremental
    compressed size within :func:`compressed_page_capacity`. A record
    whose solo compressed size exceeds the capacity still gets its own
    page (the engine-level analogue of a jumbo record).
    """
    if not records:
        raise CompressionError("cannot repack an empty record set")
    capacity = compressed_page_capacity(page_size)
    pages: list[RepackedPage] = []
    tracker = algorithm.make_tracker(schema)
    start = 0
    for position, record in enumerate(records):
        slices = algorithm.columnize([record], schema)
        column_slices = [column[0] for column in slices]
        if tracker.row_count > 0 \
                and tracker.size_with(column_slices) > capacity:
            pages.append(RepackedPage(start, tracker.row_count,
                                      tracker.size))
            start = position
            tracker = algorithm.make_tracker(schema)
        tracker.add(column_slices)
    pages.append(RepackedPage(start, tracker.row_count, tracker.size))
    return RepackResult(tuple(pages), page_size)
