"""Compression algorithm interfaces and result types.

Design
------
The paper's estimator is *agnostic to the internals of the compression
algorithm*: it only needs "bytes before" and "bytes after". To honour
that, every algorithm implements one narrow interface:

* :meth:`CompressionAlgorithm.compress` — take the record byte-strings of
  one unit (a page for page-scoped algorithms, the whole index for
  index-scoped ones) plus their schema and return a
  :class:`CompressedBlock`;
* :meth:`CompressionAlgorithm.decompress` — invert it exactly (tests
  round-trip every algorithm).

Each column is compressed independently (paper Section II-A), so
algorithms are built from per-column codecs operating on column byte
slices.

Two size views
--------------
``CompressedBlock.payload_size`` counts the bytes the paper's analytical
model counts: data retained after compression (values, lengths,
dictionary entries, pointers). ``CompressedBlock.serialized_size`` is the
length of the actual self-describing blob, which additionally carries the
small structural headers (entry counts, pointer widths) that a real page
keeps in its page-header compression info. Payload accounting therefore
matches the paper's formulas exactly, while physical accounting charges
whole pages.

Incremental size tracking
-------------------------
Repacking pages after compression needs "what would this page's
compressed size be if I added this row?" without recompressing from
scratch. :class:`PageSizeTracker` supports that with O(1)-ish ``add``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Literal, Sequence

from repro.errors import CompressionError, KernelUnavailable
from repro.storage.record import split_records
from repro.storage.schema import Schema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.compression.kernels import ColumnView

Scope = Literal["page", "index"]


@dataclass(frozen=True)
class CompressedColumn:
    """One column's compressed form inside a block."""

    #: Self-describing compressed bytes (round-trippable).
    blob: bytes
    #: Model-accounted size in bytes (excludes self-description headers).
    payload_size: int

    def __post_init__(self) -> None:
        if self.payload_size < 0:
            raise CompressionError(
                f"negative payload size {self.payload_size}")


@dataclass(frozen=True)
class CompressedBlock:
    """The compressed form of one unit (page or whole index)."""

    algorithm: str
    row_count: int
    columns: tuple[CompressedColumn, ...]

    @property
    def payload_size(self) -> int:
        """Model-accounted compressed bytes of this block."""
        return sum(col.payload_size for col in self.columns)

    @property
    def serialized_size(self) -> int:
        """Actual blob bytes including structural headers."""
        return sum(len(col.blob) for col in self.columns)


class PageSizeTracker(ABC):
    """Incrementally tracks the compressed payload size of one page."""

    @abstractmethod
    def add(self, column_slices: Sequence[bytes]) -> None:
        """Account for one record (given as per-column byte slices)."""

    @abstractmethod
    def size_with(self, column_slices: Sequence[bytes]) -> int:
        """Payload size if this record were added (without adding it)."""

    @property
    @abstractmethod
    def size(self) -> int:
        """Current compressed payload size of the page."""

    @property
    @abstractmethod
    def row_count(self) -> int:
        """Rows accounted so far."""


class CompressionAlgorithm(ABC):
    """Base class for all compression algorithms."""

    #: Identifier used in registries, reports and experiment configs.
    name: str = "abstract"

    #: Whether the algorithm operates per page or across the whole index.
    scope: Scope = "page"

    # -- mandatory interface -------------------------------------------
    @abstractmethod
    def compress(self, records: Sequence[bytes], schema: Schema,
                 ) -> CompressedBlock:
        """Compress one unit of records."""

    @abstractmethod
    def decompress(self, block: CompressedBlock, schema: Schema,
                   ) -> list[bytes]:
        """Exactly invert :meth:`compress`."""

    # -- optional capabilities -----------------------------------------
    def size_of(self, views: Sequence["ColumnView"], schema: Schema,
                ) -> int:
        """Exact ``compress(...).payload_size`` without building blobs.

        ``views`` is the columnar form of one unit's records (see
        :func:`repro.compression.kernels.build_column_views`), one view
        per schema column. Implementations must be **bit-identical** to
        the scalar path — the estimator treats the two routes as
        interchangeable, including for persisted estimates. Raise
        :class:`~repro.errors.KernelUnavailable` for any input the
        kernel does not cover; callers fall back to :meth:`compress`.
        """
        raise KernelUnavailable(
            f"{self.name} has no vectorized size kernel")

    def make_tracker(self, schema: Schema) -> PageSizeTracker:
        """An incremental size tracker for repacking (if supported)."""
        raise CompressionError(
            f"{self.name} does not support incremental size tracking")

    def cf_from_histogram(self, histogram: "ColumnHistogram",  # noqa: F821
                          **layout) -> float:
        """Closed-form CF on a value histogram (if the model exists).

        Implemented by algorithms whose compressed size depends only on
        the value multiset (and, for paged algorithms, a sorted clustered
        layout described by the ``layout`` keywords: ``page_size``,
        ``record_bytes``, ``fill_factor``). Raises
        :class:`CompressionError` otherwise.
        """
        raise CompressionError(
            f"{self.name} has no histogram model; use the storage path")

    # -- shared helpers -------------------------------------------------
    @staticmethod
    def columnize(records: Sequence[bytes], schema: Schema,
                  ) -> list[list[bytes]]:
        """Transpose records into per-column slice lists.

        Delegates to the batch record splitter, which resolves memoized
        fixed-width offsets once per schema (the common case) and walks
        variable-width records individually otherwise.
        """
        from repro.errors import EncodingError

        try:
            return split_records(schema, records)
        except EncodingError as exc:
            raise CompressionError(str(exc)) from exc

    @staticmethod
    def recordize(columns: Sequence[Sequence[bytes]]) -> list[bytes]:
        """Inverse of :meth:`columnize`: stitch columns back into records."""
        if not columns:
            return []
        counts = {len(col) for col in columns}
        if len(counts) != 1:
            raise CompressionError(
                f"ragged columns: row counts {sorted(counts)}")
        return [b"".join(col[row] for col in columns)
                for row in range(counts.pop())]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


@dataclass(frozen=True)
class CompressionResult:
    """Outcome of compressing a set of pages or a whole index."""

    algorithm: str
    accounting: Literal["payload", "physical"]
    uncompressed_bytes: int
    compressed_bytes: int
    row_count: int
    pages_before: int | None = None
    pages_after: int | None = None
    details: dict = field(default_factory=dict)

    @property
    def compression_fraction(self) -> float:
        """``compressed / uncompressed`` — the paper's CF metric."""
        if self.uncompressed_bytes <= 0:
            raise CompressionError(
                "compression fraction undefined for empty input")
        return self.compressed_bytes / self.uncompressed_bytes

    @property
    def space_savings(self) -> float:
        """``1 - CF``: the fraction of space reclaimed."""
        return 1.0 - self.compression_fraction
