"""Null suppression (NS) — Section II-A of the paper.

Null suppression removes padding from stored values and records how much
was removed. For the paper's canonical ``char(k)`` column the stored size
of a value with null-suppressed length ``l_i`` is ``l_i + c`` bytes, where
``c`` is the small length header (1 byte for ``k <= 255``). The paper's
closed form follows::

    CF_NS = sum_i (l_i + c) / (n * k)

Two modes are provided:

* ``"trailing"`` (default, the paper's model): suppress the trailing pad
  of CHAR values, store integers at their minimal two's-complement width,
  and leave VARCHAR values as-is (their encoding is already minimal and
  trailing blanks are significant for VARCHAR).
* ``"runs"`` (the general form sketched in Figure 1.a): additionally
  replace *interior* runs of blanks and of ASCII zeros with a three-byte
  escape token, which helps values such as zero-padded identifiers.

Both modes are exactly invertible; the test suite round-trips them.
"""

from __future__ import annotations

from typing import Literal, Sequence

from repro.constants import PAD_BYTE
from repro.errors import CompressionError
from repro.storage.schema import Schema
from repro.storage.types import (BigIntType, CharType, DataType, IntegerType,
                                 VarCharType, length_header_bytes,
                                 minimal_int_bytes)
from repro.compression.base import (CompressedBlock, CompressedColumn,
                                    CompressionAlgorithm, PageSizeTracker)

_ESCAPE = 0x1B  # ASCII ESC, rare in stored text
_TOKEN_LITERAL = 0x00
_TOKEN_PAD_RUN = 0x01
_TOKEN_ZERO_RUN = 0x02
_MIN_RUN = 4  # a run token costs 3 bytes; only runs >= 4 shrink
_ZERO_BYTE = ord("0")
_PAD = PAD_BYTE[0]

NSMode = Literal["trailing", "runs"]


def ns_header_bytes(dtype: DataType, mode: NSMode = "trailing") -> int:
    """The per-value length-header size ``c`` for ``dtype``.

    In ``runs`` mode escape tokens can expand pathological values (an
    all-ESC value doubles), so the header is sized for bodies up to
    ``2k`` to stay exactly invertible.
    """
    if isinstance(dtype, CharType):
        if mode == "trailing":
            return dtype.length_bytes
        return length_header_bytes(2 * dtype.k)
    if isinstance(dtype, VarCharType):
        return VarCharType.LENGTH_PREFIX_BYTES
    if isinstance(dtype, (IntegerType, BigIntType)):
        return 1
    raise CompressionError(f"null suppression unsupported for {dtype.name}")


def ns_stored_size(dtype: DataType, value, mode: NSMode = "trailing") -> int:
    """Stored bytes of one value under NS: ``c + body length``."""
    if isinstance(dtype, CharType):
        body = _char_body(dtype, dtype.encode(value), mode)
        return ns_header_bytes(dtype, mode) + len(body)
    if isinstance(dtype, VarCharType):
        return dtype.encoded_size(value)
    if isinstance(dtype, (IntegerType, BigIntType)):
        return 1 + minimal_int_bytes(value)
    raise CompressionError(f"null suppression unsupported for {dtype.name}")


def _encode_runs(raw: bytes) -> bytes:
    """Escape-encode runs of pads/zeros (and literal escape bytes)."""
    out = bytearray()
    i = 0
    length = len(raw)
    while i < length:
        byte = raw[i]
        if byte in (_PAD, _ZERO_BYTE):
            run = 1
            while i + run < length and raw[i + run] == byte and run < 255:
                run += 1
            if run >= _MIN_RUN:
                token = _TOKEN_PAD_RUN if byte == _PAD else _TOKEN_ZERO_RUN
                out.extend((_ESCAPE, token, run))
                i += run
                continue
            out.extend(raw[i:i + run])
            i += run
            continue
        if byte == _ESCAPE:
            out.extend((_ESCAPE, _TOKEN_LITERAL))
            i += 1
            continue
        out.append(byte)
        i += 1
    return bytes(out)


def _decode_runs(body: bytes) -> bytes:
    """Invert :func:`_encode_runs`."""
    out = bytearray()
    i = 0
    while i < len(body):
        byte = body[i]
        if byte != _ESCAPE:
            out.append(byte)
            i += 1
            continue
        if i + 1 >= len(body):
            raise CompressionError("truncated escape token")
        token = body[i + 1]
        if token == _TOKEN_LITERAL:
            out.append(_ESCAPE)
            i += 2
        elif token in (_TOKEN_PAD_RUN, _TOKEN_ZERO_RUN):
            if i + 2 >= len(body):
                raise CompressionError("truncated run token")
            run = body[i + 2]
            fill = _PAD if token == _TOKEN_PAD_RUN else _ZERO_BYTE
            out.extend(bytes([fill]) * run)
            i += 3
        else:
            raise CompressionError(f"unknown escape token {token}")
    return bytes(out)


def _char_body(dtype: CharType, slice_: bytes, mode: NSMode) -> bytes:
    """The stored body of one CHAR slice under the given NS mode."""
    stripped = slice_.rstrip(PAD_BYTE)
    if mode == "trailing":
        return stripped
    return _encode_runs(stripped)


class NullSuppression(CompressionAlgorithm):
    """Null suppression over whole pages, column by column."""

    scope = "page"

    def __init__(self, mode: NSMode = "trailing") -> None:
        if mode not in ("trailing", "runs"):
            raise CompressionError(f"unknown NS mode {mode!r}")
        self.mode: NSMode = mode
        self.name = "null_suppression" if mode == "trailing" \
            else "null_suppression_runs"

    # ------------------------------------------------------------------
    # Compression
    # ------------------------------------------------------------------
    def compress(self, records: Sequence[bytes], schema: Schema,
                 ) -> CompressedBlock:
        if not records:
            raise CompressionError("cannot compress an empty record set")
        columns = self.columnize(records, schema)
        compressed = tuple(
            self._compress_column(col.dtype, slices)
            for col, slices in zip(schema.columns, columns))
        return CompressedBlock(algorithm=self.name, row_count=len(records),
                               columns=compressed)

    def _compress_column(self, dtype: DataType, slices: list[bytes],
                         ) -> CompressedColumn:
        if isinstance(dtype, CharType):
            header = ns_header_bytes(dtype, self.mode)
            parts: list[bytes] = []
            payload = 0
            for slice_ in slices:
                body = _char_body(dtype, slice_, self.mode)
                parts.append(len(body).to_bytes(header, "big"))
                parts.append(body)
                payload += header + len(body)
            return CompressedColumn(b"".join(parts), payload)
        if isinstance(dtype, VarCharType):
            blob = b"".join(slices)
            return CompressedColumn(blob, len(blob))
        if isinstance(dtype, (IntegerType, BigIntType)):
            parts = []
            payload = 0
            for slice_ in slices:
                value = dtype.decode(slice_)
                width = minimal_int_bytes(value)
                parts.append(width.to_bytes(1, "big"))
                parts.append(value.to_bytes(width, "big", signed=True))
                payload += 1 + width
            return CompressedColumn(b"".join(parts), payload)
        raise CompressionError(
            f"null suppression unsupported for {dtype.name}")

    # ------------------------------------------------------------------
    # Size-only kernel
    # ------------------------------------------------------------------
    def size_of(self, views, schema: Schema) -> int:
        """Vectorized NS payload for both modes.

        ``trailing`` is a pad scan plus minimal-int widths; ``runs``
        additionally prices interior pad/zero runs at the escape-token
        rate via a flattened run-boundary scan (see
        :func:`~repro.compression.kernels.ns_runs_char_body_lengths`).
        """
        from repro.compression.kernels import (ns_column_size,
                                               ns_runs_column_size)

        if self.mode == "runs":
            return sum(ns_runs_column_size(view) for view in views)
        return sum(ns_column_size(view) for view in views)

    # ------------------------------------------------------------------
    # Decompression
    # ------------------------------------------------------------------
    def decompress(self, block: CompressedBlock, schema: Schema,
                   ) -> list[bytes]:
        if len(block.columns) != len(schema):
            raise CompressionError(
                f"block has {len(block.columns)} columns, schema has "
                f"{len(schema)}")
        columns = [
            self._decompress_column(col.dtype, comp.blob, block.row_count)
            for col, comp in zip(schema.columns, block.columns)]
        return self.recordize(columns)

    def _decompress_column(self, dtype: DataType, blob: bytes, count: int,
                           ) -> list[bytes]:
        out: list[bytes] = []
        offset = 0
        if isinstance(dtype, CharType):
            header = ns_header_bytes(dtype, self.mode)
            for _ in range(count):
                body_len = int.from_bytes(blob[offset:offset + header], "big")
                offset += header
                body = blob[offset:offset + body_len]
                if len(body) != body_len:
                    raise CompressionError("truncated NS body")
                offset += body_len
                raw = body if self.mode == "trailing" else _decode_runs(body)
                out.append(raw.ljust(dtype.k, PAD_BYTE))
        elif isinstance(dtype, VarCharType):
            prefix = VarCharType.LENGTH_PREFIX_BYTES
            for _ in range(count):
                body_len = int.from_bytes(blob[offset:offset + prefix], "big")
                end = offset + prefix + body_len
                chunk = blob[offset:end]
                if len(chunk) != prefix + body_len:
                    raise CompressionError("truncated VARCHAR slice")
                out.append(chunk)
                offset = end
        elif isinstance(dtype, (IntegerType, BigIntType)):
            for _ in range(count):
                width = blob[offset]
                offset += 1
                body = blob[offset:offset + width]
                if len(body) != width:
                    raise CompressionError("truncated NS integer")
                offset += width
                value = int.from_bytes(body, "big", signed=True)
                out.append(dtype.encode(value))
        else:
            raise CompressionError(
                f"null suppression unsupported for {dtype.name}")
        if offset != len(blob):
            raise CompressionError(
                f"{len(blob) - offset} trailing bytes in NS blob")
        return out

    # ------------------------------------------------------------------
    # Incremental tracking and the closed-form model
    # ------------------------------------------------------------------
    def make_tracker(self, schema: Schema) -> PageSizeTracker:
        return _NSTracker(self, schema)

    def cf_from_histogram(self, histogram, **layout) -> float:
        """Closed-form NS compression fraction on a column histogram.

        NS is layout-free: page boundaries do not change its size, so
        the ``layout`` keywords are accepted and ignored.
        """
        from repro.core.cf_models import ns_cf

        return ns_cf(histogram, mode=self.mode)


class _NSTracker(PageSizeTracker):
    """O(1) incremental NS page size: sizes are additive per record."""

    def __init__(self, algorithm: NullSuppression, schema: Schema) -> None:
        self._algorithm = algorithm
        self._schema = schema
        self._size = 0
        self._rows = 0

    def _record_size(self, column_slices: Sequence[bytes]) -> int:
        total = 0
        for col, slice_ in zip(self._schema.columns, column_slices):
            dtype = col.dtype
            if isinstance(dtype, CharType):
                body = _char_body(dtype, slice_, self._algorithm.mode)
                total += ns_header_bytes(dtype, self._algorithm.mode) \
                    + len(body)
            elif isinstance(dtype, VarCharType):
                total += len(slice_)
            elif isinstance(dtype, (IntegerType, BigIntType)):
                total += 1 + minimal_int_bytes(dtype.decode(slice_))
            else:
                raise CompressionError(
                    f"null suppression unsupported for {dtype.name}")
        return total

    def add(self, column_slices: Sequence[bytes]) -> None:
        self._size += self._record_size(column_slices)
        self._rows += 1

    def size_with(self, column_slices: Sequence[bytes]) -> int:
        return self._size + self._record_size(column_slices)

    @property
    def size(self) -> int:
        return self._size

    @property
    def row_count(self) -> int:
        return self._rows
