"""Per-page prefix compression — an extension algorithm.

SQL Server's PAGE compression begins with a *column prefix* pass: the
longest common prefix of a column's values on the page is stored once in
the page's compression-information area, and each value stores only its
remainder. We implement the same idea for CHAR columns (after pad
stripping); other types fall back to plain null suppression, which is
what real systems effectively do when no useful prefix exists.

Stored size per CHAR column on a page with common prefix ``P``::

    (c + |P|)  +  sum_i (c + l_i - |P|)

where ``c`` is the NS length header and ``l_i`` the null-suppressed
length of value *i*.
"""

from __future__ import annotations

import os
from typing import Sequence

from repro.constants import PAD_BYTE
from repro.errors import CompressionError
from repro.storage.schema import Schema
from repro.storage.types import (BigIntType, CharType, DataType, IntegerType,
                                 VarCharType, minimal_int_bytes)
from repro.compression.base import (CompressedBlock, CompressedColumn,
                                    CompressionAlgorithm, PageSizeTracker)
from repro.compression.null_suppression import (NullSuppression,
                                                ns_header_bytes)

_MODE_NS_FALLBACK = 0
_MODE_PREFIX = 1


def common_prefix(values: Sequence[bytes]) -> bytes:
    """Longest common prefix of a non-empty sequence of byte strings."""
    if not values:
        raise CompressionError("no values to take a prefix of")
    prefix = os.path.commonprefix(list(values))
    return bytes(prefix)


class PrefixCompression(CompressionAlgorithm):
    """Per-page longest-common-prefix factoring for CHAR columns."""

    scope = "page"
    name = "prefix"

    def __init__(self) -> None:
        self._ns = NullSuppression()

    def compress(self, records: Sequence[bytes], schema: Schema,
                 ) -> CompressedBlock:
        if not records:
            raise CompressionError("cannot compress an empty record set")
        columns = self.columnize(records, schema)
        compressed = tuple(
            self._compress_column(col.dtype, slices)
            for col, slices in zip(schema.columns, columns))
        return CompressedBlock(algorithm=self.name, row_count=len(records),
                               columns=compressed)

    def _compress_column(self, dtype: DataType, slices: list[bytes],
                         ) -> CompressedColumn:
        if not isinstance(dtype, CharType):
            inner = self._ns._compress_column(dtype, slices)
            blob = bytes([_MODE_NS_FALLBACK]) + inner.blob
            return CompressedColumn(blob, inner.payload_size)
        header = ns_header_bytes(dtype)
        stripped = [slice_.rstrip(PAD_BYTE) for slice_ in slices]
        prefix = common_prefix(stripped)
        parts: list[bytes] = [
            bytes([_MODE_PREFIX]),
            len(prefix).to_bytes(header, "big"),
            prefix,
        ]
        payload = header + len(prefix)
        for value in stripped:
            remainder = value[len(prefix):]
            parts.append(len(remainder).to_bytes(header, "big"))
            parts.append(remainder)
            payload += header + len(remainder)
        return CompressedColumn(b"".join(parts), payload)

    def size_of(self, views, schema: Schema) -> int:
        """Vectorized prefix payload: common-prefix scan + NS lengths.

        Per CHAR column the closed form is
        ``(c + |P|) + n*c + sum(l_i) - n*|P|``; other dtypes reuse the
        NS sizing block (the scalar fallback they compress with).
        """
        from repro.compression.kernels import (common_prefix_length,
                                               ns_column_size)

        total = 0
        for col, view in zip(schema.columns, views):
            dtype = col.dtype
            if not isinstance(dtype, CharType):
                total += ns_column_size(view)
                continue
            header = ns_header_bytes(dtype)
            lengths = view.char_stripped_lengths
            prefix_len = common_prefix_length(view.matrix, lengths)
            total += (header + prefix_len) + view.count * header \
                + int(lengths.sum()) - view.count * prefix_len
        return total

    def decompress(self, block: CompressedBlock, schema: Schema,
                   ) -> list[bytes]:
        if len(block.columns) != len(schema):
            raise CompressionError(
                f"block has {len(block.columns)} columns, schema has "
                f"{len(schema)}")
        columns = [
            self._decompress_column(col.dtype, comp.blob, block.row_count)
            for col, comp in zip(schema.columns, block.columns)]
        return self.recordize(columns)

    def _decompress_column(self, dtype: DataType, blob: bytes, count: int,
                           ) -> list[bytes]:
        if not blob:
            raise CompressionError("empty prefix blob")
        mode = blob[0]
        body = blob[1:]
        if mode == _MODE_NS_FALLBACK:
            return self._ns._decompress_column(dtype, body, count)
        if mode != _MODE_PREFIX or not isinstance(dtype, CharType):
            raise CompressionError(
                f"invalid prefix mode {mode} for {dtype.name}")
        header = ns_header_bytes(dtype)
        prefix_len = int.from_bytes(body[0:header], "big")
        offset = header
        prefix = body[offset:offset + prefix_len]
        if len(prefix) != prefix_len:
            raise CompressionError("truncated common prefix")
        offset += prefix_len
        out: list[bytes] = []
        for _ in range(count):
            rem_len = int.from_bytes(body[offset:offset + header], "big")
            offset += header
            remainder = body[offset:offset + rem_len]
            if len(remainder) != rem_len:
                raise CompressionError("truncated prefix remainder")
            offset += rem_len
            out.append((prefix + remainder).ljust(dtype.k, PAD_BYTE))
        if offset != len(body):
            raise CompressionError(
                f"{len(body) - offset} trailing bytes in prefix blob")
        return out

    def make_tracker(self, schema: Schema) -> PageSizeTracker:
        return _PrefixTracker(schema)


class _PrefixTracker(PageSizeTracker):
    """Incremental prefix-compression size.

    Maintains the running common prefix per CHAR column and the sum of
    null-suppressed lengths; when a new record shortens the common
    prefix, previously stored remainders grow, which the closed form
    ``(c + |P|) + sum(c + l_i) - rows * |P|`` captures without rescanning.
    """

    def __init__(self, schema: Schema) -> None:
        self._schema = schema
        self._ns = NullSuppression()
        self._prefixes: list[bytes | None] = [None] * len(schema)
        self._length_sums = [0] * len(schema)
        self._ns_size = 0  # fallback columns' running NS size
        self._rows = 0

    @staticmethod
    def _merge_prefix(current: bytes | None, value: bytes) -> bytes:
        if current is None:
            return value
        limit = min(len(current), len(value))
        i = 0
        while i < limit and current[i] == value[i]:
            i += 1
        return current[:i]

    def _char_column_size(self, position: int, prefix: bytes | None,
                          length_sum: int, rows: int) -> int:
        dtype = self._schema.columns[position].dtype
        header = ns_header_bytes(dtype)
        prefix_len = len(prefix) if prefix is not None else 0
        return (header + prefix_len) + rows * header \
            + length_sum - rows * prefix_len

    def _total(self, prefixes: list[bytes | None], length_sums: list[int],
               ns_size: int, rows: int) -> int:
        total = ns_size
        for position, col in enumerate(self._schema.columns):
            if isinstance(col.dtype, CharType):
                total += self._char_column_size(
                    position, prefixes[position], length_sums[position],
                    rows)
        return total

    def _ns_record_size(self, column_slices: Sequence[bytes]) -> int:
        total = 0
        for position, col in enumerate(self._schema.columns):
            dtype = col.dtype
            if isinstance(dtype, CharType):
                continue
            slice_ = column_slices[position]
            if isinstance(dtype, VarCharType):
                total += len(slice_)
            elif isinstance(dtype, (IntegerType, BigIntType)):
                total += 1 + minimal_int_bytes(dtype.decode(slice_))
            else:
                raise CompressionError(
                    f"prefix compression unsupported for {dtype.name}")
        return total

    def add(self, column_slices: Sequence[bytes]) -> None:
        for position, col in enumerate(self._schema.columns):
            if isinstance(col.dtype, CharType):
                stripped = bytes(column_slices[position]).rstrip(PAD_BYTE)
                self._prefixes[position] = self._merge_prefix(
                    self._prefixes[position], stripped)
                self._length_sums[position] += len(stripped)
        self._ns_size += self._ns_record_size(column_slices)
        self._rows += 1

    def size_with(self, column_slices: Sequence[bytes]) -> int:
        prefixes = list(self._prefixes)
        length_sums = list(self._length_sums)
        for position, col in enumerate(self._schema.columns):
            if isinstance(col.dtype, CharType):
                stripped = bytes(column_slices[position]).rstrip(PAD_BYTE)
                prefixes[position] = self._merge_prefix(
                    prefixes[position], stripped)
                length_sums[position] += len(stripped)
        ns_size = self._ns_size + self._ns_record_size(column_slices)
        return self._total(prefixes, length_sums, ns_size, self._rows + 1)

    @property
    def size(self) -> int:
        return self._total(self._prefixes, self._length_sums,
                           self._ns_size, self._rows)

    @property
    def row_count(self) -> int:
        return self._rows
