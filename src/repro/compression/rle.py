"""Run-length encoding (RLE) — an extension algorithm.

The paper's related-work tutorials ([7], [8]) treat run-length encoding
as a standard database compression technique. On a clustered index the
leaf records arrive in key order, so equal values form contiguous runs;
RLE stores each run once as ``(count, value)`` with the value itself
null-suppressed.

Being order-sensitive, RLE demonstrates that SampleCF generalises beyond
the two techniques the paper analyses: the estimator never looks inside
the algorithm, it just compresses the sampled index (which is also sorted,
so run structure is preserved in distribution).

Stored size per run: 4 bytes of run length + ``c + l`` bytes of
null-suppressed value.
"""

from __future__ import annotations

from typing import Sequence

from repro.constants import PAD_BYTE
from repro.errors import CompressionError
from repro.storage.schema import Schema
from repro.storage.types import (BigIntType, CharType, DataType, IntegerType,
                                 VarCharType, minimal_int_bytes)
from repro.compression.base import (CompressedBlock, CompressedColumn,
                                    CompressionAlgorithm, PageSizeTracker)
from repro.compression.null_suppression import ns_header_bytes

#: Bytes used to store one run's repetition count.
RUN_COUNT_BYTES: int = 4


def _encode_value_body(dtype: DataType, slice_: bytes) -> bytes:
    """Null-suppressed body of one run's value."""
    if isinstance(dtype, CharType):
        return slice_.rstrip(PAD_BYTE)
    if isinstance(dtype, VarCharType):
        return slice_
    if isinstance(dtype, (IntegerType, BigIntType)):
        value = dtype.decode(slice_)
        width = minimal_int_bytes(value)
        return value.to_bytes(width, "big", signed=True)
    raise CompressionError(f"RLE unsupported for {dtype.name}")


def _decode_value_body(dtype: DataType, body: bytes) -> bytes:
    """Invert :func:`_encode_value_body` back to the raw column slice."""
    if isinstance(dtype, CharType):
        return body.ljust(dtype.k, PAD_BYTE)
    if isinstance(dtype, VarCharType):
        return body
    if isinstance(dtype, (IntegerType, BigIntType)):
        value = int.from_bytes(body, "big", signed=True)
        return dtype.encode(value)
    raise CompressionError(f"RLE unsupported for {dtype.name}")


def rle_run_stored_size(dtype: DataType, slice_: bytes) -> int:
    """Payload bytes of one run: count field + NS'd value.

    VARCHAR slices carry their own length prefix, so no extra header is
    charged for them.
    """
    body = _encode_value_body(dtype, slice_)
    if isinstance(dtype, VarCharType):
        return RUN_COUNT_BYTES + len(body)
    return RUN_COUNT_BYTES + ns_header_bytes(dtype) + len(body)


class RunLengthEncoding(CompressionAlgorithm):
    """Run-length encoding of page records, column by column."""

    scope = "page"
    name = "rle"

    def compress(self, records: Sequence[bytes], schema: Schema,
                 ) -> CompressedBlock:
        if not records:
            raise CompressionError("cannot compress an empty record set")
        columns = self.columnize(records, schema)
        compressed = tuple(
            self._compress_column(col.dtype, slices)
            for col, slices in zip(schema.columns, columns))
        return CompressedBlock(algorithm=self.name, row_count=len(records),
                               columns=compressed)

    def _compress_column(self, dtype: DataType, slices: list[bytes],
                         ) -> CompressedColumn:
        header = ns_header_bytes(dtype)
        runs: list[tuple[bytes, int]] = []
        for slice_ in slices:
            if runs and runs[-1][0] == slice_:
                runs[-1] = (runs[-1][0], runs[-1][1] + 1)
            else:
                runs.append((bytes(slice_), 1))
        parts: list[bytes] = [len(runs).to_bytes(4, "big")]
        payload = 0
        for value, count in runs:
            body = _encode_value_body(dtype, value)
            parts.append(count.to_bytes(RUN_COUNT_BYTES, "big"))
            if not isinstance(dtype, VarCharType):
                parts.append(len(body).to_bytes(header, "big"))
            parts.append(body)
            payload += rle_run_stored_size(dtype, value)
        return CompressedColumn(b"".join(parts), payload)

    def size_of(self, views, schema: Schema) -> int:
        """Vectorized RLE payload: run boundaries + NS'd run values."""
        from repro.errors import KernelUnavailable
        from repro.compression import kernels

        total = 0
        for col, view in zip(schema.columns, views):
            dtype = col.dtype
            starts = kernels.run_starts(view.comparison_matrix)
            runs = int(starts.sum())
            total += runs * RUN_COUNT_BYTES
            if isinstance(dtype, CharType):
                total += runs * ns_header_bytes(dtype) \
                    + int(view.char_stripped_lengths[starts].sum())
            elif isinstance(dtype, VarCharType):
                total += int(view.lengths[starts].sum())
            elif isinstance(dtype, (IntegerType, BigIntType)):
                total += runs + int(kernels.minimal_int_widths(
                    view.int_values[starts]).sum())
            else:
                raise KernelUnavailable(
                    f"no RLE size kernel for {dtype.name}")
        return total

    def decompress(self, block: CompressedBlock, schema: Schema,
                   ) -> list[bytes]:
        if len(block.columns) != len(schema):
            raise CompressionError(
                f"block has {len(block.columns)} columns, schema has "
                f"{len(schema)}")
        columns = [
            self._decompress_column(col.dtype, comp.blob, block.row_count)
            for col, comp in zip(schema.columns, block.columns)]
        return self.recordize(columns)

    def _decompress_column(self, dtype: DataType, blob: bytes, count: int,
                           ) -> list[bytes]:
        header = ns_header_bytes(dtype)
        if len(blob) < 4:
            raise CompressionError("truncated RLE header")
        run_count = int.from_bytes(blob[0:4], "big")
        offset = 4
        out: list[bytes] = []
        for _ in range(run_count):
            repetitions = int.from_bytes(
                blob[offset:offset + RUN_COUNT_BYTES], "big")
            offset += RUN_COUNT_BYTES
            if isinstance(dtype, VarCharType):
                length = int.from_bytes(
                    blob[offset:offset + VarCharType.LENGTH_PREFIX_BYTES],
                    "big")
                end = offset + VarCharType.LENGTH_PREFIX_BYTES + length
                body = blob[offset:end]
                offset = end
            else:
                length = int.from_bytes(blob[offset:offset + header], "big")
                offset += header
                body = blob[offset:offset + length]
                if len(body) != length:
                    raise CompressionError("truncated RLE value")
                offset += length
            slice_ = _decode_value_body(dtype, body)
            out.extend([slice_] * repetitions)
        if len(out) != count:
            raise CompressionError(
                f"RLE expanded to {len(out)} rows, expected {count}")
        if offset != len(blob):
            raise CompressionError(
                f"{len(blob) - offset} trailing bytes in RLE blob")
        return out

    def make_tracker(self, schema: Schema) -> PageSizeTracker:
        return _RLETracker(schema)

    def cf_from_histogram(self, histogram, **layout) -> float:
        """Closed-form RLE CF on a sorted clustered page layout."""
        from repro.core.cf_models import paged_rle_cf

        return paged_rle_cf(histogram, **layout)


class _RLETracker(PageSizeTracker):
    """Incremental RLE size assuming records arrive in key order."""

    def __init__(self, schema: Schema) -> None:
        self._schema = schema
        self._last: list[bytes | None] = [None] * len(schema)
        self._size = 0
        self._rows = 0

    def _new_run_cost(self, position: int, slice_: bytes) -> int:
        dtype = self._schema.columns[position].dtype
        return rle_run_stored_size(dtype, slice_)

    def _delta(self, column_slices: Sequence[bytes]) -> int:
        delta = 0
        for position, slice_ in enumerate(column_slices):
            if self._last[position] != bytes(slice_):
                delta += self._new_run_cost(position, bytes(slice_))
        return delta

    def add(self, column_slices: Sequence[bytes]) -> None:
        self._size += self._delta(column_slices)
        for position, slice_ in enumerate(column_slices):
            self._last[position] = bytes(slice_)
        self._rows += 1

    def size_with(self, column_slices: Sequence[bytes]) -> int:
        return self._size + self._delta(column_slices)

    @property
    def size(self) -> int:
        return self._size

    @property
    def row_count(self) -> int:
        return self._rows
