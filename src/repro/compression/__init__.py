"""Database compression algorithms.

The two techniques the paper analyses — null suppression and dictionary
compression (page-scoped, plus the simplified global model) — together
with the extension algorithms that exercise SampleCF's claim of being
agnostic to the compression technique (RLE, prefix, composite PAGE).
"""

from repro.compression.base import (CompressedBlock, CompressedColumn,
                                    CompressionAlgorithm, CompressionResult,
                                    PageSizeTracker)
from repro.compression.delta import DeltaEncoding, delta_stored_size
from repro.compression.dictionary import (DictionaryCompression,
                                          pointer_bytes_for)
from repro.compression.global_dictionary import GlobalDictionaryCompression
from repro.compression.kernels import (ColumnView, DISABLE_KERNELS_ENV,
                                       build_column_views, kernels_enabled)
from repro.compression.null_suppression import (NullSuppression,
                                                ns_header_bytes,
                                                ns_stored_size)
from repro.compression.page_compression import PageCompression
from repro.compression.prefix import PrefixCompression, common_prefix
from repro.compression.registry import (get_algorithm, list_algorithms,
                                        register_algorithm)
from repro.compression.repack import (COMPRESSION_INFO_BYTES, RepackResult,
                                      compressed_page_capacity, repack)
from repro.compression.rle import RunLengthEncoding, rle_run_stored_size

__all__ = [
    "CompressedBlock",
    "CompressedColumn",
    "CompressionAlgorithm",
    "CompressionResult",
    "PageSizeTracker",
    "DeltaEncoding",
    "delta_stored_size",
    "DictionaryCompression",
    "GlobalDictionaryCompression",
    "NullSuppression",
    "PageCompression",
    "PrefixCompression",
    "RunLengthEncoding",
    "COMPRESSION_INFO_BYTES",
    "ColumnView",
    "DISABLE_KERNELS_ENV",
    "RepackResult",
    "build_column_views",
    "common_prefix",
    "kernels_enabled",
    "compressed_page_capacity",
    "get_algorithm",
    "list_algorithms",
    "ns_header_bytes",
    "ns_stored_size",
    "pointer_bytes_for",
    "register_algorithm",
    "repack",
    "rle_run_stored_size",
]
