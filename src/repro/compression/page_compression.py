"""Composite PAGE compression — prefix + dictionary + null suppression.

SQL Server's PAGE compression (the setting behind the system the paper's
estimator ships in) stacks three passes per page:

1. row/null suppression — values lose their padding,
2. column prefix — the page-wide common prefix is factored out,
3. page dictionary — repeated remainders are replaced by pointers into an
   in-lined dictionary whose entries are themselves stored
   null-suppressed.

For a CHAR column on one page the stored size is::

    (c + |P|)                 # the common prefix, stored once
  + sum_entries (c + |rem|)   # dictionary of distinct remainders, NS'd
  + n * p                     # one pointer per row

Non-CHAR columns skip the prefix pass and go straight to the dictionary
with null-suppressed entries. This algorithm exists to exercise
SampleCF's algorithm-agnosticism on a realistic composite technique.
"""

from __future__ import annotations

from typing import Sequence

from repro.constants import DEFAULT_POINTER_BYTES, PAD_BYTE
from repro.errors import CompressionError
from repro.storage.schema import Schema
from repro.storage.types import CharType, DataType
from repro.compression.base import (CompressedBlock, CompressedColumn,
                                    CompressionAlgorithm, PageSizeTracker)
from repro.compression.dictionary import _DictionaryCodec
from repro.compression.null_suppression import ns_header_bytes
from repro.compression.prefix import common_prefix

_MODE_DICT_ONLY = 0
_MODE_PREFIX_DICT = 1


class PageCompression(CompressionAlgorithm):
    """Prefix + dictionary + NS, applied per page and per column."""

    scope = "page"

    def __init__(self, pointer_bytes: int | None = DEFAULT_POINTER_BYTES,
                 ) -> None:
        self._codec = _DictionaryCodec(pointer_bytes,
                                       entry_storage="null_suppressed")
        self.name = "page"

    @property
    def pointer_bytes(self) -> int | None:
        return self._codec.pointer_bytes

    def compress(self, records: Sequence[bytes], schema: Schema,
                 ) -> CompressedBlock:
        if not records:
            raise CompressionError("cannot compress an empty record set")
        columns = self.columnize(records, schema)
        compressed = tuple(
            self._compress_column(col.dtype, slices)
            for col, slices in zip(schema.columns, columns))
        return CompressedBlock(algorithm=self.name, row_count=len(records),
                               columns=compressed)

    def _compress_column(self, dtype: DataType, slices: list[bytes],
                         ) -> CompressedColumn:
        if not isinstance(dtype, CharType):
            inner = self._codec.compress_column(dtype, slices)
            blob = bytes([_MODE_DICT_ONLY]) + inner.blob
            return CompressedColumn(blob, inner.payload_size)
        header = ns_header_bytes(dtype)
        stripped = [slice_.rstrip(PAD_BYTE) for slice_ in slices]
        prefix = common_prefix(stripped)
        remainders = [value[len(prefix):] for value in stripped]
        entries: dict[bytes, int] = {}
        pointers: list[int] = []
        for remainder in remainders:
            index = entries.setdefault(remainder, len(entries))
            pointers.append(index)
        width = self._codec.pointer_width(max(len(entries), 1))
        if len(entries) > (1 << (8 * width)):
            raise CompressionError(
                f"{len(entries)} dictionary entries exceed a "
                f"{width}-byte pointer")
        parts: list[bytes] = [
            bytes([_MODE_PREFIX_DICT]),
            len(prefix).to_bytes(header, "big"),
            prefix,
            len(entries).to_bytes(4, "big"),
            width.to_bytes(1, "big"),
        ]
        payload = header + len(prefix)
        for entry in entries:
            parts.append(len(entry).to_bytes(header, "big"))
            parts.append(entry)
            payload += header + len(entry)
        for pointer in pointers:
            parts.append(pointer.to_bytes(width, "big"))
        payload += len(pointers) * width
        return CompressedColumn(b"".join(parts), payload)

    def size_of(self, views, schema: Schema) -> int:
        """Vectorized composite payload: prefix + dictionary + NS.

        For a CHAR column the distinct *remainders* biject onto the
        distinct stripped values (all share the page prefix), so one
        ``np.unique`` over the padded rows yields both the dictionary
        cardinality and, via the stripped lengths of the unique rows,
        the total entry bytes. Non-CHAR columns reuse the
        null-suppressed-entry dictionary kernel.
        """
        from repro.compression import kernels

        total = 0
        for col, view in zip(schema.columns, views):
            dtype = col.dtype
            if not isinstance(dtype, CharType):
                total += self._codec.size_of_column(dtype, view)
                continue
            header = ns_header_bytes(dtype)
            lengths = view.char_stripped_lengths
            prefix_len = kernels.common_prefix_length(view.matrix, lengths)
            uniques = kernels.unique_rows(view)
            distinct = int(uniques.shape[0])
            width = self._codec.pointer_width(max(distinct, 1))
            if distinct > (1 << (8 * width)):
                raise CompressionError(
                    f"{distinct} dictionary entries exceed a "
                    f"{width}-byte pointer")
            entry_lengths = int(kernels.stripped_lengths(uniques).sum())
            total += (header + prefix_len) \
                + distinct * header + entry_lengths \
                - distinct * prefix_len + view.count * width
        return total

    def decompress(self, block: CompressedBlock, schema: Schema,
                   ) -> list[bytes]:
        if len(block.columns) != len(schema):
            raise CompressionError(
                f"block has {len(block.columns)} columns, schema has "
                f"{len(schema)}")
        columns = [
            self._decompress_column(col.dtype, comp.blob, block.row_count)
            for col, comp in zip(schema.columns, block.columns)]
        return self.recordize(columns)

    def _decompress_column(self, dtype: DataType, blob: bytes, count: int,
                           ) -> list[bytes]:
        if not blob:
            raise CompressionError("empty PAGE compression blob")
        mode = blob[0]
        body = blob[1:]
        if mode == _MODE_DICT_ONLY:
            return self._codec.decompress_column(dtype, body, count)
        if mode != _MODE_PREFIX_DICT or not isinstance(dtype, CharType):
            raise CompressionError(
                f"invalid PAGE mode {mode} for {dtype.name}")
        header = ns_header_bytes(dtype)
        prefix_len = int.from_bytes(body[0:header], "big")
        offset = header
        prefix = body[offset:offset + prefix_len]
        if len(prefix) != prefix_len:
            raise CompressionError("truncated PAGE prefix")
        offset += prefix_len
        entry_count = int.from_bytes(body[offset:offset + 4], "big")
        offset += 4
        width = body[offset]
        offset += 1
        entries: list[bytes] = []
        for _ in range(entry_count):
            entry_len = int.from_bytes(body[offset:offset + header], "big")
            offset += header
            entry = body[offset:offset + entry_len]
            if len(entry) != entry_len:
                raise CompressionError("truncated PAGE dictionary entry")
            offset += entry_len
            entries.append(entry)
        out: list[bytes] = []
        for _ in range(count):
            chunk = body[offset:offset + width]
            if len(chunk) != width:
                raise CompressionError("truncated PAGE pointer")
            pointer = int.from_bytes(chunk, "big")
            if pointer >= len(entries):
                raise CompressionError(
                    f"pointer {pointer} outside dictionary of "
                    f"{len(entries)}")
            offset += width
            value = prefix + entries[pointer]
            out.append(value.ljust(dtype.k, PAD_BYTE))
        if offset != len(body):
            raise CompressionError(
                f"{len(body) - offset} trailing bytes in PAGE blob")
        return out

    def make_tracker(self, schema: Schema) -> PageSizeTracker:
        return _PageCompressionTracker(self, schema)


class _PageCompressionTracker(PageSizeTracker):
    """Incremental composite size.

    Tracks, per CHAR column: the running common prefix, the set of
    distinct *stripped values* with their length sum. The prefix/
    dictionary interplay is recomputed in closed form: each distinct
    stripped value contributes a dictionary entry of
    ``c + (len(value) - |P|)`` bytes, so the column total is
    ``(c + |P|) + sum_entries(c + len_e) - d * |P| + rows * p``.
    """

    def __init__(self, algorithm: PageCompression, schema: Schema) -> None:
        self._algorithm = algorithm
        self._schema = schema
        self._codec = algorithm._codec
        self._prefixes: list[bytes | None] = [None] * len(schema)
        self._seen: list[dict[bytes, None]] = [{} for _ in schema.columns]
        self._entry_length_sums = [0] * len(schema)
        self._rows = 0

    @staticmethod
    def _merge_prefix(current: bytes | None, value: bytes) -> bytes:
        if current is None:
            return value
        limit = min(len(current), len(value))
        i = 0
        while i < limit and current[i] == value[i]:
            i += 1
        return current[:i]

    def _char_total(self, position: int, prefix: bytes | None,
                    seen_count: int, length_sum: int, rows: int) -> int:
        dtype = self._schema.columns[position].dtype
        header = ns_header_bytes(dtype)
        prefix_len = len(prefix) if prefix is not None else 0
        width = self._codec.pointer_width(max(seen_count, 1))
        return (header + prefix_len) \
            + seen_count * header + length_sum - seen_count * prefix_len \
            + rows * width

    def _other_total(self, position: int, seen: dict[bytes, None],
                     rows: int) -> int:
        dtype = self._schema.columns[position].dtype
        from repro.compression.dictionary import _entry_stored_size

        entry_bytes = sum(
            _entry_stored_size(dtype, value, "null_suppressed")
            for value in seen)
        width = self._codec.pointer_width(max(len(seen), 1))
        return entry_bytes + rows * width

    def _total(self, prefixes, seen_sets, length_sums, rows: int) -> int:
        total = 0
        for position, col in enumerate(self._schema.columns):
            if isinstance(col.dtype, CharType):
                total += self._char_total(
                    position, prefixes[position], len(seen_sets[position]),
                    length_sums[position], rows)
            else:
                total += self._other_total(position, seen_sets[position],
                                           rows)
        return total

    def _absorb(self, prefixes, seen_sets, length_sums,
                column_slices: Sequence[bytes]) -> None:
        for position, col in enumerate(self._schema.columns):
            slice_ = bytes(column_slices[position])
            if isinstance(col.dtype, CharType):
                stripped = slice_.rstrip(PAD_BYTE)
                prefixes[position] = self._merge_prefix(
                    prefixes[position], stripped)
                if stripped not in seen_sets[position]:
                    seen_sets[position][stripped] = None
                    length_sums[position] += len(stripped)
            else:
                seen_sets[position].setdefault(slice_, None)

    def add(self, column_slices: Sequence[bytes]) -> None:
        self._absorb(self._prefixes, self._seen, self._entry_length_sums,
                     column_slices)
        self._rows += 1

    def size_with(self, column_slices: Sequence[bytes]) -> int:
        prefixes = list(self._prefixes)
        seen_sets = [dict(seen) for seen in self._seen]
        length_sums = list(self._entry_length_sums)
        self._absorb(prefixes, seen_sets, length_sums, column_slices)
        return self._total(prefixes, seen_sets, length_sums, self._rows + 1)

    @property
    def size(self) -> int:
        return self._total(self._prefixes, self._seen,
                           self._entry_length_sums, self._rows)

    @property
    def row_count(self) -> int:
        return self._rows
