"""Dictionary compression — Section II-A / III-B of the paper.

Each column's distinct values are stored once in a dictionary and every
row stores a small pointer instead of the value. Commercial systems apply
this *per page* with the dictionary in-lined in the page (so lookups cost
no extra I/O); the paper additionally analyses a *simplified global
model* where one index-wide dictionary holds each distinct value once::

    CF_D = (d * k + n * p) / (n * k) = d/n + p/k        (simplified model)

This module implements the page-scoped algorithm; the simplified global
model lives in :mod:`repro.compression.global_dictionary` and shares the
same codec with ``scope = "index"``.

Parameters
----------
pointer_bytes:
    The paper's ``p``. ``None`` derives it from the dictionary size
    (``ceil(log2 d) / 8`` bytes, at least one), the "in general" rule the
    paper states; an integer fixes it, which is what the closed-form
    theorems assume. Default: 2 bytes (:data:`DEFAULT_POINTER_BYTES`).
entry_storage:
    ``"fixed"`` stores dictionary entries at full column width (the
    ``d * k`` term of the paper's model); ``"null_suppressed"`` stores
    them NS-compressed, as real systems do (an ablation knob).
"""

from __future__ import annotations

import math
from typing import Literal, Sequence

from repro.constants import DEFAULT_POINTER_BYTES, PAD_BYTE
from repro.errors import CompressionError
from repro.storage.schema import Schema
from repro.storage.types import (BigIntType, CharType, DataType, IntegerType,
                                 VarCharType)
from repro.compression.base import (CompressedBlock, CompressedColumn,
                                    CompressionAlgorithm, PageSizeTracker)
from repro.compression.null_suppression import ns_header_bytes

EntryStorage = Literal["fixed", "null_suppressed"]


def pointer_bytes_for(distinct: int) -> int:
    """Derived pointer width: ``ceil(log2 d)`` bits rounded up to bytes."""
    if distinct <= 0:
        raise CompressionError(
            f"dictionary must have at least one entry, got {distinct}")
    bits = max(1, math.ceil(math.log2(max(distinct, 2))))
    return max(1, math.ceil(bits / 8))


def _entry_stored_size(dtype: DataType, slice_: bytes,
                       entry_storage: EntryStorage) -> int:
    """Bytes one dictionary entry occupies."""
    if entry_storage == "fixed":
        return len(slice_)
    header = ns_header_bytes(dtype)
    if isinstance(dtype, CharType):
        return header + len(slice_.rstrip(PAD_BYTE))
    if isinstance(dtype, VarCharType):
        return len(slice_)
    if isinstance(dtype, (IntegerType, BigIntType)):
        value = dtype.decode(slice_)
        return header + dtype.null_suppressed_length(value)
    raise CompressionError(f"dictionary unsupported for {dtype.name}")


class _DictionaryCodec:
    """Column-level dictionary encode/decode shared by both scopes."""

    def __init__(self, pointer_bytes: int | None,
                 entry_storage: EntryStorage) -> None:
        if pointer_bytes is not None and pointer_bytes <= 0:
            raise CompressionError(
                f"pointer width must be positive, got {pointer_bytes}")
        if entry_storage not in ("fixed", "null_suppressed"):
            raise CompressionError(
                f"unknown entry storage {entry_storage!r}")
        self.pointer_bytes = pointer_bytes
        self.entry_storage: EntryStorage = entry_storage

    def pointer_width(self, distinct: int) -> int:
        """Actual pointer width used for a dictionary of ``distinct``."""
        if self.pointer_bytes is not None:
            return self.pointer_bytes
        return pointer_bytes_for(distinct)

    def __repr__(self) -> str:
        # Content-stable on purpose: the engine's canonical algorithm
        # identity (and therefore every persistent store key) reprs
        # instance state, and the default repr's memory address would
        # make equal configurations look distinct across processes.
        return (f"_DictionaryCodec(pointer_bytes={self.pointer_bytes}, "
                f"entry_storage={self.entry_storage!r})")

    def compress_column(self, dtype: DataType, slices: Sequence[bytes],
                        ) -> CompressedColumn:
        entries: dict[bytes, int] = {}
        pointers: list[int] = []
        for slice_ in slices:
            index = entries.setdefault(bytes(slice_), len(entries))
            pointers.append(index)
        distinct = len(entries)
        width = self.pointer_width(distinct)
        if distinct > (1 << (8 * width)):
            raise CompressionError(
                f"{distinct} dictionary entries exceed a "
                f"{width}-byte pointer")
        parts: list[bytes] = [
            distinct.to_bytes(4, "big"),
            width.to_bytes(1, "big"),
            (0 if self.entry_storage == "fixed" else 1).to_bytes(1, "big"),
        ]
        entries_payload = 0
        for value in entries:  # insertion order == pointer order
            stored = self._encode_entry(dtype, value)
            parts.append(len(stored).to_bytes(4, "big"))
            parts.append(stored)
            entries_payload += _entry_stored_size(
                dtype, value, self.entry_storage)
        for pointer in pointers:
            parts.append(pointer.to_bytes(width, "big"))
        payload = entries_payload + len(pointers) * width
        return CompressedColumn(b"".join(parts), payload)

    def size_of_column(self, dtype: DataType, view) -> int:
        """Vectorized payload of :meth:`compress_column`.

        Distinct values come from one ``np.unique`` over the column's
        comparison matrix; entry storage costs are then sized on the
        unique rows only. Bit-identical to the scalar loop, including
        the pointer-overflow failure mode.
        """
        from repro.compression import kernels

        if self.entry_storage == "fixed" \
                and not isinstance(dtype, VarCharType):
            # Entries cost cardinality x fixed width: the count-only
            # route avoids materialising the unique rows at all.
            distinct = kernels.distinct_count(view)
        else:
            uniques = kernels.unique_rows(view)
            distinct = int(uniques.shape[0])
        width = self.pointer_width(distinct)
        if distinct > (1 << (8 * width)):
            raise CompressionError(
                f"{distinct} dictionary entries exceed a "
                f"{width}-byte pointer")
        if isinstance(dtype, VarCharType):
            entries_payload = int(
                kernels.varchar_slice_lengths(uniques).sum())
        elif self.entry_storage == "fixed":
            entries_payload = distinct * dtype.fixed_size
        elif isinstance(dtype, CharType):
            entries_payload = distinct * ns_header_bytes(dtype) \
                + int(kernels.stripped_lengths(uniques).sum())
        elif isinstance(dtype, (IntegerType, BigIntType)):
            entry_view = kernels.ColumnView(dtype, distinct, matrix=uniques)
            entries_payload = distinct + int(
                kernels.minimal_int_widths(entry_view.int_values).sum())
        else:
            from repro.errors import KernelUnavailable

            raise KernelUnavailable(
                f"no dictionary size kernel for {dtype.name}")
        return entries_payload + view.count * width

    def _encode_entry(self, dtype: DataType, slice_: bytes) -> bytes:
        """Blob representation of one entry (always self-describing)."""
        if self.entry_storage == "fixed":
            return slice_
        if isinstance(dtype, CharType):
            return slice_.rstrip(PAD_BYTE)
        return slice_

    def _decode_entry(self, dtype: DataType, stored: bytes) -> bytes:
        if self.entry_storage == "fixed":
            return stored
        if isinstance(dtype, CharType):
            return stored.ljust(dtype.k, PAD_BYTE)
        return stored

    def decompress_column(self, dtype: DataType, blob: bytes, count: int,
                          ) -> list[bytes]:
        if len(blob) < 6:
            raise CompressionError("truncated dictionary header")
        distinct = int.from_bytes(blob[0:4], "big")
        width = blob[4]
        offset = 6
        entries: list[bytes] = []
        for _ in range(distinct):
            stored_len = int.from_bytes(blob[offset:offset + 4], "big")
            offset += 4
            stored = blob[offset:offset + stored_len]
            if len(stored) != stored_len:
                raise CompressionError("truncated dictionary entry")
            offset += stored_len
            entries.append(self._decode_entry(dtype, stored))
        out: list[bytes] = []
        for _ in range(count):
            chunk = blob[offset:offset + width]
            if len(chunk) != width:
                raise CompressionError("truncated dictionary pointer")
            pointer = int.from_bytes(chunk, "big")
            if pointer >= len(entries):
                raise CompressionError(
                    f"pointer {pointer} outside dictionary of "
                    f"{len(entries)}")
            out.append(entries[pointer])
            offset += width
        if offset != len(blob):
            raise CompressionError(
                f"{len(blob) - offset} trailing bytes in dictionary blob")
        return out


class DictionaryCompression(CompressionAlgorithm):
    """Page-scoped dictionary compression with in-lined dictionaries."""

    scope = "page"

    def __init__(self, pointer_bytes: int | None = DEFAULT_POINTER_BYTES,
                 entry_storage: EntryStorage = "fixed") -> None:
        self._codec = _DictionaryCodec(pointer_bytes, entry_storage)
        suffix = "" if pointer_bytes is not None else "_derived"
        self.name = f"dictionary{suffix}"

    @property
    def pointer_bytes(self) -> int | None:
        return self._codec.pointer_bytes

    @property
    def entry_storage(self) -> EntryStorage:
        return self._codec.entry_storage

    def compress(self, records: Sequence[bytes], schema: Schema,
                 ) -> CompressedBlock:
        if not records:
            raise CompressionError("cannot compress an empty record set")
        columns = self.columnize(records, schema)
        compressed = tuple(
            self._codec.compress_column(col.dtype, slices)
            for col, slices in zip(schema.columns, columns))
        return CompressedBlock(algorithm=self.name, row_count=len(records),
                               columns=compressed)

    def size_of(self, views, schema: Schema) -> int:
        """Vectorized per-page dictionary payload (``np.unique`` based)."""
        return sum(self._codec.size_of_column(col.dtype, view)
                   for col, view in zip(schema.columns, views))

    def decompress(self, block: CompressedBlock, schema: Schema,
                   ) -> list[bytes]:
        if len(block.columns) != len(schema):
            raise CompressionError(
                f"block has {len(block.columns)} columns, schema has "
                f"{len(schema)}")
        columns = [
            self._codec.decompress_column(col.dtype, comp.blob,
                                          block.row_count)
            for col, comp in zip(schema.columns, block.columns)]
        return self.recordize(columns)

    def make_tracker(self, schema: Schema) -> PageSizeTracker:
        return _DictionaryTracker(self._codec, schema)

    def cf_from_histogram(self, histogram, **layout) -> float:
        """Closed-form paged-dictionary CF on a sorted clustered layout."""
        from repro.core.cf_models import paged_dictionary_cf

        return paged_dictionary_cf(
            histogram, pointer_bytes=self._codec.pointer_bytes,
            entry_storage=self._codec.entry_storage, **layout)


class _DictionaryTracker(PageSizeTracker):
    """Incremental per-page dictionary size.

    Keeps one seen-set per column; adding a record costs a pointer per
    column plus an entry when the value is new. With a derived pointer
    width the pointer cost of *all* rows is recomputed from the current
    dictionary size (cheap: it is a closed form).
    """

    def __init__(self, codec: _DictionaryCodec, schema: Schema) -> None:
        self._codec = codec
        self._schema = schema
        self._seen: list[dict[bytes, None]] = [{} for _ in schema.columns]
        self._entry_bytes = 0
        self._rows = 0

    def _entry_cost(self, column: int, slice_: bytes) -> int:
        dtype = self._schema.columns[column].dtype
        return _entry_stored_size(dtype, slice_, self._codec.entry_storage)

    def _pointer_total(self, rows: int, seen_sizes: Sequence[int]) -> int:
        return sum(rows * self._codec.pointer_width(max(d, 1))
                   for d in seen_sizes)

    def add(self, column_slices: Sequence[bytes]) -> None:
        for position, slice_ in enumerate(column_slices):
            key = bytes(slice_)
            if key not in self._seen[position]:
                self._seen[position][key] = None
                self._entry_bytes += self._entry_cost(position, key)
        self._rows += 1

    def size_with(self, column_slices: Sequence[bytes]) -> int:
        extra_entries = 0
        seen_sizes = []
        for position, slice_ in enumerate(column_slices):
            key = bytes(slice_)
            present = key in self._seen[position]
            if not present:
                extra_entries += self._entry_cost(position, key)
            seen_sizes.append(len(self._seen[position]) + (0 if present else 1))
        pointer_total = self._pointer_total(self._rows + 1, seen_sizes)
        return self._entry_bytes + extra_entries + pointer_total

    @property
    def size(self) -> int:
        seen_sizes = [len(seen) for seen in self._seen]
        return self._entry_bytes + self._pointer_total(self._rows, seen_sizes)

    @property
    def row_count(self) -> int:
        return self._rows
