"""Size-only vectorized compression kernels.

The paper's estimator is agnostic to codec internals: it consumes only
"bytes before" and "bytes after". The scalar path nevertheless pays for
fully self-describing compressed blobs — per-value pure-Python loops —
and then keeps nothing but ``payload_size``. This module provides the
fast path: each codec computes its exact payload size for a whole
column of a whole leaf (or index) in vectorized NumPy, without
constructing a blob.

Two building blocks live here:

* :class:`ColumnView` — one column of a record batch in columnar form.
  Fixed-width columns become a single ``(n, width)`` ``uint8`` matrix
  (one ``np.frombuffer`` reshape of the concatenated records); VARCHAR
  columns become an offsets + concatenated-payload pair. Derived
  arrays the codecs share (null-suppressed lengths, decoded integers,
  padded matrices) are computed lazily and cached on the view, so a
  batch of algorithms over one leaf pays for each derivation once.
* vector primitives — ``stripped_lengths`` (trailing-pad scan),
  ``minimal_int_widths`` (two's-complement width arithmetic),
  ``run_starts`` (RLE boundaries), ``common_prefix_length``.

Every kernel is **bit-exact** against its codec's scalar
``compress(...).payload_size`` — the parity property suite asserts
this for every registered algorithm — so estimates computed through
kernels are interchangeable with (and cache-compatible with) scalar
ones, including entries already persisted in a
:class:`~repro.store.store.SampleStore`.

Codecs opt in by implementing
:meth:`~repro.compression.base.CompressionAlgorithm.size_of`; anything
uncovered (an exotic dtype, a third-party algorithm) raises
:class:`~repro.errors.KernelUnavailable` and the caller falls
back to the scalar path. Setting ``REPRO_DISABLE_KERNELS=1`` forces
the fallback everywhere, which CI uses to keep the scalar path tested.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.constants import PAD_BYTE
from repro.errors import KernelUnavailable
from repro.storage.record import fixed_column_offsets, split_records
from repro.storage.schema import Schema
from repro.storage.types import (BigIntType, CharType, DataType, IntegerType,
                                 VarCharType, length_header_bytes)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.compression.base import CompressionAlgorithm

#: Environment switch: any non-empty value other than ``0`` disables
#: the vectorized kernels process-wide (scalar fallback everywhere).
DISABLE_KERNELS_ENV = "REPRO_DISABLE_KERNELS"

_PAD = PAD_BYTE[0]  # the pad byte the scalar codecs strip

#: ``_WIDTH_THRESHOLDS[L-1]`` is the largest magnitude a signed value
#: of ``L`` bytes can carry (``2**(8L-1) - 1``); searching a magnitude
#: into this table yields ``minimal_int_bytes`` for the whole array.
_WIDTH_THRESHOLDS = np.array(
    [(1 << (8 * width - 1)) - 1 for width in range(1, 9)], dtype=np.uint64)

_SIGN_FLIP_64 = np.uint64(1 << 63)


def kernels_enabled() -> bool:
    """Whether the vectorized size kernels are active in this process."""
    raw = os.environ.get(DISABLE_KERNELS_ENV, "").strip()
    return raw in ("", "0")


# ----------------------------------------------------------------------
# Vector primitives
# ----------------------------------------------------------------------
def minimal_int_widths(values: np.ndarray) -> np.ndarray:
    """Vectorized ``minimal_int_bytes`` over an int64 array.

    ``v ^ (v >> 63)`` maps a value to the magnitude whose bit length
    determines its minimal two's-complement width (``v`` for ``v >= 0``,
    ``~v`` otherwise), exactly as the scalar loop's range test does.
    """
    v = np.ascontiguousarray(values, dtype=np.int64)
    magnitudes = (v ^ (v >> np.int64(63))).view(np.uint64)
    return magnitude_widths(magnitudes)


def magnitude_widths(magnitudes: np.ndarray) -> np.ndarray:
    """Minimal signed widths from uint64 magnitudes (``v`` or ``~v``).

    Magnitudes above ``2**63 - 1`` — possible for deltas of BIGINT
    pairs — correctly land on a 9-byte width.
    """
    return np.searchsorted(_WIDTH_THRESHOLDS, magnitudes,
                           side="left").astype(np.int64) + 1


def stripped_lengths(matrix: np.ndarray) -> np.ndarray:
    """Per-row null-suppressed lengths of a CHAR byte matrix.

    ``matrix`` is ``(n, k)`` uint8; the result is ``len(row.rstrip(b' '))``
    per row, computed as a vectorized trailing-byte scan.
    """
    mask = matrix != _PAD
    k = matrix.shape[1]
    trailing_pads = np.argmax(mask[:, ::-1], axis=1)
    return np.where(mask.any(axis=1), k - trailing_pads, 0).astype(np.int64)


def run_starts(matrix: np.ndarray) -> np.ndarray:
    """Boolean mask of rows that begin a new run of equal rows."""
    starts = np.empty(matrix.shape[0], dtype=bool)
    starts[0] = True
    if matrix.shape[0] > 1:
        np.any(matrix[1:] != matrix[:-1], axis=1, out=starts[1:])
    return starts


def common_prefix_length(matrix: np.ndarray,
                         lengths: np.ndarray) -> int:
    """Length of the common prefix of the rows' *stripped* values.

    Positionwise agreement on the padded matrix, capped by the
    shortest stripped length (pads beyond a value's end never extend
    its prefix).
    """
    agree = (matrix == matrix[0:1]).all(axis=0)
    first_diff = int(np.argmin(agree)) if not agree.all() \
        else matrix.shape[1]
    return min(first_diff, int(lengths.min()))


# ----------------------------------------------------------------------
# Columnar views
# ----------------------------------------------------------------------
class ColumnView:
    """One column of a record batch, in kernel-consumable columnar form.

    Exactly one of the two representations is populated:

    * fixed-width dtypes: ``matrix`` — ``(count, width)`` uint8,
      C-contiguous;
    * VARCHAR: ``payload`` (all slices concatenated, uint8) with
      ``offsets``/``lengths`` (int64, slice boundaries, length
      prefixes included).

    Derived arrays are cached so every codec sizing the same leaf
    shares one trailing-pad scan, one integer decode, and one padded
    matrix. A view may be a row *slice* of a parent view (one leaf of
    a whole-index view, see :func:`build_leaf_views`); sliced views
    inherit the parent's derived arrays as zero-copy slices, so a
    hundred leaves pay for each whole-index derivation once.
    """

    def __init__(self, dtype: DataType, count: int,
                 matrix: np.ndarray | None = None,
                 payload: np.ndarray | None = None,
                 offsets: np.ndarray | None = None,
                 lengths: np.ndarray | None = None,
                 parent: "ColumnView | None" = None,
                 row_start: int = 0,
                 raw_slices: Sequence[bytes] | None = None) -> None:
        self.dtype = dtype
        self.count = count
        self.matrix = matrix
        self.payload = payload
        self.offsets = offsets
        self.lengths = lengths
        #: The column's original byte slices, when they exist without a
        #: split (single-column schemas: the records themselves). A
        #: Python ``set`` over bytes hashes faster than any sort-based
        #: distinct at leaf cardinalities, so count-only consumers
        #: prefer this.
        self.raw_slices = raw_slices
        self._parent = parent
        self._row_start = row_start
        self._derived: dict = {}

    def _inherit(self, name: str) -> np.ndarray | None:
        """The parent's derived array, sliced to this view's rows."""
        if self._parent is None:
            return None
        base = getattr(self._parent, name)
        return base[self._row_start:self._row_start + self.count]

    # -- CHAR ----------------------------------------------------------
    @property
    def char_stripped_lengths(self) -> np.ndarray:
        """Null-suppressed lengths per row (CHAR columns)."""
        cached = self._derived.get("stripped")
        if cached is None:
            cached = self._inherit("char_stripped_lengths")
            if cached is None:
                cached = stripped_lengths(self.matrix)
            self._derived["stripped"] = cached
        return cached

    # -- integers ------------------------------------------------------
    @property
    def int_values(self) -> np.ndarray:
        """Decoded int64 values (INTEGER and BIGINT columns).

        The stored encoding is big-endian with the sign bit flipped;
        flipping it back reinterprets the bits as two's complement,
        which int64 holds exactly for both widths.
        """
        cached = self._derived.get("ints")
        if cached is None:
            cached = self._inherit("int_values")
            if cached is None:
                if isinstance(self.dtype, IntegerType):
                    unsigned = self.matrix.view(">u4").ravel() \
                        .astype(np.int64)
                    cached = unsigned - np.int64(1 << 31)
                else:
                    cached = (self.uint_values ^ _SIGN_FLIP_64) \
                        .view(np.int64)
            self._derived["ints"] = cached
        return cached

    @property
    def uint_values(self) -> np.ndarray:
        """Raw unsigned (order-preserving) encodings of a BIGINT column."""
        cached = self._derived.get("uints")
        if cached is None:
            cached = self._inherit("uint_values")
            if cached is None:
                cached = self.matrix.view(">u8").ravel() \
                    .astype(np.uint64)
            self._derived["uints"] = cached
        return cached

    # -- VARCHAR -------------------------------------------------------
    @property
    def padded_matrix(self) -> np.ndarray:
        """VARCHAR slices as a null-padded uint8 matrix.

        Valid encodings can never differ only by trailing ``\\x00``
        bytes (the 2-byte length prefix pins every slice's length), so
        raw row comparison on this matrix is exact slice equality —
        which is what the dictionary/RLE kernels need from it.
        """
        cached = self._derived.get("padded")
        if cached is None:
            cached = self._inherit("padded_matrix")
            if cached is None:
                widest = int(self.lengths.max())
                cached = np.zeros((self.count, widest), dtype=np.uint8)
                flat_rows = np.repeat(np.arange(self.count), self.lengths)
                flat_cols = np.arange(self.payload.size) \
                    - np.repeat(self.offsets, self.lengths)
                cached[flat_rows, flat_cols] = self.payload
            self._derived["padded"] = cached
        return cached

    @property
    def comparison_matrix(self) -> np.ndarray:
        """The matrix raw-row equality is exact on, for any dtype."""
        return self.matrix if self.matrix is not None \
            else self.padded_matrix

    def slice_rows(self, start: int, count: int) -> "ColumnView":
        """A child view over rows ``[start, start + count)``.

        Array attributes are zero-copy slices; derived arrays resolve
        lazily through the parent so whole-batch derivations are
        shared by every child.
        """
        if self.matrix is not None:
            return ColumnView(self.dtype, count,
                              matrix=self.matrix[start:start + count],
                              parent=self, row_start=start)
        return ColumnView(self.dtype, count,
                          lengths=self.lengths[start:start + count],
                          parent=self, row_start=start)


def varchar_slice_lengths(unique_rows: np.ndarray) -> np.ndarray:
    """True slice lengths of unique padded VARCHAR rows.

    ``np.unique(..., axis=0)`` hands back null-padded rows; the real
    length is the 2-byte big-endian prefix plus the prefix itself.
    """
    return (unique_rows[:, 0].astype(np.int64) * 256
            + unique_rows[:, 1].astype(np.int64)
            + VarCharType.LENGTH_PREFIX_BYTES)


def build_column_views(schema: Schema, records: Sequence[bytes],
                       trusted_lengths: bool = False,
                       ) -> tuple[ColumnView, ...] | None:
    """Split a record batch into per-column kernel views, once.

    Returns ``None`` — meaning "use the scalar path" — for empty
    batches, records that do not match a fixed schema's width, or
    dtypes the kernels do not know. Fully fixed schemas reduce to one
    buffer concatenation plus a reshape; schemas with VARCHAR columns
    pay one Python split pass shared by every algorithm that sizes the
    batch. ``trusted_lengths`` skips the per-record width validation
    on fixed schemas; callers whose records provably came from the
    schema's own encoder (index leaves) set it, since the per-record
    ``len`` sweep would otherwise rival the sizing work itself.
    """
    from repro.errors import EncodingError

    count = len(records)
    if count == 0:
        return None
    for col in schema.columns:
        if not isinstance(col.dtype,
                          (CharType, VarCharType, IntegerType, BigIntType)):
            return None
    offsets = fixed_column_offsets(schema)
    if offsets is not None:
        width = offsets[-1]
        buffer = b"".join(records)
        if not trusted_lengths:
            sizes = np.fromiter(map(len, records), dtype=np.int64,
                                count=count)
            if (sizes != width).any():
                return None
        flat = np.frombuffer(buffer, dtype=np.uint8)
        if flat.size != count * width:
            return None
        matrix = flat.reshape(count, width)
        raw = records if len(schema) == 1 else None
        return tuple(
            ColumnView(col.dtype, count,
                       matrix=np.ascontiguousarray(
                           matrix[:, offsets[i]:offsets[i + 1]]),
                       raw_slices=raw)
            for i, col in enumerate(schema.columns))
    try:
        columns = split_records(schema, records)
    except EncodingError:
        return None  # malformed records: let the scalar path diagnose
    views = []
    for col, slices in zip(schema.columns, columns):
        dtype = col.dtype
        raw = records if len(schema) == 1 else slices
        if isinstance(dtype, VarCharType):
            lengths = np.fromiter(map(len, slices),
                                  dtype=np.int64, count=count)
            starts = np.zeros(count, dtype=np.int64)
            np.cumsum(lengths[:-1], out=starts[1:])
            payload = np.frombuffer(b"".join(slices), dtype=np.uint8)
            views.append(ColumnView(dtype, count, payload=payload,
                                    offsets=starts, lengths=lengths,
                                    raw_slices=raw))
        else:
            flat = np.frombuffer(b"".join(slices), dtype=np.uint8)
            views.append(ColumnView(
                dtype, count,
                matrix=flat.reshape(count, dtype.fixed_size),
                raw_slices=raw))
    return tuple(views)


def build_leaf_views(schema: Schema,
                     leaves: Sequence[Sequence[bytes]],
                     parents: tuple[ColumnView, ...] | None = None,
                     ) -> list[tuple[ColumnView, ...]] | None:
    """Per-leaf views for a whole index, from one whole-index split.

    Concatenating every leaf's records into one parent view and
    handing each leaf a row-sliced child amortizes the expensive parts
    — the buffer join, the record split, and the derived arrays the
    codecs share (pad scans, integer decodes) — across all leaves,
    instead of paying per-leaf NumPy setup a hundred times over.
    ``parents`` optionally supplies already-built whole-batch views
    (index-scoped sizing builds the same ones), so one split serves
    both scopes. Returns ``None`` (scalar path) under the same
    conditions as :func:`build_column_views`, or when any leaf is
    empty.
    """
    counts = [len(leaf) for leaf in leaves]
    if not counts or min(counts) == 0:
        return None
    if parents is None:
        flat = [record for leaf in leaves for record in leaf]
        # Leaf records are produced by the index's own encoder, so the
        # per-record width sweep is provably redundant here.
        parents = build_column_views(schema, flat, trusted_lengths=True)
    if parents is None or parents[0].count != sum(counts):
        return None
    single = len(parents) == 1
    out: list[tuple[ColumnView, ...]] = []
    start = 0
    for leaf, count in zip(leaves, counts):
        children = tuple(parent.slice_rows(start, count)
                         for parent in parents)
        if single:
            children[0].raw_slices = leaf
        out.append(children)
        start += count
    return out


# ----------------------------------------------------------------------
# Shared per-column sizing blocks
# ----------------------------------------------------------------------
def ns_column_size(view: ColumnView) -> int:
    """Trailing-mode null-suppression payload of one column.

    The exact counterpart of ``NullSuppression._compress_column`` for
    ``mode="trailing"``; used directly by the NS kernel and as the
    fallback pass of the prefix/delta kernels.
    """
    dtype = view.dtype
    if isinstance(dtype, CharType):
        return view.count * dtype.length_bytes \
            + int(view.char_stripped_lengths.sum())
    if isinstance(dtype, VarCharType):
        return int(view.lengths.sum())
    if isinstance(dtype, (IntegerType, BigIntType)):
        return view.count + int(minimal_int_widths(view.int_values).sum())
    raise KernelUnavailable(
        f"no NS size kernel for {dtype.name}")


def ns_runs_char_body_lengths(view: ColumnView) -> np.ndarray:
    """Per-row encoded body lengths of a CHAR column under NS ``runs``.

    The vectorized counterpart of ``_encode_runs`` applied to each
    row's trailing-stripped value: interior maximal runs of pad or
    ASCII-zero bytes are priced at the escape-token rate (3 bytes per
    255-byte chunk; a remainder shorter than the minimum run length
    stays literal), literal escape bytes cost 2, everything else 1.

    Runs are found on the row-major flattening of the byte matrix: a
    *run start* is a runnable byte at a row boundary, after a
    non-runnable byte, or after a different byte. Cumulative-summing
    the start mask labels every runnable byte with its run, and two
    ``bincount`` passes aggregate run lengths and per-row costs — no
    Python-level loop at any size.
    """
    from repro.compression.null_suppression import (_ESCAPE, _MIN_RUN,
                                                    _ZERO_BYTE)

    matrix = view.matrix
    count, width = matrix.shape
    stripped = view.char_stripped_lengths
    lengths = np.zeros(count, dtype=np.int64)
    if count == 0 or width == 0:
        return lengths
    # Bytes at or past a row's stripped length are the trailing pad the
    # header already accounts for; they never reach the body.
    valid = np.arange(width)[None, :] < stripped[:, None]
    runnable = valid & ((matrix == _PAD) | (matrix == _ZERO_BYTE))
    escapes = valid & (matrix == _ESCAPE)
    flat_runnable = runnable.ravel()
    flat_bytes = matrix.ravel()
    continues = np.zeros(count * width, dtype=bool)
    continues[1:] = (flat_runnable[1:] & flat_runnable[:-1]
                     & (flat_bytes[1:] == flat_bytes[:-1]))
    continues[::width] = False  # runs never cross a row boundary
    starts = flat_runnable & ~continues
    start_positions = np.flatnonzero(starts)
    run_costs = np.zeros(count, dtype=np.int64)
    if start_positions.size:
        run_ids = np.cumsum(starts) - 1
        run_lengths = np.bincount(run_ids[flat_runnable],
                                  minlength=start_positions.size)
        remainders = run_lengths % 255
        per_run = (3 * (run_lengths // 255)
                   + np.where(remainders >= _MIN_RUN, 3, remainders))
        run_costs = np.bincount(start_positions // width,
                                weights=per_run,
                                minlength=count).astype(np.int64)
    literals = (valid & ~runnable).sum(axis=1)
    return literals + escapes.sum(axis=1) + run_costs


def ns_runs_column_size(view: ColumnView) -> int:
    """Runs-mode null-suppression payload of one column.

    CHAR bodies pay the runs-mode header (sized for up to ``2k`` — an
    all-escape value doubles); VARCHAR and integer columns are
    mode-free and share the trailing-mode arithmetic.
    """
    dtype = view.dtype
    if isinstance(dtype, CharType):
        header = length_header_bytes(2 * dtype.k)
        return view.count * header \
            + int(ns_runs_char_body_lengths(view).sum())
    return ns_column_size(view)


def delta_column_size(view: ColumnView) -> int:
    """Delta-encoding payload of one integer column.

    BIGINT deltas can exceed int64, so they are carried as uint64
    magnitudes: the wrapped difference of the order-preserving raw
    encodings, bit-complemented when the true delta is negative —
    exactly the magnitude ``minimal_int_bytes`` ranges over.
    """
    dtype = view.dtype
    values = view.int_values
    first_width = 1 + int(minimal_int_widths(values[:1])[0])
    if view.count == 1:
        return first_width
    if isinstance(dtype, IntegerType):
        delta_widths = minimal_int_widths(np.diff(values))
    else:
        raw = view.uint_values
        wrapped = raw[1:] - raw[:-1]
        magnitudes = np.where(raw[1:] >= raw[:-1], wrapped, ~wrapped)
        delta_widths = magnitude_widths(magnitudes)
    return first_width + (view.count - 1) + int(delta_widths.sum())


def unique_rows(view: ColumnView) -> np.ndarray:
    """Distinct values of a column, as rows of its comparison matrix.

    Uses a 1-D unique over a void (memcmp) reinterpretation of the
    rows, which is an order of magnitude cheaper than
    ``np.unique(axis=0)`` at leaf-page cardinalities.
    """
    cached = view._derived.get("unique")
    if cached is None:
        matrix = np.ascontiguousarray(view.comparison_matrix)
        width = matrix.shape[1]
        flat = np.unique(matrix.view(np.dtype((np.void, width))).ravel())
        cached = flat.view(np.uint8).reshape(flat.size, width)
        view._derived["unique"] = cached
    return cached


def distinct_count(view: ColumnView) -> int:
    """Number of distinct values in a column.

    Count-only consumers (fixed-entry dictionaries just multiply the
    cardinality by the entry width) take the cheapest available route:
    a Python ``set`` over the original byte slices when the column owns
    them, else the cached sort-based unique.
    """
    cached = view._derived.get("distinct")
    if cached is None:
        unique = view._derived.get("unique")
        if unique is not None:
            cached = int(unique.shape[0])
        elif view.raw_slices is not None:
            cached = len(set(view.raw_slices))
        else:
            cached = int(unique_rows(view).shape[0])
        view._derived["distinct"] = cached
    return cached
