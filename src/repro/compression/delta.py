"""Delta encoding for integer columns — an extension algorithm.

Clustered indexes on integer keys (order ids, timestamps) hold leaf
records in key order, so consecutive values differ by small amounts.
Delta encoding stores the first value at full width and every subsequent
value as the minimal two's-complement representation of its difference
from the predecessor (with the usual 1-byte length header). On sorted
dense keys this approaches ~2 bytes/row regardless of the declared
width.

Non-integer columns fall back to plain null suppression, mirroring how
real systems pick a per-column encoding.

Stored size per column: ``(1 + width_first) + sum_{i>0} (1 + width(delta_i))``.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import CompressionError
from repro.storage.schema import Schema
from repro.storage.types import (BigIntType, DataType, IntegerType,
                                 minimal_int_bytes)
from repro.compression.base import (CompressedBlock, CompressedColumn,
                                    CompressionAlgorithm, PageSizeTracker)
from repro.compression.null_suppression import NullSuppression

_MODE_NS_FALLBACK = 0
_MODE_DELTA = 1


def _is_integer(dtype: DataType) -> bool:
    return isinstance(dtype, (IntegerType, BigIntType))


def delta_stored_size(previous: int | None, value: int) -> int:
    """Bytes one value costs: header + minimal width of (value - prev)."""
    if previous is None:
        return 1 + minimal_int_bytes(value)
    return 1 + minimal_int_bytes(value - previous)


class DeltaEncoding(CompressionAlgorithm):
    """Per-page delta encoding of integer columns."""

    scope = "page"
    name = "delta"

    def __init__(self) -> None:
        self._ns = NullSuppression()

    def compress(self, records: Sequence[bytes], schema: Schema,
                 ) -> CompressedBlock:
        if not records:
            raise CompressionError("cannot compress an empty record set")
        columns = self.columnize(records, schema)
        compressed = tuple(
            self._compress_column(col.dtype, slices)
            for col, slices in zip(schema.columns, columns))
        return CompressedBlock(algorithm=self.name, row_count=len(records),
                               columns=compressed)

    def _compress_column(self, dtype: DataType, slices: list[bytes],
                         ) -> CompressedColumn:
        if not _is_integer(dtype):
            inner = self._ns._compress_column(dtype, slices)
            blob = bytes([_MODE_NS_FALLBACK]) + inner.blob
            return CompressedColumn(blob, inner.payload_size)
        parts: list[bytes] = [bytes([_MODE_DELTA])]
        payload = 0
        previous: int | None = None
        for slice_ in slices:
            value = dtype.decode(slice_)
            stored = value if previous is None else value - previous
            width = minimal_int_bytes(stored)
            parts.append(width.to_bytes(1, "big"))
            parts.append(stored.to_bytes(width, "big", signed=True))
            payload += 1 + width
            previous = value
        return CompressedColumn(b"".join(parts), payload)

    def size_of(self, views, schema: Schema) -> int:
        """Vectorized delta payload: first value + widths of diffs.

        Integer columns go through the delta sizing block (BIGINT
        deltas are carried as uint64 magnitudes, since a difference of
        two int64 values can need 9 bytes); other columns reuse the NS
        sizing block, matching the scalar fallback.
        """
        from repro.compression.kernels import (delta_column_size,
                                               ns_column_size)

        return sum(
            delta_column_size(view) if _is_integer(col.dtype)
            else ns_column_size(view)
            for col, view in zip(schema.columns, views))

    def decompress(self, block: CompressedBlock, schema: Schema,
                   ) -> list[bytes]:
        if len(block.columns) != len(schema):
            raise CompressionError(
                f"block has {len(block.columns)} columns, schema has "
                f"{len(schema)}")
        columns = [
            self._decompress_column(col.dtype, comp.blob,
                                    block.row_count)
            for col, comp in zip(schema.columns, block.columns)]
        return self.recordize(columns)

    def _decompress_column(self, dtype: DataType, blob: bytes,
                           count: int) -> list[bytes]:
        if not blob:
            raise CompressionError("empty delta blob")
        mode = blob[0]
        body = blob[1:]
        if mode == _MODE_NS_FALLBACK:
            return self._ns._decompress_column(dtype, body, count)
        if mode != _MODE_DELTA or not _is_integer(dtype):
            raise CompressionError(
                f"invalid delta mode {mode} for {dtype.name}")
        out: list[bytes] = []
        offset = 0
        previous: int | None = None
        for _ in range(count):
            if offset >= len(body):
                raise CompressionError("truncated delta stream")
            width = body[offset]
            offset += 1
            chunk = body[offset:offset + width]
            if len(chunk) != width:
                raise CompressionError("truncated delta value")
            offset += width
            stored = int.from_bytes(chunk, "big", signed=True)
            value = stored if previous is None else previous + stored
            out.append(dtype.encode(value))
            previous = value
        if offset != len(body):
            raise CompressionError(
                f"{len(body) - offset} trailing bytes in delta blob")
        return out

    def make_tracker(self, schema: Schema) -> PageSizeTracker:
        return _DeltaTracker(self, schema)


class _DeltaTracker(PageSizeTracker):
    """Incremental delta size: remembers the previous integer per column.

    Non-integer columns are tracked by a plain NS tracker over the
    sub-schema that contains only them.
    """

    def __init__(self, algorithm: DeltaEncoding, schema: Schema) -> None:
        self._schema = schema
        self._previous: list[int | None] = [None] * len(schema)
        self._fallback_positions = [
            position for position, col in enumerate(schema.columns)
            if not _is_integer(col.dtype)]
        if self._fallback_positions:
            sub_schema = Schema([schema.columns[p]
                                 for p in self._fallback_positions])
            self._ns_tracker = algorithm._ns.make_tracker(sub_schema)
        else:
            self._ns_tracker = None
        self._size = 0
        self._rows = 0

    def _sub_slices(self, column_slices: Sequence[bytes]) -> list[bytes]:
        return [column_slices[p] for p in self._fallback_positions]

    def _integer_cost(self, column_slices: Sequence[bytes]) -> int:
        cost = 0
        for position, col in enumerate(self._schema.columns):
            if _is_integer(col.dtype):
                value = col.dtype.decode(column_slices[position])
                cost += delta_stored_size(self._previous[position],
                                          value)
        return cost

    def add(self, column_slices: Sequence[bytes]) -> None:
        self._size += self._integer_cost(column_slices)
        for position, col in enumerate(self._schema.columns):
            if _is_integer(col.dtype):
                self._previous[position] = col.dtype.decode(
                    column_slices[position])
        if self._ns_tracker is not None:
            self._ns_tracker.add(self._sub_slices(column_slices))
        self._rows += 1

    def size_with(self, column_slices: Sequence[bytes]) -> int:
        total = self.size + self._integer_cost(column_slices)
        if self._ns_tracker is not None:
            total += self._ns_tracker.size_with(
                self._sub_slices(column_slices)) - self._ns_tracker.size
        return total

    @property
    def size(self) -> int:
        if self._ns_tracker is not None:
            return self._size + self._ns_tracker.size
        return self._size

    @property
    def row_count(self) -> int:
        return self._rows
