"""Reservoir sampling (Vitter, reference [5] of the paper).

Reservoir sampling draws a uniform without-replacement sample of fixed
size ``r`` from a stream of unknown length in one pass — the natural way
to sample a table scan without knowing ``n`` up front.

Two classic variants are implemented:

* **Algorithm R** — O(N) coin flips; simple and branch-light.
* **Algorithm X** — skip-based: computes how many records to skip before
  the next replacement, touching far fewer random numbers when
  ``N >> r``.

Both produce exactly the same distribution (uniform without
replacement), which the property tests check against the direct sampler.
"""

from __future__ import annotations

from typing import Iterable, Iterator, TypeVar

import numpy as np

from repro.errors import SamplingError
from repro.sampling.base import RowSampler
from repro.sampling.rng import SeedLike, make_rng

T = TypeVar("T")


def reservoir_sample_r(stream: Iterable[T], r: int,
                       rng: np.random.Generator) -> list[T]:
    """Vitter's Algorithm R over an arbitrary stream."""
    if r <= 0:
        raise SamplingError(f"reservoir size must be positive, got {r}")
    reservoir: list[T] = []
    for seen, item in enumerate(stream):
        if seen < r:
            reservoir.append(item)
            continue
        slot = int(rng.integers(0, seen + 1))
        if slot < r:
            reservoir[slot] = item
    if not reservoir:
        raise SamplingError("cannot sample from an empty stream")
    return reservoir


def reservoir_sample_x(stream: Iterable[T], r: int,
                       rng: np.random.Generator) -> list[T]:
    """Vitter's Algorithm X: skip-count based reservoir sampling."""
    if r <= 0:
        raise SamplingError(f"reservoir size must be positive, got {r}")
    iterator: Iterator[T] = iter(stream)
    reservoir: list[T] = []
    for item in iterator:
        reservoir.append(item)
        if len(reservoir) == r:
            break
    if not reservoir:
        raise SamplingError("cannot sample from an empty stream")
    if len(reservoir) < r:
        return reservoir
    t = r  # records seen so far
    while True:
        # Draw the skip count S: the number of records to pass over
        # before the next record enters the reservoir. S satisfies
        # P(S >= s) = prod_{i=1..s} (t + i - r) / (t + i); invert by
        # sequential search on a single uniform variate (Vitter 1985).
        u = rng.random()
        skip = 0
        probability = 1.0
        while True:
            probability *= (t + skip + 1 - r) / (t + skip + 1)
            if probability <= u:
                break
            skip += 1
        advanced = 0
        chosen: T | None = None
        for item in iterator:
            advanced += 1
            if advanced == skip + 1:
                chosen = item
                break
        if advanced < skip + 1:
            return reservoir  # stream exhausted during the skip
        slot = int(rng.integers(0, r))
        reservoir[slot] = chosen  # type: ignore[assignment]
        t += skip + 1


class ReservoirSampler(RowSampler):
    """Row sampler backed by reservoir sampling over a position stream.

    Distributionally identical to
    :class:`~repro.sampling.row_samplers.WithoutReplacementSampler`; it
    exists to model the streaming access pattern (one sequential scan).
    """

    name = "reservoir"
    with_replacement = False

    def __init__(self, variant: str = "r") -> None:
        if variant not in ("r", "x"):
            raise SamplingError(f"unknown reservoir variant {variant!r}")
        self.variant = variant

    def sample_positions(self, n: int, r: int,
                         rng: np.random.Generator) -> np.ndarray:
        self._check(n, r)
        sampler = reservoir_sample_r if self.variant == "r" \
            else reservoir_sample_x
        return np.asarray(sampler(range(n), r, rng))

    def sample_histogram(self, histogram, r: int,
                         rng: np.random.Generator):
        # A reservoir sample is a uniform without-replacement sample, so
        # the histogram equivalent is multivariate hypergeometric.
        self._check(histogram.n, r)
        counts = histogram.counts.astype(np.int64)
        sampled = rng.multivariate_hypergeometric(counts, r)
        return histogram.with_counts(sampled)


class StreamingReservoir:
    """Incremental reservoir for use inside scan loops.

    Example::

        reservoir = StreamingReservoir(r=1000, seed=7)
        for row in table.rows():
            reservoir.offer(row)
        sample = reservoir.sample()
    """

    def __init__(self, r: int, seed: SeedLike = None) -> None:
        if r <= 0:
            raise SamplingError(f"reservoir size must be positive, got {r}")
        self.r = r
        self._rng = make_rng(seed)
        self._items: list = []
        self._seen = 0

    def offer(self, item) -> None:
        """Present the next stream element to the reservoir."""
        if self._seen < self.r:
            self._items.append(item)
        else:
            slot = int(self._rng.integers(0, self._seen + 1))
            if slot < self.r:
                self._items[slot] = item
        self._seen += 1

    @property
    def seen(self) -> int:
        """How many elements have been offered."""
        return self._seen

    def sample(self) -> list:
        """The current reservoir contents (a copy)."""
        if not self._items:
            raise SamplingError("no elements offered yet")
        return list(self._items)
