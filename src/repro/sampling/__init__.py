"""Sampling infrastructure: tuple, Bernoulli, reservoir and block designs."""

from repro.sampling.base import RowSampler, rows_for_fraction
from repro.sampling.block import BlockSample, BlockSampler
from repro.sampling.reservoir import (ReservoirSampler, StreamingReservoir,
                                      reservoir_sample_r, reservoir_sample_x)
from repro.sampling.rng import SeedLike, make_rng, spawn_rngs
from repro.sampling.row_samplers import (BernoulliSampler,
                                         WithoutReplacementSampler,
                                         WithReplacementSampler)

__all__ = [
    "BernoulliSampler",
    "BlockSample",
    "BlockSampler",
    "ReservoirSampler",
    "RowSampler",
    "SeedLike",
    "StreamingReservoir",
    "WithReplacementSampler",
    "WithoutReplacementSampler",
    "make_rng",
    "reservoir_sample_r",
    "reservoir_sample_x",
    "rows_for_fraction",
    "spawn_rngs",
]
