"""Block-level (page) sampling — the paper's declared future work.

Commercial systems rarely sample individual tuples: they sample whole
pages and keep every row on each sampled page, because that is the I/O
granularity. The paper's analysis covers tuple sampling and explicitly
defers page sampling ("Extending the analysis to account for page
sampling is part of future work", Section II-C); the `abl-block`
experiment measures the difference empirically.

Block sampling has *no* layout-free histogram equivalent: when values
are clustered (e.g. the table is sorted), rows on one page are highly
correlated and the effective sample is much less informative than an
equal-size tuple sample. That is exactly the phenomenon the ablation
demonstrates, so the sampler operates only on real pages.
"""

from __future__ import annotations

from collections import abc
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import SamplingError
from repro.storage.page import Page
from repro.storage.rid import RID


@dataclass(frozen=True)
class BlockSample:
    """Outcome of a block-level draw."""

    records: tuple[bytes, ...]
    rids: tuple[RID, ...]
    page_ids: tuple[int, ...]
    pages_available: int

    @property
    def rows(self) -> int:
        return len(self.records)


class BlockSampler:
    """Uniform page sampling without replacement, whole pages kept."""

    name = "block"
    with_replacement = False

    def sample_records(self, pages: Sequence[Page], target_rows: int,
                       rng: np.random.Generator) -> BlockSample:
        """Draw pages until at least ``target_rows`` rows are collected.

        Pages are drawn uniformly without replacement; every record on a
        drawn page enters the sample (the block-sampling contract). If
        the table runs out of pages first, the whole table is returned.
        """
        if not isinstance(pages, abc.Sequence):
            pages = list(pages)
        if not pages:
            raise SamplingError("cannot block-sample zero pages")
        if target_rows <= 0:
            raise SamplingError(
                f"target rows must be positive, got {target_rows}")
        order = rng.permutation(len(pages))
        records: list[bytes] = []
        rids: list[RID] = []
        chosen: list[int] = []
        for position in order:
            page = pages[int(position)]
            chosen.append(page.page_id)
            for slot, record in enumerate(page.records()):
                records.append(record)
                rids.append(RID(page.page_id, slot))
            if len(records) >= target_rows:
                break
        if not records:
            raise SamplingError("sampled pages contain no records")
        return BlockSample(records=tuple(records), rids=tuple(rids),
                           page_ids=tuple(chosen),
                           pages_available=len(pages))

    def sample_fraction(self, pages: Sequence[Page], fraction: float,
                        total_rows: int,
                        rng: np.random.Generator) -> BlockSample:
        """Draw pages until roughly ``fraction`` of all rows are sampled."""
        if not 0.0 < fraction <= 1.0:
            raise SamplingError(
                f"sampling fraction must be in (0, 1], got {fraction}")
        target = max(1, round(fraction * total_rows))
        return self.sample_records(pages, target, rng)
