"""Row-level sampling designs.

* :class:`WithReplacementSampler` — the paper's model (Section II-C):
  uniform over all tuples, with replacement. Histogram equivalent: a
  multinomial draw over the value counts.
* :class:`WithoutReplacementSampler` — simple random sampling without
  replacement, what ``TABLESAMPLE``-style row sampling approximates.
  Histogram equivalent: multivariate hypergeometric.
* :class:`BernoulliSampler` — each row kept independently with
  probability ``f`` (the sample size is random). Histogram equivalent:
  binomial thinning per distinct value.

All samplers are exact distributional equivalents on both paths, which
the property tests exploit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import SamplingError
from repro.sampling.base import RowSampler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cf_models import ColumnHistogram


class WithReplacementSampler(RowSampler):
    """Uniform tuple sampling with replacement (the paper's model)."""

    name = "with_replacement"
    with_replacement = True

    def sample_positions(self, n: int, r: int,
                         rng: np.random.Generator) -> np.ndarray:
        self._check(n, r)
        return rng.integers(0, n, size=r)

    def sample_histogram(self, histogram: "ColumnHistogram", r: int,
                         rng: np.random.Generator) -> "ColumnHistogram":
        self._check(histogram.n, r)
        probabilities = histogram.counts / histogram.n
        sampled = rng.multinomial(r, probabilities)
        return histogram.with_counts(sampled)


class WithoutReplacementSampler(RowSampler):
    """Simple random sampling without replacement."""

    name = "without_replacement"
    with_replacement = False

    def sample_positions(self, n: int, r: int,
                         rng: np.random.Generator) -> np.ndarray:
        self._check(n, r)
        return rng.choice(n, size=r, replace=False)

    def sample_histogram(self, histogram: "ColumnHistogram", r: int,
                         rng: np.random.Generator) -> "ColumnHistogram":
        self._check(histogram.n, r)
        counts = histogram.counts.astype(np.int64)
        sampled = rng.multivariate_hypergeometric(counts, r)
        return histogram.with_counts(sampled)


class BernoulliSampler(RowSampler):
    """Independent per-row coin flips with probability ``fraction``.

    ``sample_positions`` ignores the requested ``r`` beyond using it to
    recover the intended fraction when none was given at construction;
    prefer constructing with an explicit fraction.
    """

    name = "bernoulli"
    with_replacement = False

    def __init__(self, fraction: float) -> None:
        if not 0.0 < fraction <= 1.0:
            raise SamplingError(
                f"Bernoulli fraction must be in (0, 1], got {fraction}")
        self.fraction = fraction

    def sample_positions(self, n: int, r: int,
                         rng: np.random.Generator) -> np.ndarray:
        if n <= 0:
            raise SamplingError(f"population must be positive, got {n}")
        keep = rng.random(n) < self.fraction
        positions = np.flatnonzero(keep)
        if positions.size == 0:
            # A compressible sample needs at least one row; degenerate
            # empty draws resample one row uniformly (measure-zero event
            # for realistic n * f).
            positions = rng.integers(0, n, size=1)
        return positions

    def sample_histogram(self, histogram: "ColumnHistogram", r: int,
                         rng: np.random.Generator) -> "ColumnHistogram":
        counts = histogram.counts.astype(np.int64)
        sampled = rng.binomial(counts, self.fraction)
        if sampled.sum() == 0:
            position = int(rng.integers(0, len(counts)))
            sampled[position] = 1
        return histogram.with_counts(sampled)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BernoulliSampler(fraction={self.fraction})"
