"""Deterministic random-number-generator plumbing.

Every stochastic component in the library accepts either a seed or a
ready-made :class:`numpy.random.Generator`; these helpers normalise that
into a Generator and derive independent child streams for multi-trial
experiments, so any reported number can be reproduced from its seed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SamplingError

SeedLike = int | np.random.Generator | None


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Normalise ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` gives fresh OS entropy; an ``int`` gives a reproducible
    stream; an existing Generator is passed through unchanged.
    """
    if seed is None:
        # repro-lint: ignore[RPL001] -- make_rng's documented contract:
        # None means fresh OS entropy. The engine never takes this
        # branch (plan units always carry resolved seeds); only
        # explicit seedless facade/workload calls do.
        return np.random.default_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise SamplingError(
        f"seed must be None, int, or Generator, got {type(seed).__name__}")


def spawn_rngs(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """``count`` statistically independent child generators.

    Used by the experiment runner so trials are independent but the whole
    experiment replays from one seed.
    """
    if count < 0:
        raise SamplingError(f"cannot spawn {count} generators")
    parent = make_rng(seed)
    return [np.random.default_rng(s)
            for s in parent.integers(0, 2**63 - 1, size=count)]
