"""Sampler interfaces.

The paper's analysis assumes *uniform random sampling over all tuples
with replacement* (Section II-C). Commercial systems use other designs
(notably block-level sampling), so the sampler is a strategy object:
every sampler can produce

* **row positions** into a table of ``n`` rows (the storage path), and
* a **sampled histogram** directly from a value histogram (the fast
  path), using the exact distributional equivalent — multinomial for
  with-replacement, multivariate hypergeometric for without-replacement,
  binomial thinning for Bernoulli.

Keeping both paths on one object is what makes the integration tests
able to check that they agree.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import SamplingError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cf_models import ColumnHistogram


def rows_for_fraction(n: int, fraction: float) -> int:
    """Sample size ``r`` for a sampling fraction ``f`` over ``n`` rows.

    At least one row is always drawn (a zero-row sample cannot be
    compressed), and the paper's ``r = f * n`` is rounded to nearest.
    """
    if n <= 0:
        raise SamplingError(f"population must be positive, got {n}")
    if not 0.0 < fraction <= 1.0:
        raise SamplingError(
            f"sampling fraction must be in (0, 1], got {fraction}")
    return max(1, round(fraction * n))


class RowSampler(ABC):
    """Strategy for drawing a row sample."""

    #: Identifier used in experiment configurations and reports.
    name: str = "abstract"

    #: Whether a row can appear more than once in the sample.
    with_replacement: bool = False

    @abstractmethod
    def sample_positions(self, n: int, r: int,
                         rng: np.random.Generator) -> np.ndarray:
        """Draw ``r`` row positions from ``range(n)``."""

    @abstractmethod
    def sample_histogram(self, histogram: "ColumnHistogram", r: int,
                         rng: np.random.Generator) -> "ColumnHistogram":
        """Draw the histogram of an ``r``-row sample directly."""

    def _check(self, n: int, r: int) -> None:
        if n <= 0:
            raise SamplingError(f"population must be positive, got {n}")
        if r <= 0:
            raise SamplingError(f"sample size must be positive, got {r}")
        if not self.with_replacement and r > n:
            raise SamplingError(
                f"cannot draw {r} rows from {n} without replacement")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
