"""Deterministic fault injection: seeded, content-addressed schedules.

A :class:`FaultPlan` is a plain description of *which* hook-point
invocations misbehave and *how*: "the 3rd ``store.read`` raises a
transient error", "the first ``remote.send`` drops the connection",
"the pool worker crashes on its 2nd unit". Plans are data — JSON
round-trippable, content-fingerprinted, seedable — so a chaos run is
exactly as replayable as the estimates it perturbs.

A :class:`FaultInjector` arms one plan: hook points threaded through
the store, the executors, and the remote transport call
:meth:`FaultInjector.fire` with their site name, and the injector
matches the invocation count against the plan's specs. The default
:data:`NULL_INJECTOR` mirrors :data:`repro.obs.NULL_TRACER`: a
falsy-``enabled`` singleton whose hooks cost one attribute check, so
production hot paths stay allocation-free.

Sites and the kinds they honour::

    store.read    error | corrupt | truncate   (arg: byte offset / keep)
    store.write   error | error_permanent | torn | crash   (arg: bytes
                  written before the tear/kill; ``crash`` os._exit(32)s)
    store.lock    error
    pool.unit     crash                        (worker os._exit(33))
    remote.send   drop | delay                 (arg: delay seconds)
    remote.recv   drop

The ``REPRO_FAULT_PLAN`` environment variable carries a plan into
subprocess workers (process pools inherit the parent's environment):
inline JSON, or a path to a JSON file. :func:`injector_from_env` is
what the store and the pool initializer consult when no injector was
passed explicitly.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import threading
from dataclasses import dataclass, field

from repro.errors import EstimationError

#: Environment hook: an inline JSON fault plan, or a path to one.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Every site hook points may fire, with the kinds each honours.
FAULT_SITES: dict[str, tuple[str, ...]] = {
    "store.read": ("error", "corrupt", "truncate"),
    "store.write": ("error", "error_permanent", "torn", "crash"),
    "store.lock": ("error",),
    "pool.unit": ("crash",),
    "remote.send": ("drop", "delay"),
    "remote.recv": ("drop",),
}


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: fire at invocations [at, at + count) of a site."""

    site: str
    kind: str
    #: 0-based index of the first matching invocation of ``site``.
    at: int = 0
    #: Consecutive invocations that fire (so ``count >= max_attempts``
    #: exhausts a retry budget, while ``count=1`` tests absorption).
    count: int = 1
    #: Kind-specific parameter: byte offset for ``corrupt``/``torn``/
    #: ``crash``, bytes kept for ``truncate``, seconds for ``delay``.
    arg: float = 0.0

    def __post_init__(self) -> None:
        kinds = FAULT_SITES.get(self.site)
        if kinds is None:
            raise EstimationError(
                f"unknown fault site {self.site!r}; known: "
                f"{sorted(FAULT_SITES)}")
        if self.kind not in kinds:
            raise EstimationError(
                f"site {self.site!r} does not honour kind "
                f"{self.kind!r}; known: {list(kinds)}")
        if self.at < 0 or self.count <= 0:
            raise EstimationError(
                f"fault window needs at >= 0 and count > 0, got "
                f"at={self.at} count={self.count}")

    def matches(self, invocation: int) -> bool:
        return self.at <= invocation < self.at + self.count

    def as_dict(self) -> dict:
        return {"site": self.site, "kind": self.kind, "at": self.at,
                "count": self.count, "arg": self.arg}


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic fault schedule: plain data, content-addressed."""

    faults: tuple[FaultSpec, ...] = ()
    #: The seed that generated this plan (0 for hand-written plans);
    #: recorded so a chaos failure reproduces from its report alone.
    seed: int = 0

    @property
    def fingerprint(self) -> str:
        """SHA-256 over the canonical JSON form — the plan's identity."""
        return hashlib.sha256(
            self.to_json().encode("utf-8")).hexdigest()

    def to_json(self) -> str:
        return json.dumps(
            {"seed": self.seed,
             "faults": [spec.as_dict() for spec in self.faults]},
            sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise EstimationError(
                f"fault plan is not valid JSON: {exc}") from exc
        if not isinstance(data, dict) or \
                not isinstance(data.get("faults"), list):
            raise EstimationError(
                "a fault plan is a JSON object with a 'faults' list")
        faults = tuple(
            FaultSpec(site=str(item["site"]), kind=str(item["kind"]),
                      at=int(item.get("at", 0)),
                      count=int(item.get("count", 1)),
                      arg=float(item.get("arg", 0.0)))
            for item in data["faults"])
        return cls(faults=faults, seed=int(data.get("seed", 0)))

    @classmethod
    def generate(cls, seed: int, n_faults: int = 3,
                 sites: tuple[str, ...] | None = None) -> "FaultPlan":
        """A seeded random schedule over ``sites`` (all, by default).

        Derivation is pure :mod:`hashlib` over ``(seed, index)`` so the
        same seed always produces the same plan, independent of process
        state — the property the chaos smoke run in CI relies on.
        """
        if n_faults < 0:
            raise EstimationError(
                f"need a non-negative fault count, got {n_faults}")
        chosen_sites = tuple(sites) if sites is not None \
            else tuple(sorted(FAULT_SITES))
        specs = []
        for index in range(n_faults):
            digest = hashlib.sha256(
                f"fault-plan\x1f{seed}\x1f{index}".encode()).digest()
            site = chosen_sites[digest[0] % len(chosen_sites)]
            kinds = FAULT_SITES[site]
            kind = kinds[digest[1] % len(kinds)]
            specs.append(FaultSpec(
                site=site, kind=kind, at=digest[2] % 4,
                count=1 + digest[3] % 2,
                arg=float(digest[4]) if kind != "delay"
                else digest[4] / 25600.0))
        return cls(faults=tuple(specs), seed=seed)


@dataclass(frozen=True)
class FiredFault:
    """One fault the injector actually delivered (for reports/tests)."""

    site: str
    kind: str
    invocation: int


class FaultInjector:
    """Arms one :class:`FaultPlan`: counts site invocations, fires specs.

    Thread-safe (executors fire hooks from driver threads) and
    picklable: the plan is plain data, and ``__getstate__`` drops the
    lock and the invocation counters so a worker process starts its own
    count — which is the correct semantic: the plan describes each
    process's local invocation sequence, exactly like the seeded RNGs
    it perturbs.
    """

    enabled = True

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        self._invocations: dict[str, int] = {}
        self.fired: list[FiredFault] = []

    def fire(self, site: str) -> FaultSpec | None:
        """Count one invocation of ``site``; the matching spec, if any."""
        with self._lock:
            invocation = self._invocations.get(site, 0)
            self._invocations[site] = invocation + 1
            for spec in self.plan.faults:
                if spec.site == site and spec.matches(invocation):
                    self.fired.append(
                        FiredFault(site=site, kind=spec.kind,
                                   invocation=invocation))
                    return spec
        return None

    def fired_count(self) -> int:
        with self._lock:
            return len(self.fired)

    def reset(self) -> None:
        """Zero the invocation counters (a fresh run of the same plan)."""
        with self._lock:
            self._invocations.clear()
            self.fired.clear()

    def __getstate__(self) -> dict:
        return {"plan": self.plan}

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["plan"])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"FaultInjector(faults={len(self.plan.faults)}, "
                f"fingerprint={self.plan.fingerprint[:12]}…)")


class NullInjector:
    """The do-nothing injector; ``enabled`` is False so hooks early-out."""

    enabled = False

    def fire(self, site: str) -> None:
        return None

    def fired_count(self) -> int:
        return 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NULL_INJECTOR"


#: Shared no-op injector: hot paths hold this by default, so an
#: un-chaos'd run pays one ``enabled`` attribute check per hook.
NULL_INJECTOR = NullInjector()


def plan_from_env() -> FaultPlan | None:
    """The ``REPRO_FAULT_PLAN`` plan, or ``None`` when unset.

    The value is inline JSON when it starts with ``{``, otherwise a
    path to a JSON file — the path form is what CI's chaos smoke uses
    so the plan also lands in the uploaded artifacts.
    """
    raw = os.environ.get(FAULT_PLAN_ENV, "").strip()
    if not raw:
        return None
    if raw.startswith("{"):
        return FaultPlan.from_json(raw)
    path = pathlib.Path(raw)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise EstimationError(
            f"{FAULT_PLAN_ENV} points at an unreadable plan file "
            f"{raw!r}: {exc}") from exc
    return FaultPlan.from_json(text)


def injector_from_env() -> "FaultInjector | NullInjector":
    """An armed injector for the environment's plan, else NULL_INJECTOR."""
    plan = plan_from_env()
    if plan is None:
        return NULL_INJECTOR
    return FaultInjector(plan)
