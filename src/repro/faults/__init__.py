"""Deterministic fault injection and unified failure policies.

Two halves, one contract:

* :mod:`repro.faults.plan` — seeded, content-addressed fault schedules
  (:class:`FaultPlan`) delivered through narrow hook points by a
  :class:`FaultInjector` (default :data:`NULL_INJECTOR`, allocation
  free, mirroring ``NULL_TRACER``);
* :mod:`repro.faults.policy` — :class:`RetryPolicy` (deterministic
  decorrelated jitter), :class:`Deadline` (one budget shared by store
  I/O and executors), and :class:`CircuitBreaker` (per-worker gating
  for the remote executor).

The contract the chaos property suite enforces: any injected fault
sequence either yields bit-identical results to the fault-free run or
a typed degradation report — never a wrong number, a hang, or a lost
unit.
"""

from repro.faults.plan import (FAULT_PLAN_ENV, FAULT_SITES, FaultInjector,
                               FaultPlan, FaultSpec, FiredFault,
                               NULL_INJECTOR, NullInjector,
                               injector_from_env, plan_from_env)
from repro.faults.policy import (DEFAULT_RETRY_POLICY, CircuitBreaker,
                                 Deadline, RetryPolicy)

__all__ = [
    "FAULT_PLAN_ENV",
    "FAULT_SITES",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FiredFault",
    "NULL_INJECTOR",
    "NullInjector",
    "injector_from_env",
    "plan_from_env",
    "DEFAULT_RETRY_POLICY",
    "CircuitBreaker",
    "Deadline",
    "RetryPolicy",
]
