"""Unified failure policies: retry backoff, deadlines, circuit breaking.

Three small, composable pieces shared by the store tier, the engine,
and the remote executor — so "what happens when something fails" is a
policy object, not an accident of whichever ``except`` clause happens
to catch first:

* :class:`RetryPolicy` — bounded attempts with decorrelated-jitter
  backoff whose jitter derives from a caller-supplied deterministic
  seed (pure :mod:`hashlib`), so a retried run sleeps the same amounts
  as its replay and stays bit-identical end to end;
* :class:`Deadline` — a monotonic-clock budget propagated through
  :class:`~repro.engine.units.UnitContext` into store I/O (caps retry
  sleeps) and executors (skip units past the budget, reported as typed
  outcomes instead of raising);
* :class:`CircuitBreaker` — per-worker failure gating for the remote
  executor: closed while healthy, open after ``failure_threshold``
  consecutive failures, then a half-open probe re-``connect()``s the
  worker (after ``cooldown`` skipped batches, 0 by default so the
  probe lands on the next batch).
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass

from repro.errors import EstimationError


def _jitter(seed: int, attempt: int) -> float:
    """A deterministic uniform draw in [0, 1) from (seed, attempt).

    Pure hashlib — no RNG object, no process state — so retry timing
    replays exactly and never perturbs any seeded estimate stream.
    """
    digest = hashlib.sha256(
        f"retry-jitter\x1f{seed}\x1f{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with deterministic decorrelated-jitter backoff.

    ``max_attempts`` counts total tries (1 = no retry). Delays follow
    the decorrelated-jitter recursion ``d_{i} = min(max_delay,
    uniform(base_delay, 3 * d_{i-1}))`` with the uniform driven by
    :func:`_jitter`, so two processes retrying the same (seed, attempt)
    sleep identically.
    """

    max_attempts: int = 3
    base_delay: float = 0.005
    max_delay: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts <= 0:
            raise EstimationError(
                f"need a positive attempt budget, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise EstimationError(
                f"need 0 <= base_delay <= max_delay, got "
                f"{self.base_delay}/{self.max_delay}")

    def delay_for(self, seed: int, attempt: int) -> float:
        """The sleep before retry ``attempt`` (1-based), in seconds."""
        if attempt <= 0:
            raise EstimationError(
                f"retry attempts are 1-based, got {attempt}")
        delay = self.base_delay
        for step in range(1, attempt + 1):
            span = max(3.0 * delay - self.base_delay, 0.0)
            delay = min(self.max_delay,
                        self.base_delay + _jitter(seed, step) * span)
        return delay


#: The engine-wide default: three tries, sub-second total backoff —
#: a transient store hiccup heals without ever dominating a batch.
DEFAULT_RETRY_POLICY = RetryPolicy()


@dataclass(frozen=True)
class Deadline:
    """A monotonic-clock execution budget.

    Built with :meth:`after`; carried through ``UnitContext`` so every
    layer shares one budget. Comparisons use ``time.monotonic`` (never
    wall-clock), so a deadline is meaningful only within the process
    (and its forked children) that created it — which is exactly the
    scope executors run in.
    """

    expires_at: float

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        if seconds < 0:
            raise EstimationError(
                f"need a non-negative deadline, got {seconds}")
        return cls(expires_at=time.monotonic() + seconds)

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self.expires_at - time.monotonic()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def clamp(self, timeout: float) -> float:
        """``timeout`` capped to the remaining budget (floored at ~0)."""
        return max(0.001, min(timeout, self.remaining()))


class CircuitBreaker:
    """Per-worker failure gating: closed -> open -> half-open -> closed.

    Thread-safe; the remote executor holds one per worker address
    across batches. ``allow()`` gates (re)connection attempts:
    closed always allows; open skips ``cooldown`` calls, then goes
    half-open and allows exactly the probe; the probe's
    ``record_success``/``record_failure`` closes or re-opens.
    """

    def __init__(self, failure_threshold: int = 3,
                 cooldown: int = 0) -> None:
        if failure_threshold <= 0:
            raise EstimationError(
                f"need a positive failure threshold, got "
                f"{failure_threshold}")
        if cooldown < 0:
            raise EstimationError(
                f"need a non-negative cooldown, got {cooldown}")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._lock = threading.Lock()
        self._failures = 0
        self._skips_left = 0
        self._state = "closed"

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """Whether a (re)connection attempt may proceed right now."""
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "open":
                if self._skips_left > 0:
                    self._skips_left -= 1
                    return False
                self._state = "half_open"
            return True  # half-open: this attempt is the probe

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._state = "closed"

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if self._state == "half_open" or \
                    self._failures >= self.failure_threshold:
                self._state = "open"
                self._skips_left = self.cooldown

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"CircuitBreaker(state={self.state!r}, "
                f"threshold={self.failure_threshold}, "
                f"cooldown={self.cooldown})")
