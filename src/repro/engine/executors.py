"""Pluggable executors for independent plan units.

The engine reduces a plan to a flat list of thunks (one per
(node, trial) unit) whose results are order-aligned with the list; an
executor's only job is to run them all and return results *in input
order*. Because every unit's randomness was resolved at plan time and
shared state (sample cache, index cache) is single-flight, the serial
and thread-pool executors produce byte-identical results — the
determinism property test locks that in.

A process-pool executor is a planned follow-on (requires picklable
sources); the protocol below is what it will implement.
"""

from __future__ import annotations

import concurrent.futures
import os
from typing import Callable, Protocol, Sequence

from repro.errors import EstimationError


class PlanExecutor(Protocol):
    """Anything that can run a list of thunks and keep their order."""

    name: str

    def run(self, tasks: Sequence[Callable[[], object]]) -> list:
        """Execute all tasks; result ``i`` corresponds to task ``i``."""
        ...  # pragma: no cover - protocol


class SerialExecutor:
    """Run units one after another on the calling thread."""

    name = "serial"

    def run(self, tasks: Sequence[Callable[[], object]]) -> list:
        return [task() for task in tasks]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "SerialExecutor()"


class ThreadPoolPlanExecutor:
    """Run units on a thread pool; results return in task order.

    Estimation units spend much of their time in numpy sampling and
    byte-level compression loops, so modest pools already overlap
    usefully; correctness never depends on the worker count.
    """

    name = "threads"

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is not None and max_workers <= 0:
            raise EstimationError(
                f"need a positive worker count, got {max_workers}")
        self.max_workers = max_workers or min(8, (os.cpu_count() or 2))

    def run(self, tasks: Sequence[Callable[[], object]]) -> list:
        with concurrent.futures.ThreadPoolExecutor(
                max_workers=self.max_workers) as pool:
            futures = [pool.submit(task) for task in tasks]
            return [future.result() for future in futures]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ThreadPoolPlanExecutor(max_workers={self.max_workers})"


def make_executor(name: str, max_workers: int | None = None,
                  ) -> PlanExecutor:
    """Executor factory used by the CLI and experiment configs."""
    if name == "serial":
        return SerialExecutor()
    if name == "threads":
        return ThreadPoolPlanExecutor(max_workers=max_workers)
    raise EstimationError(
        f"unknown executor {name!r}; known: ['serial', 'threads']")
