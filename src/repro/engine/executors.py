"""Pluggable executors for independent plan units.

The engine reduces a plan to a flat list of
:class:`~repro.engine.units.PlanUnit` work items (one per (node, trial))
whose results are order-aligned with the list; an executor's only job is
to run them all against a :class:`~repro.engine.units.UnitContext` and
return results *in input order*. Because every unit's randomness was
resolved at plan time and shared state (sample cache, index cache) is
single-flight, all three executors produce byte-identical estimates —
the determinism property suite locks that in.

Four executors exist:

* :class:`SerialExecutor` — one unit after another, calling thread;
* :class:`ThreadPoolPlanExecutor` — overlap in one process; useful when
  units spend time in numpy, limited by the GIL on the byte-level
  compression loops;
* :class:`ProcessPoolPlanExecutor` — true parallelism for
  compress-heavy batches. Units are pickled to worker processes (the
  whole unit list is serialized *once*, so a table shared by many units
  ships once and keeps shared identity inside each worker); each worker
  runs a private sample cache and returns its stats deltas for the
  parent to merge;
* :class:`~repro.engine.remote.RemotePlanExecutor` — shards units
  across long-lived worker *processes-as-hosts* over a socket
  protocol, with cost-model LPT scheduling, work stealing, and
  degradation to the local process pool (see
  :mod:`repro.engine.remote`).
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import os
import pickle
from concurrent.futures.process import BrokenProcessPool
from typing import Protocol, Sequence

from repro.errors import EstimationError
from repro.faults import injector_from_env
from repro.engine.samples import EngineStats, SampleCache
from repro.engine.units import (PlanUnit, UnitContext, _note_degraded,
                                deadline_failure, run_plan_unit)
from repro.obs import NULL_TRACER, SpanContext, Tracer


class PlanExecutor(Protocol):
    """Anything that can run a list of units and keep their order."""

    name: str

    def run(self, units: Sequence[PlanUnit],
            context: UnitContext | None = None) -> list:
        """Execute all units; result ``i`` corresponds to unit ``i``."""
        ...  # pragma: no cover - protocol


class SerialExecutor:
    """Run units one after another on the calling thread."""

    name = "serial"

    def run(self, units: Sequence[PlanUnit],
            context: UnitContext | None = None) -> list:
        if context is None or context.deadline is None:
            return [unit(context) for unit in units]
        # Deadline granularity is the unit boundary: a unit that
        # started gets to finish (its result is already paid for);
        # units past the budget become typed failures, never raises.
        return [deadline_failure(unit, context)
                if context.deadline.expired else unit(context)
                for unit in units]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "SerialExecutor()"


class ThreadPoolPlanExecutor:
    """Run units on a thread pool; results return in unit order.

    Estimation units spend much of their time in numpy sampling and
    byte-level compression loops, so modest pools already overlap
    usefully; correctness never depends on the worker count.
    """

    name = "threads"

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is not None and max_workers <= 0:
            raise EstimationError(
                f"need a positive worker count, got {max_workers}")
        self.max_workers = max_workers or min(8, (os.cpu_count() or 2))

    def run(self, units: Sequence[PlanUnit],
            context: UnitContext | None = None) -> list:
        # Pool threads have no open spans, so when tracing they must
        # re-attach under the caller's current span (engine.execute)
        # or every unit span would float at the trace root.
        parent = (context.tracer.current_context()
                  if context is not None and context.tracer.enabled
                  else None)
        with concurrent.futures.ThreadPoolExecutor(
                max_workers=self.max_workers) as pool:
            if context is not None and context.deadline is not None:
                futures = [pool.submit(_run_checked, unit, context,
                                       parent) for unit in units]
            elif parent is not None:
                futures = [pool.submit(_run_attached, unit, context,
                                       parent) for unit in units]
            else:
                futures = [pool.submit(unit, context) for unit in units]
            return [future.result() for future in futures]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ThreadPoolPlanExecutor(max_workers={self.max_workers})"


def _run_attached(unit: PlanUnit, context: UnitContext,
                  parent: SpanContext) -> object:
    """Run one unit on a foreign thread, re-parented under ``parent``."""
    with context.tracer.attach(parent):
        return unit(context)


def _run_checked(unit: PlanUnit, context: UnitContext,
                 parent: SpanContext | None) -> object:
    """The deadline-aware pool-thread entry: skip past-budget units."""
    assert context.deadline is not None
    if context.deadline.expired:
        return deadline_failure(unit, context)
    if parent is not None:
        return _run_attached(unit, context, parent)
    return unit(context)


# ----------------------------------------------------------------------
# Process pool
# ----------------------------------------------------------------------
#: Per-worker-process unit list, installed once by the pool initializer.
_WORKER_UNITS: tuple[PlanUnit, ...] = ()
#: Per-worker-process runtime state (private cache + local counters).
_WORKER_CONTEXT: UnitContext | None = None
#: Per-worker-process span collector; ``None`` when the batch is
#: untraced (the common case — workers then skip trace plumbing
#: entirely and return two-element results).
_WORKER_TRACER: Tracer | None = None


def _init_worker(blob: bytes, store_blob: bytes | None = None,
                 trace_ctx: SpanContext | None = None) -> None:
    """Pool initializer: install this worker's units and context.

    The unit list arrives as one pre-pickled blob so sources shared by
    many units (the same Table object) deserialize to *one* object per
    worker — which is what keeps the worker's identity-keyed sample
    cache effective. When the parent engine has a persistent store, its
    handle ships too (a store pickles as its configuration and reopens
    on the same directory), so all workers share one disk tier instead
    of private cold caches — a sample any worker materializes is a disk
    hit for every other worker, and for every later run.

    When the parent batch is traced, ``trace_ctx`` carries the parent
    span's identity: this worker's spans buffer in a collector rooted
    under it and ship home with each unit result, where the parent
    tracer adopts them (see :meth:`repro.obs.Tracer.adopt`).
    """
    global _WORKER_UNITS, _WORKER_CONTEXT, _WORKER_TRACER
    _WORKER_UNITS = tuple(pickle.loads(blob))
    store = pickle.loads(store_blob) if store_blob is not None else None
    _WORKER_TRACER = (Tracer.collector(trace_ctx)
                      if trace_ctx is not None else None)
    # Workers arm their own injector from REPRO_FAULT_PLAN (inherited
    # with the environment), counting hook invocations process-locally
    # — which is how chaos plans reach pool workers without widening
    # the initializer protocol.
    _WORKER_CONTEXT = UnitContext(cache=SampleCache(),
                                  stats=EngineStats(), store=store,
                                  tracer=_WORKER_TRACER
                                  if _WORKER_TRACER is not None
                                  else NULL_TRACER,
                                  injector=injector_from_env())


def _run_worker_unit(position: int) -> tuple:
    """Run one unit in a worker; returns (estimate, stats delta[, spans]).

    Workers are single-threaded, so a before/after snapshot of the
    worker-local stats is an exact per-unit delta. Traced workers
    append a third element: the span records this unit produced.
    """
    context = _WORKER_CONTEXT
    assert context is not None, "worker initializer did not run"
    if context.injector.enabled and \
            context.injector.fire("pool.unit") is not None:
        # Simulated hard worker death. Only workers check this site —
        # the parent's rerun path must stay immune so a crash plan can
        # never take down the test process itself.
        os._exit(33)
    before = context.stats.snapshot()
    estimate = run_plan_unit(_WORKER_UNITS[position], context)
    delta = EngineStats.delta(before, context.stats.snapshot())
    if _WORKER_TRACER is not None:
        return estimate, delta, _WORKER_TRACER.drain()
    return estimate, delta


class ProcessPoolPlanExecutor:
    """Run units on a process pool; results return in unit order.

    This is the executor for compress-heavy advisor batches: the
    byte-level compression loops are pure Python, so a thread pool is
    GIL-bound while processes parallelize for real. Requirements and
    behaviour:

    * units must be picklable (Table/HeapFile serialize via their
      heaps; plan seeds are plain ints) — the whole unit list is
      pickled **once** and shipped to each worker by the pool
      initializer, so shared sources ship once, not per unit;
    * units with opaque ``Generator`` seeds run in the parent process
      instead (pickling would fork the generator's stream and silently
      decouple it from the caller's object);
    * each worker keeps a private in-memory sample cache; when the
      engine has a persistent :class:`~repro.store.store.SampleStore`,
      workers share it as a common disk tier (one worker materializes,
      the rest — and later runs — hit disk). Estimates stay
      byte-identical to the serial executor either way because all
      randomness was resolved at plan time. Worker stats deltas are
      merged into the batch's counters, so reuse accounting stays
      truthful (hit counts depend on how units land on workers).
    """

    name = "process"

    def __init__(self, max_workers: int | None = None,
                 start_method: str | None = None) -> None:
        if max_workers is not None and max_workers <= 0:
            raise EstimationError(
                f"need a positive worker count, got {max_workers}")
        self.max_workers = max_workers or min(8, (os.cpu_count() or 2))
        if start_method is not None and \
                start_method not in multiprocessing.get_all_start_methods():
            raise EstimationError(
                f"unknown start method {start_method!r}; known: "
                f"{multiprocessing.get_all_start_methods()}")
        self.start_method = start_method

    def run(self, units: Sequence[PlanUnit],
            context: UnitContext | None = None) -> list:
        units = list(units)
        for unit in units:
            if not isinstance(unit, PlanUnit):
                raise EstimationError(
                    "the process executor ships PlanUnit objects to "
                    f"workers; got {type(unit).__name__}")
        if context is None:
            context = UnitContext(cache=SampleCache(8),
                                  stats=EngineStats())
        results: list = [None] * len(units)
        remote = [position for position, unit in enumerate(units)
                  if not unit.request.seed_is_opaque()]
        if remote:
            self._run_remote(units, remote, results, context)
        for position, unit in enumerate(units):
            if unit.request.seed_is_opaque():
                if context.deadline is not None and \
                        context.deadline.expired:
                    results[position] = deadline_failure(unit, context)
                else:
                    results[position] = run_plan_unit(unit, context)
        return results

    def _run_remote(self, units: list[PlanUnit], remote: list[int],
                    results: list, context: UnitContext) -> None:
        shipped = [units[position] for position in remote]
        try:
            blob = pickle.dumps(tuple(shipped),
                                protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise EstimationError(
                f"plan units are not picklable for process execution: "
                f"{exc}") from exc
        store_blob = (pickle.dumps(context.store,
                                   protocol=pickle.HIGHEST_PROTOCOL)
                      if context.store is not None else None)
        mp_context = multiprocessing.get_context(self.start_method)
        workers = min(self.max_workers, len(shipped))
        tracer = context.tracer
        with tracer.span("pool.run", workers=workers,
                         units=len(shipped)) as pool_span:
            initargs: tuple = (blob, store_blob)
            if tracer.enabled:
                # Worker spans re-parent under this pool.run span: its
                # context ships via the initializer, collectors return
                # per-unit records, and the parent adopts them here.
                initargs = (blob, store_blob, pool_span.context)
            with concurrent.futures.ProcessPoolExecutor(
                    max_workers=workers, mp_context=mp_context,
                    initializer=_init_worker,
                    initargs=initargs) as pool:
                futures = [pool.submit(_run_worker_unit, j)
                           for j in range(len(shipped))]
                rerun = self._collect(units, remote, futures,
                                      results, context, tracer)
            if rerun:
                # A dead worker breaks the whole pool, so every unit
                # it owed comes home at once; reruns happen here in
                # the parent where the crash site is never armed, and
                # produce bit-identical values (all randomness was
                # resolved at plan time).
                context.stats.add("pool_worker_deaths")
                for position in rerun:
                    unit = units[position]
                    if context.deadline is not None and \
                            context.deadline.expired:
                        results[position] = deadline_failure(unit,
                                                             context)
                        continue
                    context.stats.add("pool_degraded_units")
                    _note_degraded(context, unit, "pool_worker_death")
                    results[position] = run_plan_unit(unit, context)

    def _collect(self, units: list[PlanUnit], remote: list[int],
                 futures: list, results: list, context: UnitContext,
                 tracer: Tracer) -> list[int]:
        """Drain worker futures; return positions owed by dead workers.

        Three non-happy paths, each a *typed* outcome instead of an
        executor-level raise: a past-deadline future becomes a
        :class:`~repro.engine.units.UnitFailure`, a broken pool queues
        the position for a parent-side rerun, and worker-side
        degradations (visible in the exact per-unit stats delta) mark
        the unit degraded in the parent's context.
        """
        rerun: list[int] = []
        for position, future in zip(remote, futures):
            try:
                if context.deadline is None:
                    payload = future.result()
                elif context.deadline.expired and not future.done():
                    future.cancel()
                    results[position] = deadline_failure(
                        units[position], context)
                    continue
                else:
                    payload = future.result(
                        timeout=max(context.deadline.remaining(), 0.0))
            except concurrent.futures.TimeoutError:
                future.cancel()
                results[position] = deadline_failure(units[position],
                                                     context)
                continue
            except BrokenProcessPool:
                rerun.append(position)
                continue
            estimate, delta, *extra = payload
            results[position] = estimate
            context.stats.merge(delta)
            if delta.get("degraded_units") and \
                    context.degraded is not None:
                context.degraded.add(units[position].index)
            if extra:
                tracer.adopt(extra[0])
        return rerun

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ProcessPoolPlanExecutor("
                f"max_workers={self.max_workers}, "
                f"start_method={self.start_method!r})")


#: Accepted spellings per executor (CLI flags, batch specs, configs).
_EXECUTOR_ALIASES = {
    "serial": "serial",
    "thread": "threads",
    "threads": "threads",
    "process": "process",
    "processes": "process",
    "remote": "remote",
}

#: Every name :func:`make_executor` accepts — the CLI derives its
#: ``--executor`` choices from this so the two can never drift.
EXECUTOR_NAMES = tuple(sorted(_EXECUTOR_ALIASES))


def make_executor(name: str, max_workers: int | None = None,
                  workers: str | Sequence | None = None,
                  ) -> PlanExecutor:
    """Executor factory used by the CLI and experiment configs.

    ``workers`` is the remote executor's address list (``"host:port,
    host:port"`` or pairs); when omitted, ``"remote"`` reads the
    ``REPRO_REMOTE_WORKERS`` environment variable — which is what lets
    plain string executor names (batch specs, ``engine_sweep``
    arguments) reach remote workers without new plumbing.
    """
    canonical = _EXECUTOR_ALIASES.get(name)
    if canonical == "serial":
        return SerialExecutor()
    if canonical == "threads":
        return ThreadPoolPlanExecutor(max_workers=max_workers)
    if canonical == "process":
        return ProcessPoolPlanExecutor(max_workers=max_workers)
    if canonical == "remote":
        from repro.engine.remote import RemotePlanExecutor  # lazy: cycle

        return RemotePlanExecutor(workers=workers,
                                  max_local_workers=max_workers)
    raise EstimationError(
        f"unknown executor {name!r}; known: "
        f"['serial', 'threads', 'process', 'remote']")
