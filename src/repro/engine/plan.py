"""Planning: canonicalize a request batch into a deduplicated DAG.

``plan_batch`` turns a sequence of :class:`EstimationRequest` objects
into an :class:`EstimationPlan`:

1. **Dedupe** — requests with identical canonical identity collapse
   into one :class:`PlanNode`; every original batch position keeps a
   pointer to its node, so results fan back out in submission order.
2. **Seed resolution** — every (node, trial) gets a concrete seed
   *at plan time*, derived only from content (master seed, source
   shape, sampler, fraction, trial number) — never from submission
   order or object identity. This is what makes execution
   deterministic under any executor and any request order.
3. **Sharing keys** — every (node, trial) gets the cache key of the
   sample it will draw. Nodes that differ only in column set or
   algorithm produce equal keys, which is where one materialized
   sample per (table, fraction, trial) gets shared across all
   candidates (the shared-sample trick of compression-aware physical
   design tools).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.errors import EstimationError
from repro.engine.requests import (EstimationRequest, as_requests,
                                   derive_seed, sampler_key,
                                   source_cache_key)


@dataclass(frozen=True)
class PlanNode:
    """One deduplicated request with fully resolved per-trial seeds."""

    request: EstimationRequest
    #: Positions in the original batch that map to this node.
    positions: tuple[int, ...]
    #: One resolved seed per trial (ints, or a Generator when opaque).
    trial_seeds: tuple
    #: One sample-cache key per trial; ``None`` entries are uncacheable.
    sample_keys: tuple
    #: Whether this node's samples may be cached and shared.
    cacheable: bool

    @property
    def trials(self) -> int:
        return self.request.trials


@dataclass(frozen=True)
class EstimationPlan:
    """A canonicalized, executable batch."""

    nodes: tuple[PlanNode, ...]
    num_requests: int
    master_seed: int

    @property
    def num_unique(self) -> int:
        return len(self.nodes)

    @property
    def num_units(self) -> int:
        """Total (node, trial) execution units."""
        return sum(node.trials for node in self.nodes)

    @property
    def num_distinct_samples(self) -> int:
        """Samples that will be materialized (cache-cold)."""
        keys = set()
        uncacheable = 0
        for node in self.nodes:
            for key in node.sample_keys:
                if key is None:
                    uncacheable += 1
                else:
                    keys.add(key)
        return len(keys) + uncacheable

    @property
    def num_index_layouts(self) -> int:
        """Distinct sample indexes the table-path nodes will build."""
        layouts = set()
        for node in self.nodes:
            request = node.request
            if not request.is_table:
                continue
            for key in node.sample_keys:
                layouts.add((key, request.columns, request.kind.value,
                             request.page_size,
                             float(request.fill_factor)))
        return len(layouts)

    def describe(self) -> str:
        """One-paragraph human summary (CLI/debugging)."""
        return (f"plan: {self.num_requests} requests -> "
                f"{self.num_unique} unique nodes, "
                f"{self.num_units} trial units, "
                f"{self.num_distinct_samples} samples to materialize, "
                f"{self.num_index_layouts} sample indexes to build")


def resolve_trial_seeds(request: EstimationRequest,
                        master_seed: int) -> tuple:
    """Concrete per-trial seeds for one request.

    * opaque Generator seed — passed through (single trial, enforced);
    * explicit int seed — trial 0 uses it verbatim (bit-compatibility
      with single-call SampleCF), later trials derive from it;
    * no seed — all trials derive from the master seed and the
      request's *sample scope* only, so same-scope requests share
      samples trial-by-trial regardless of columns or algorithm.
    """
    if request.seed_is_opaque():
        return (request.seed,)
    if request.seed is not None:
        base = int(request.seed)
        return tuple(
            base if trial == 0
            else derive_seed("explicit-trial", base, trial)
            for trial in range(request.trials))
    scope = request.sample_scope()
    return tuple(derive_seed("engine-trial", master_seed, scope, trial)
                 for trial in range(request.trials))


def expand_trials(request: EstimationRequest,
                  master_seed: int) -> tuple[EstimationRequest, ...]:
    """Split a multi-trial request into per-trial requests, seed-exact.

    Trial ``j`` of the returned tuple is a single-trial request whose
    explicit integer seed is exactly what :func:`resolve_trial_seeds`
    would assign trial ``j`` of the original request under
    ``master_seed``. Because a unit's execution depends only on the
    request content and its resolved seed — and the sample-cache /
    store keys are derived from the same pair — executing any subset
    of the expansion, in any batch composition, on any executor,
    reproduces the corresponding trials of the full request bit for
    bit and still shares samples with same-scope requests.

    This is the engine's incremental-execution primitive: the what-if
    advisor uses it to run trials ``[t, t')`` of a candidate only when
    its confidence interval is still too wide to decide the greedy
    round, without ever re-running trials ``[0, t)``.
    """
    if request.seed_is_opaque():
        raise EstimationError(
            "a Generator-seeded request has one unsplittable trial")
    seeds = resolve_trial_seeds(request, master_seed)
    return tuple(
        replace(request, trials=1, seed=int(seed)) for seed in seeds)


def plan_batch(requests: Sequence[EstimationRequest],
               master_seed: int) -> EstimationPlan:
    """Canonicalize, dedupe, and seed a batch of requests."""
    requests = as_requests(requests)
    order: list[tuple] = []
    positions: dict[tuple, list[int]] = {}
    by_key: dict[tuple, EstimationRequest] = {}
    for position, request in enumerate(requests):
        key = request.node_key()
        if key not in positions:
            order.append(key)
            positions[key] = []
            by_key[key] = request
        positions[key].append(position)
    nodes = []
    for key in order:
        request = by_key[key]
        trial_seeds = resolve_trial_seeds(request, master_seed)
        cacheable = not request.seed_is_opaque()
        if cacheable:
            source = source_cache_key(request)
            skey = sampler_key(request.sampler)
            sample_keys = tuple(
                (source, skey, float(request.fraction), seed)
                for seed in trial_seeds)
        else:
            sample_keys = (None,) * len(trial_seeds)
        nodes.append(PlanNode(request=request,
                              positions=tuple(positions[key]),
                              trial_seeds=trial_seeds,
                              sample_keys=sample_keys,
                              cacheable=cacheable))
    return EstimationPlan(nodes=tuple(nodes), num_requests=len(requests),
                          master_seed=master_seed)
