"""Batch estimation requests and their canonical identities.

An :class:`EstimationRequest` is one "estimate the CF of this candidate"
job: a source (a :class:`~repro.storage.table.Table` or a
:class:`~repro.core.cf_models.ColumnHistogram`), a column set, a
compression algorithm, a sampling fraction, a trial count, and an
optional explicit seed. Requests are plain descriptions — all execution
lives in :class:`~repro.engine.engine.EstimationEngine`.

Canonicalization is what makes batches cheap: two requests that would
draw the *same* sample (same source, sampler, fraction, seed) share one
:class:`~repro.engine.samples.MaterializedSample`, and two requests that
additionally probe the same column set share one built sample index.
The key functions below define those equivalences.

Two kinds of key exist on purpose:

* **cache keys** include the source object itself (identity hashing)
  so a cached sample is never reused for a different object that
  merely looks alike, and the source stays alive while cached;
* **seed scopes** are content-only (no ``id``), so deriving trial seeds
  from them is reproducible across runs that rebuild identical sources.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from repro.constants import DEFAULT_PAGE_SIZE
from repro.errors import EstimationError, SamplingError
from repro.sampling.base import RowSampler
from repro.sampling.block import BlockSampler
from repro.sampling.rng import SeedLike
from repro.sampling.row_samplers import WithReplacementSampler
from repro.storage.index import Accounting, IndexKind
from repro.storage.table import Table
from repro.compression.base import CompressionAlgorithm
from repro.compression.registry import get_algorithm
from repro.core.cf_models import ColumnHistogram

#: Upper bound (exclusive) for all derived integer seeds.
SEED_SPACE = 2 ** 63 - 1


def derive_seed(*parts: object) -> int:
    """A stable 62-bit seed from arbitrary hashable description parts.

    Uses SHA-256 over the parts' string forms, so the derivation is
    independent of Python's per-process hash randomisation and of object
    identity — the property the engine's determinism guarantee rests on.
    """
    text = "\x1f".join(str(part) for part in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % SEED_SPACE


def sampler_key(sampler: RowSampler | BlockSampler) -> tuple:
    """Canonical identity of a sampler: class plus constructor state."""
    state = tuple(sorted((name, repr(value))
                         for name, value in vars(sampler).items()))
    return (type(sampler).__name__, state)


def algorithm_key(algorithm: CompressionAlgorithm) -> tuple:
    """Canonical identity of an algorithm instance: class plus config."""
    state = tuple(sorted((name, repr(value))
                         for name, value in vars(algorithm).items()))
    return (type(algorithm).__name__, algorithm.name, state)


def source_cache_key(request: "EstimationRequest") -> tuple:
    """Identity of the request's source for *caching* (object-bound).

    The source object itself is part of the key: Table and
    ColumnHistogram hash by identity, and keeping the object (rather
    than its ``id()``) referenced from cache keys guarantees a recycled
    memory address can never alias a dead source's cached sample.
    ``num_rows`` additionally invalidates table entries after inserts.
    """
    if request.table is not None:
        return ("table", request.table, request.table.num_rows)
    return ("histogram", request.histogram)


def source_seed_scope(request: "EstimationRequest") -> tuple:
    """Identity of the source for *seed derivation* (content-bound).

    Deliberately excludes ``id()`` so a rebuilt-but-identical workload
    replays to the same derived seeds; collisions between same-shaped
    sources merely make them share sample randomness, which keeps paired
    comparisons across candidates noise-free (the Kimura et al. trick).
    """
    if request.table is not None:
        table = request.table
        return ("table", table.name, table.num_rows, table.page_size,
                tuple(column.name for column in table.schema.columns))
    histogram = request.histogram
    return ("histogram", histogram.n, len(histogram.values),
            histogram.dtype.name)


@dataclass(frozen=True)
class EstimationRequest:
    """One CF-estimation job inside a batch.

    Exactly one of ``table`` / ``histogram`` must be given. The table
    path runs the literal Figure 2 algorithm (sample rows, build an
    index on ``columns``, compress it); the histogram path runs the
    closed-form model and ignores ``columns`` / ``kind`` / ``repack``.
    """

    table: Table | None = None
    histogram: ColumnHistogram | None = None
    columns: tuple[str, ...] = ()
    algorithm: CompressionAlgorithm | str = "null_suppression"
    fraction: float = 0.01
    trials: int = 1
    seed: SeedLike = None
    kind: IndexKind = IndexKind.CLUSTERED
    sampler: RowSampler | BlockSampler | None = None
    accounting: Accounting = "payload"
    repack: bool = False
    page_size: int = DEFAULT_PAGE_SIZE
    fill_factor: float = 1.0
    record_bytes: int | None = None
    label: str | None = None

    def __post_init__(self) -> None:
        if (self.table is None) == (self.histogram is None):
            raise EstimationError(
                "a request needs exactly one of table= or histogram=")
        if isinstance(self.algorithm, str):
            object.__setattr__(self, "algorithm",
                               get_algorithm(self.algorithm))
        if self.sampler is None:
            object.__setattr__(self, "sampler", WithReplacementSampler())
        object.__setattr__(self, "columns", tuple(self.columns))
        if self.table is not None and not self.columns:
            raise EstimationError(
                "a table request needs the index key columns")
        if self.histogram is not None:
            if isinstance(self.sampler, BlockSampler):
                raise SamplingError(
                    "block sampling depends on the physical layout; "
                    "histogram requests model tuple sampling only")
            if self.accounting != "payload":
                raise EstimationError(
                    "the histogram path models payload accounting only")
        if not 0.0 < self.fraction <= 1.0:
            raise SamplingError(
                f"sampling fraction must be in (0, 1], got {self.fraction}")
        if self.trials <= 0:
            raise EstimationError(
                f"need a positive trial count, got {self.trials}")
        if isinstance(self.seed, np.random.Generator) and self.trials > 1:
            raise EstimationError(
                "a Generator seed is stateful; multi-trial requests need "
                "an int seed (or None) so trials can be derived")

    # ------------------------------------------------------------------
    # Canonical identities
    # ------------------------------------------------------------------
    @property
    def is_table(self) -> bool:
        return self.table is not None

    def seed_is_opaque(self) -> bool:
        """Whether the seed is a stateful Generator (uncacheable)."""
        return isinstance(self.seed, np.random.Generator)

    def sample_scope(self) -> tuple:
        """What the drawn sample depends on — excludes columns/algorithm.

        Requests with equal sample scopes (and equal resolved seeds)
        share one materialized sample; this is the whole point of batch
        execution.
        """
        return (source_seed_scope(self), sampler_key(self.sampler),
                float(self.fraction))

    def node_key(self) -> tuple:
        """Full canonical identity used to deduplicate requests."""
        if self.seed_is_opaque():
            seed_part: object = ("opaque", id(self.seed))
        else:
            seed_part = self.seed
        return (source_cache_key(self), self.columns,
                algorithm_key(self.algorithm), float(self.fraction),
                self.trials, seed_part, self.kind.value,
                sampler_key(self.sampler), self.accounting, self.repack,
                self.page_size, float(self.fill_factor), self.record_bytes)

    def with_trials(self, trials: int) -> "EstimationRequest":
        """A copy of this request with a different trial count."""
        return replace(self, trials=trials)


@dataclass(frozen=True)
class RequestResult:
    """Per-request outcome: one estimate per trial, in trial order."""

    request: EstimationRequest
    estimates: tuple = ()

    @property
    def values(self) -> np.ndarray:
        """Trial estimates as a float array."""
        return np.asarray([e.estimate for e in self.estimates],
                          dtype=np.float64)

    @property
    def mean(self) -> float:
        return float(self.values.mean())

    @property
    def estimate(self) -> float:
        """The single-trial estimate (requires ``trials == 1``)."""
        if len(self.estimates) != 1:
            raise EstimationError(
                f"request ran {len(self.estimates)} trials; "
                "use .values/.mean")
        return self.estimates[0].estimate


@dataclass(frozen=True)
class BatchResult:
    """Outcome of one :meth:`EstimationEngine.execute` call."""

    results: tuple[RequestResult, ...]
    #: Engine stats delta attributable to this batch.
    stats: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, position: int) -> RequestResult:
        return self.results[position]


#: Legal per-unit statuses in a :class:`PartialBatchResult`.
UNIT_STATUSES = frozenset({"done", "degraded", "deadline_exceeded"})


@dataclass(frozen=True)
class UnitOutcome:
    """Accounting entry for one (node, trial) unit of a bounded run.

    ``done`` means the unit ran cleanly; ``degraded`` means it ran and
    produced a correct value but took a degradation path on the way
    (store retry exhausted, worker died and the parent re-ran it, ...);
    ``deadline_exceeded`` means the unit never ran — its batch budget
    was spent first — so its node has no value.
    """

    index: int
    trial: int
    status: str
    detail: str = ""

    def __post_init__(self) -> None:
        if self.status not in UNIT_STATUSES:
            raise EstimationError(
                f"unknown unit status {self.status!r}; known: "
                f"{sorted(UNIT_STATUSES)}")


@dataclass(frozen=True)
class PartialBatchResult:
    """Outcome of a deadline-bounded :meth:`EstimationEngine.execute`.

    The accounting contract: ``outcomes`` holds exactly one entry per
    submitted plan unit — done, degraded, or deadline-exceeded — so no
    unit is ever silently lost. A request whose node lost any trial to
    the deadline gets ``None`` in ``results`` (a partial trial set
    would silently change the mean); every completed request's value is
    bit-identical to an unbounded run's.
    """

    results: tuple[RequestResult | None, ...]
    outcomes: tuple[UnitOutcome, ...]
    #: Engine stats delta attributable to this batch.
    stats: dict = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        """Whether every submitted unit actually ran."""
        return all(outcome.status != "deadline_exceeded"
                   for outcome in self.outcomes)

    def counts(self) -> dict[str, int]:
        """Outcome tally by status (all statuses always present)."""
        tally = {status: 0 for status in sorted(UNIT_STATUSES)}
        for outcome in self.outcomes:
            tally[outcome.status] += 1
        return tally

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, position: int) -> RequestResult | None:
        return self.results[position]


def as_requests(items: Sequence[EstimationRequest],
                ) -> tuple[EstimationRequest, ...]:
    """Validate a request sequence (helpful error for stray inputs)."""
    requests = tuple(items)
    for item in requests:
        if not isinstance(item, EstimationRequest):
            raise EstimationError(
                f"batch items must be EstimationRequest, got "
                f"{type(item).__name__}")
    if not requests:
        raise EstimationError("an estimation batch needs at least one "
                              "request")
    return requests
