"""Remote plan execution: shard units across worker processes-as-hosts.

The engine already reduces every batch to a flat list of picklable
:class:`~repro.engine.units.PlanUnit` objects whose randomness was
resolved at plan time, and the persistent
:class:`~repro.store.store.SampleStore` already makes concurrent
cross-process materialization single-flight. This module adds the last
scale-out piece from the ROADMAP: a :class:`RemotePlanExecutor` that
ships each shard's unit sublist once to a long-lived worker process
(``repro worker serve --store-dir ...``) over a length-prefixed socket
protocol, and merges order-tagged results plus
:class:`~repro.engine.samples.EngineStats` deltas back in the parent.

Scheduling is the perf core:

* a :class:`UnitCostModel` predicts per-unit cost from the sample row
  count (``rows_for_fraction(n, f)``) times an algorithm-class weight,
  and calibrates itself from observed per-unit worker timings (an EMA
  of seconds per predicted cost unit, per algorithm);
* predicted costs feed an LPT (longest-processing-time-first) shard
  assignment (:func:`lpt_assign`), with :func:`round_robin_assign` as
  the measurable baseline;
* dispatch is chunked and pull-based: a worker whose queue drains
  steals half of the largest remaining victim queue, so one straggler
  host cannot serialize the batch's tail.

Robustness is part of the contract: a socket timeout or dead worker
marks the link failed, its undispatched and in-flight units return to
a shared pool that surviving workers drain (retry-on-fresh-worker),
and when no worker is reachable at all the executor degrades to the
local process pool. Results stay bit-identical to
:class:`~repro.engine.executors.SerialExecutor` throughout — the
determinism property suite asserts it, including mid-run worker death.

Wire protocol (one 8-byte big-endian length prefix per pickled frame):

=============================  =======================================
parent -> worker               worker -> parent
=============================  =======================================
``("ping",)``                  ``("pong", info_dict)``
``("install", blob, store)``   ``("installed", count)``
``("run", positions)``         ``("results", [(pos, est, sec), ...],
                               stats_delta)``
``("shutdown",)``              ``("bye",)``
=============================  =======================================

``install`` may repeat on one connection (work stealing appends to the
worker's unit table); each unit therefore ships at most twice — once to
its LPT home, once more if stolen or reassigned after a failure.

Traced batches extend ``run`` with an optional third element — the
parent ``chunk.run`` span's :class:`~repro.obs.SpanContext` — and the
worker then appends a fourth ``results`` element: the span records its
units produced, rooted under that context (the parent adopts them into
its trace). Untraced frames keep the exact three/two-element shapes
above, so old parents and workers interoperate.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import socket
import struct
import subprocess
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import EstimationError
from repro.faults import (CircuitBreaker, FaultInjector, NullInjector,
                          injector_from_env)
from repro.sampling.base import rows_for_fraction
from repro.engine.samples import EngineStats, SampleCache
from repro.engine.units import (PlanUnit, UnitContext, _note_degraded,
                                deadline_failure, run_plan_unit)
from repro.obs import SpanContext, Tracer

#: Environment variable ``make_executor("remote")`` reads worker
#: addresses from (comma-separated ``host:port`` pairs), so string
#: executor names keep working everywhere an ``executor=`` reaches.
REMOTE_WORKERS_ENV = "REPRO_REMOTE_WORKERS"

_LENGTH = struct.Struct(">Q")

#: Refuse frames above this size — a corrupt length prefix must not
#: trigger a multi-terabyte allocation.
MAX_FRAME_BYTES = 1 << 34


# ----------------------------------------------------------------------
# Frame protocol
# ----------------------------------------------------------------------
def send_frame(sock: socket.socket, message: object) -> None:
    """Send one length-prefixed pickled frame."""
    blob = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_LENGTH.pack(len(blob)) + blob)


def recv_frame(sock: socket.socket) -> object | None:
    """Receive one frame; ``None`` on a clean EOF at a frame boundary."""
    header = _recv_exact(sock, _LENGTH.size, allow_eof=True)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise EstimationError(
            f"remote frame of {length} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit (corrupt stream?)")
    return pickle.loads(_recv_exact(sock, length))


def _recv_exact(sock: socket.socket, count: int,
                allow_eof: bool = False) -> bytes | None:
    parts = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if allow_eof and remaining == count:
                return None
            raise ConnectionError("remote peer closed mid-frame")
        parts.append(chunk)
        remaining -= len(chunk)
    return b"".join(parts)


# ----------------------------------------------------------------------
# Cost model
# ----------------------------------------------------------------------
#: Relative per-sampled-row cost by algorithm class, measured against
#: trailing-mode NS (= 1.0) on the canonical clustered CHAR index.
#: These only order the LPT assignment; calibration refines the scale.
ALGORITHM_WEIGHTS = {
    "page": 0.6,
    "null_suppression": 1.0,
    "null_suppression_runs": 1.6,
    "rle": 1.1,
    "delta": 1.1,
    "prefix": 1.2,
    "dictionary": 1.3,
    "global_dictionary": 1.2,
}

#: Histograms estimate in closed form over ``d`` buckets, not ``r``
#: decoded rows — orders of magnitude cheaper per sampled row.
_HISTOGRAM_DISCOUNT = 0.05


class UnitCostModel:
    """Predicts a unit's execution cost; calibrates from observations.

    ``predict`` returns abstract cost units (sampled rows x algorithm
    weight) — all LPT needs is the right *ordering*. ``observe`` folds
    measured per-unit seconds into an EMA of seconds per cost unit, per
    algorithm, so ``predict_seconds`` converges on real timings across
    batches on one executor (worker replies carry per-unit seconds).
    """

    def __init__(self, ema_alpha: float = 0.2) -> None:
        if not 0.0 < ema_alpha <= 1.0:
            raise EstimationError(
                f"EMA alpha must be in (0, 1], got {ema_alpha}")
        self.ema_alpha = ema_alpha
        self._lock = threading.Lock()
        self._seconds_per_cost: dict[str, float] = {}

    @staticmethod
    def predict(unit: PlanUnit) -> float:
        request = unit.request
        if request.is_table:
            rows = rows_for_fraction(request.table.num_rows,
                                     request.fraction)
            scale = 1.0
        else:
            rows = rows_for_fraction(request.histogram.n,
                                     request.fraction)
            scale = _HISTOGRAM_DISCOUNT
        weight = ALGORITHM_WEIGHTS.get(request.algorithm.name, 1.0)
        return max(1.0, rows * scale * weight)

    def observe(self, unit: PlanUnit, seconds: float) -> None:
        if seconds <= 0:
            return
        rate = seconds / self.predict(unit)
        name = unit.request.algorithm.name
        with self._lock:
            previous = self._seconds_per_cost.get(name)
            if previous is None:
                self._seconds_per_cost[name] = rate
            else:
                self._seconds_per_cost[name] = (
                    self.ema_alpha * rate
                    + (1.0 - self.ema_alpha) * previous)

    def predict_seconds(self, unit: PlanUnit) -> float | None:
        """Calibrated wall-clock prediction; ``None`` before any data."""
        with self._lock:
            rate = self._seconds_per_cost.get(
                unit.request.algorithm.name)
            if rate is None and self._seconds_per_cost:
                rate = (sum(self._seconds_per_cost.values())
                        / len(self._seconds_per_cost))
        if rate is None:
            return None
        return rate * self.predict(unit)

    def snapshot(self) -> dict[str, float]:
        with self._lock:
            return dict(self._seconds_per_cost)


# ----------------------------------------------------------------------
# Shard assignment
# ----------------------------------------------------------------------
def lpt_assign(costs: Sequence[float], shards: int) -> list[list[int]]:
    """Longest-processing-time-first assignment to ``shards`` bins.

    Returns per-shard index lists, each ordered by descending cost (so
    chunked dispatch sends the expensive units first and the tail stays
    small). Ties break on index for determinism.
    """
    if shards <= 0:
        raise EstimationError(f"need a positive shard count, got {shards}")
    order = sorted(range(len(costs)),
                   key=lambda i: (-float(costs[i]), i))
    loads = [0.0] * shards
    out: list[list[int]] = [[] for _ in range(shards)]
    for index in order:
        shard = min(range(shards), key=lambda s: (loads[s], s))
        out[shard].append(index)
        loads[shard] += float(costs[index])
    return out


def round_robin_assign(costs: Sequence[float],
                       shards: int) -> list[list[int]]:
    """Cost-blind round-robin — the baseline LPT must beat."""
    if shards <= 0:
        raise EstimationError(f"need a positive shard count, got {shards}")
    out: list[list[int]] = [[] for _ in range(shards)]
    for index in range(len(costs)):
        out[index % shards].append(index)
    return out


SCHEDULERS: dict[str, Callable[[Sequence[float], int], list[list[int]]]] \
    = {"lpt": lpt_assign, "round_robin": round_robin_assign}


def makespan(costs: Sequence[float],
             assignment: list[list[int]]) -> float:
    """The slowest shard's summed cost under an assignment."""
    return max((sum(float(costs[i]) for i in shard)
                for shard in assignment), default=0.0)


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
class _InjectedFailure(Exception):
    """Raised by the fault-injection hook to kill a connection."""


@dataclass
class WorkerState:
    """One worker process's long-lived runtime state.

    The cache, stats, and store persist across connections (that is the
    point of a long-lived worker: its memory LRU and the shared disk
    store stay warm between batches); the per-connection unit table
    does not — positions are batch-local.
    """

    context: UnitContext = field(default_factory=lambda: UnitContext(
        cache=SampleCache(), stats=EngineStats()))
    #: Per-unit sleep of ``scale * UnitCostModel.predict(unit)``
    #: seconds before executing. A scheduler-evaluation harness knob:
    #: it emulates hosts whose service time is off-box (real CPU on a
    #: remote machine, I/O), so scaling and LPT-vs-round-robin makespan
    #: can be measured independently of the parent host's core count.
    #: Estimates are unaffected.
    simulate_cost_scale: float | None = None
    #: Fault injection: abort the connection (process workers exit)
    #: after this many executed units. Tests only.
    fail_after_units: int | None = None
    #: ``True`` in subprocess workers: injected failures hard-exit.
    exit_on_failure: bool = False
    executed_units: int = 0

    def _maybe_fail(self) -> None:
        if self.fail_after_units is None:
            return
        if self.executed_units >= self.fail_after_units:
            if self.exit_on_failure:
                os._exit(17)
            raise _InjectedFailure(
                f"injected failure after {self.executed_units} units")


def handle_connection(sock: socket.socket, state: WorkerState) -> str:
    """Serve one parent connection until EOF or shutdown.

    Factored out of the accept loop so tests can drive the full
    protocol over an in-process ``socket.socketpair()``. Returns why
    the connection ended (``"eof"`` or ``"shutdown"``).
    """
    units: dict[int, PlanUnit] = {}
    while True:
        message = recv_frame(sock)
        if message is None:
            return "eof"
        kind = message[0]
        if kind == "ping":
            send_frame(sock, ("pong", {
                "pid": os.getpid(),
                "store": (str(state.context.store.root)
                          if state.context.store is not None else None)}))
        elif kind == "install":
            _, blob, store_blob = message
            pairs = pickle.loads(blob)
            units.update(pairs)
            if store_blob is not None and state.context.store is None:
                state.context.store = pickle.loads(store_blob)
            send_frame(sock, ("installed", len(pairs)))
        elif kind == "run":
            try:
                reply = _run_positions(
                    message[1], units, state,
                    message[2] if len(message) > 2 else None)
            except KeyError as exc:
                # A protocol error, not a crash: tell the parent (it
                # buries this worker) instead of dying replyless.
                reply = ("error", f"unit position {exc} never installed")
            send_frame(sock, reply)
        elif kind == "shutdown":
            send_frame(sock, ("bye",))
            return "shutdown"
        else:
            raise EstimationError(f"unknown remote message {kind!r}")


def _run_positions(positions: Sequence[int], units: dict[int, PlanUnit],
                   state: WorkerState,
                   trace_ctx: SpanContext | None = None) -> tuple:
    context = state.context
    collector: Tracer | None = None
    if trace_ctx is not None:
        # Traced chunk: spans buffer in a per-call collector rooted
        # under the parent's chunk.run span. The shared WorkerState
        # context is replaced, not mutated — concurrent connections
        # (and untraced ones) keep their own tracer.
        collector = Tracer.collector(trace_ctx)
        context = dataclasses.replace(context, tracer=collector)
    before = context.stats.snapshot()
    out = []
    for position in positions:
        state._maybe_fail()
        unit = units[position]
        started = time.perf_counter()
        if state.simulate_cost_scale:
            time.sleep(state.simulate_cost_scale
                       * UnitCostModel.predict(unit))
        estimate = run_plan_unit(unit, context)
        out.append((position, estimate,
                    time.perf_counter() - started))
        state.executed_units += 1
    delta = EngineStats.delta(before, context.stats.snapshot())
    if collector is not None:
        return ("results", out, delta, collector.drain())
    return ("results", out, delta)


def serve(host: str = "127.0.0.1", port: int = 0,
          store: object = None,
          simulate_cost_scale: float | None = None,
          fail_after_units: int | None = None,
          exit_on_failure: bool = False,
          ready: Callable[[tuple[str, int]], None] | None = None,
          stop_event: threading.Event | None = None) -> None:
    """Run a worker loop: accept parents, serve the unit protocol.

    ``ready`` is called once with the bound ``(host, port)`` (port 0
    binds an ephemeral one). Each connection is served on its own
    thread — the shared state's cache and stats are thread-safe, and
    the store is cross-process-safe by construction.
    """
    state = WorkerState(simulate_cost_scale=simulate_cost_scale,
                        fail_after_units=fail_after_units,
                        exit_on_failure=exit_on_failure)
    if store is not None:
        from repro.store.store import open_store

        state.context.store = open_store(store)
    listener = socket.create_server((host, port))
    try:
        listener.settimeout(0.25)
        if ready is not None:
            ready(listener.getsockname()[:2])
        while stop_event is None or not stop_event.is_set():
            try:
                conn, _ = listener.accept()
            except socket.timeout:
                continue
            thread = threading.Thread(
                target=_serve_connection, args=(conn, state), daemon=True)
            thread.start()
    finally:
        listener.close()


def _serve_connection(conn: socket.socket, state: WorkerState) -> None:
    try:
        handle_connection(conn, state)
    except (_InjectedFailure, ConnectionError, OSError, EOFError):
        pass  # the parent observes the drop and reassigns
    finally:
        conn.close()


def start_worker_thread(store: object = None,
                        simulate_cost_scale: float | None = None,
                        fail_after_units: int | None = None,
                        ) -> tuple[tuple[str, int], Callable[[], None]]:
    """An in-process worker on an ephemeral port (tests, fake-remote).

    Returns ``(address, shutdown)``. The worker shares this process's
    interpreter but speaks the real socket protocol, so everything —
    framing, install/run/steal round trips, stats merging — exercises
    the production path.
    """
    box: dict[str, tuple[str, int]] = {}
    bound = threading.Event()
    stop = threading.Event()

    def ready(address: tuple[str, int]) -> None:
        box["address"] = address
        bound.set()

    thread = threading.Thread(
        target=serve,
        kwargs={"store": store,
                "simulate_cost_scale": simulate_cost_scale,
                "fail_after_units": fail_after_units,
                "ready": ready, "stop_event": stop},
        daemon=True)
    thread.start()
    if not bound.wait(timeout=10):
        raise EstimationError("worker thread failed to bind")

    def shutdown() -> None:
        stop.set()
        thread.join(timeout=5)

    return box["address"], shutdown


def spawn_local_workers(count: int, store_dir: str | os.PathLike | None
                        = None,
                        simulate_cost_scale: float | None = None,
                        fail_after_units: int | None = None,
                        ) -> tuple[list[subprocess.Popen],
                                   list[tuple[str, int]]]:
    """Spawn ``count`` worker *processes* on ephemeral localhost ports.

    The process form of :func:`start_worker_thread` — used by the
    benchmark and CLI-level tests. Each worker prints a
    ``repro-worker-ready HOST:PORT`` line once bound; this returns the
    processes plus their addresses. Callers terminate the processes
    when done.
    """
    if count <= 0:
        raise EstimationError(f"need a positive worker count, got {count}")
    import repro

    source_root = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = source_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    processes: list[subprocess.Popen] = []
    addresses: list[tuple[str, int]] = []
    try:
        for _ in range(count):
            command = [sys.executable, "-m", "repro", "worker", "serve",
                       "--host", "127.0.0.1", "--port", "0"]
            if store_dir is not None:
                command += ["--store-dir", str(store_dir)]
            if simulate_cost_scale is not None:
                command += ["--simulate-cost-scale",
                            repr(float(simulate_cost_scale))]
            if fail_after_units is not None:
                command += ["--fail-after-units", str(fail_after_units)]
            process = subprocess.Popen(
                command, env=env, stdout=subprocess.PIPE,
                stderr=subprocess.DEVNULL, text=True)
            processes.append(process)
        for process in processes:
            line = process.stdout.readline().strip()
            if not line.startswith("repro-worker-ready "):
                raise EstimationError(
                    f"worker failed to start (got {line!r})")
            host, _, port = line.split(" ", 1)[1].rpartition(":")
            addresses.append((host, int(port)))
    except Exception:
        for process in processes:
            process.terminate()
        raise
    return processes, addresses


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
def parse_worker_addresses(spec: str | Sequence | None,
                           ) -> list[tuple[str, int]]:
    """Normalize a worker spec: ``"host:port,host:port"`` or pairs.

    ``None`` (or empty) falls back to ``REPRO_REMOTE_WORKERS``; an
    empty result is allowed — the executor then runs its local
    fallback, which is the documented degradation mode.
    """
    if spec is None or (isinstance(spec, str) and not spec.strip()):
        spec = os.environ.get(REMOTE_WORKERS_ENV, "")
    if isinstance(spec, str):
        entries: Sequence = [part for part in spec.split(",")
                             if part.strip()]
    else:
        entries = spec
    addresses = []
    for entry in entries:
        if isinstance(entry, str):
            host, separator, port = entry.strip().rpartition(":")
            if not separator or not host:
                raise EstimationError(
                    f"worker address {entry!r} is not host:port")
            try:
                addresses.append((host, int(port)))
            except ValueError:
                raise EstimationError(
                    f"worker address {entry!r} has a non-integer "
                    f"port") from None
        else:
            host, port = entry
            addresses.append((str(host), int(port)))
    return addresses


class _WorkerLink:
    """One parent-held connection to a worker, plus its dispatch queue."""

    def __init__(self, address: tuple[str, int], timeout: float) -> None:
        self.address = address
        self.timeout = timeout
        self.sock: socket.socket | None = None
        self.queue: deque[int] = deque()
        self.installed: set[int] = set()
        self.store_sent = False
        self.dead = False

    def connect(self, connect_timeout: float) -> bool:
        try:
            self.sock = socket.create_connection(
                self.address, timeout=connect_timeout)
            self.sock.settimeout(self.timeout)
            send_frame(self.sock, ("ping",))
            reply = recv_frame(self.sock)
            return isinstance(reply, tuple) and reply[0] == "pong"
        except (OSError, ConnectionError, pickle.PickleError):
            self.close()
            return False

    def request(self, message: object) -> tuple:
        assert self.sock is not None
        send_frame(self.sock, message)
        reply = recv_frame(self.sock)
        if reply is None:
            raise ConnectionError(
                f"worker {self.address} closed the connection")
        return reply

    def close(self) -> None:
        if self.sock is not None:
            try:
                self.sock.close()
            finally:
                self.sock = None


class RemotePlanExecutor:
    """Shard plan units across remote worker processes.

    Parameters
    ----------
    workers:
        ``"host:port,host:port"``, a sequence of addresses, or ``None``
        to read ``REPRO_REMOTE_WORKERS``. Unreachable workers are
        skipped; with none reachable the batch runs on the local
        fallback (:class:`~repro.engine.executors.ProcessPoolPlanExecutor`).
    scheduler:
        ``"lpt"`` (default) or ``"round_robin"`` — how predicted unit
        costs map to initial shards.
    chunk_units:
        Units per ``run`` round trip. Small chunks bound the work lost
        to a dying worker and keep the stealing tail fine-grained.
    steal:
        Whether idle workers steal half of the largest remaining queue.
    timeout:
        Per-round-trip socket timeout (seconds); an expiry counts as a
        worker failure and the shard's units are reassigned.
    max_local_workers:
        Pool size for the local fallback.

    Determinism: unit randomness is resolved at plan time and workers
    funnel through the same :func:`~repro.engine.units.run_plan_unit`
    as every other executor, so results are bit-identical to
    :class:`~repro.engine.executors.SerialExecutor` no matter how the
    batch lands on workers, which workers die, or whether the fallback
    runs — only the stats accounting differs.
    """

    name = "remote"

    def __init__(self, workers: str | Sequence | None = None,
                 scheduler: str = "lpt",
                 chunk_units: int = 4,
                 steal: bool = True,
                 timeout: float = 600.0,
                 connect_timeout: float = 5.0,
                 max_local_workers: int | None = None,
                 cost_model: UnitCostModel | None = None,
                 breaker_threshold: int = 3,
                 breaker_cooldown: int = 0,
                 injector: FaultInjector | NullInjector | None = None,
                 ) -> None:
        self.addresses = parse_worker_addresses(workers)
        if scheduler not in SCHEDULERS:
            raise EstimationError(
                f"unknown scheduler {scheduler!r}; known: "
                f"{sorted(SCHEDULERS)}")
        if chunk_units <= 0:
            raise EstimationError(
                f"need a positive chunk size, got {chunk_units}")
        self.scheduler = scheduler
        self.chunk_units = chunk_units
        self.steal = steal
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self.max_local_workers = max_local_workers
        self.cost_model = cost_model or UnitCostModel()
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self.injector = (injector if injector is not None
                         else injector_from_env())
        # Links and breakers persist across batches: a live link keeps
        # its socket (and the worker keeps its warm cache/store) from
        # one run() to the next; a dead one is retried through its
        # address's circuit breaker, which is what lets a worker that
        # died and *restarted* between batches rejoin instead of
        # staying buried forever. One batch at a time per executor —
        # run() holds _batch_lock for its whole span.
        self._batch_lock = threading.Lock()
        self._links: dict[tuple[str, int], _WorkerLink] = {}
        self._breakers: dict[tuple[str, int], CircuitBreaker] = {}

    # -- public entry --------------------------------------------------
    def run(self, units: Sequence[PlanUnit],
            context: UnitContext | None = None) -> list:
        units = list(units)
        for unit in units:
            if not isinstance(unit, PlanUnit):
                raise EstimationError(
                    "the remote executor ships PlanUnit objects to "
                    f"workers; got {type(unit).__name__}")
        if context is None:
            context = UnitContext(cache=SampleCache(8),
                                  stats=EngineStats())
        results: list = [None] * len(units)
        shippable = [position for position, unit in enumerate(units)
                     if not unit.request.seed_is_opaque()]
        with self._batch_lock:
            pending = shippable
            if shippable:
                links = self._connect(context)
                if links:
                    pending = self._dispatch(units, shippable, links,
                                             results, context)
                if pending:
                    self._finish_pending(units, pending, results,
                                         context)
        # Opaque Generator seeds cannot ship (pickling would fork the
        # stream); they run in the parent, exactly like the process pool.
        for position, unit in enumerate(units):
            if unit.request.seed_is_opaque():
                if context.deadline is not None and \
                        context.deadline.expired:
                    results[position] = deadline_failure(unit, context)
                else:
                    results[position] = run_plan_unit(unit, context)
        return results

    def _finish_pending(self, units: list[PlanUnit],
                        pending: list[int], results: list,
                        context: UnitContext) -> None:
        """Resolve positions no worker completed.

        Past-deadline leftovers become typed failures; the rest run on
        the local process pool. When workers *were* configured, landing
        here means remote execution degraded — each unit is marked so
        a :class:`~repro.engine.requests.PartialBatchResult` reports it
        (values stay bit-identical either way). With no addresses at
        all the fallback is just this executor's documented local mode,
        not a degradation.
        """
        if context.deadline is not None and context.deadline.expired:
            for position in pending:
                results[position] = deadline_failure(units[position],
                                                     context)
            return
        if self.addresses:
            for position in pending:
                _note_degraded(context, units[position],
                               "remote_fallback")
        context.stats.add("remote_fallback_units", len(pending))
        self._run_local_fallback(units, pending, results, context)

    def close(self) -> None:
        """Drop all warm links and breaker history (e.g. at shutdown)."""
        with self._batch_lock:
            for link in self._links.values():
                link.close()
            self._links.clear()
            self._breakers.clear()

    # -- connection management -----------------------------------------
    def _connect(self, context: UnitContext) -> list[_WorkerLink]:
        """Collect this batch's usable links, reviving dead ones.

        Live links from the previous batch are reused as-is (socket,
        worker cache, and shipped store all stay warm). A dead or
        never-connected address goes through its circuit breaker:
        while open, the address is skipped without a connect attempt
        (``breaker_open_skips``); when the breaker half-opens, one
        probe reconnect is tried (``breaker_probes``), and on success
        (``breaker_reconnects``) the restarted worker rejoins the
        rotation — the fix for restarted workers staying buried.
        """
        links = []
        stats = context.stats
        for address in self.addresses:
            breaker = self._breakers.get(address)
            if breaker is None:
                breaker = CircuitBreaker(
                    failure_threshold=self.breaker_threshold,
                    cooldown=self.breaker_cooldown)
                self._breakers[address] = breaker
            link = self._links.get(address)
            if link is None:
                link = _WorkerLink(address, self.timeout)
                self._links[address] = link
            # Unit positions are batch-local, so a warm worker's
            # installed table from last batch is stale by numbering:
            # forget what shipped and let _ship_missing re-send. The
            # store handle, by contrast, is batch-independent.
            link.installed.clear()
            link.queue.clear()
            if link.dead or link.sock is None:
                if not breaker.allow():
                    stats.add("breaker_open_skips")
                    context.tracer.event(
                        "breaker.skip",
                        worker=f"{address[0]}:{address[1]}")
                    continue
                probing = breaker.state == "half_open"
                if probing:
                    stats.add("breaker_probes")
                link.close()
                link.dead = False
                link.store_sent = False
                if link.connect(self.connect_timeout):
                    breaker.record_success()
                    if probing:
                        stats.add("breaker_reconnects")
                        context.tracer.event(
                            "breaker.reconnect",
                            worker=f"{address[0]}:{address[1]}")
                else:
                    link.dead = True
                    breaker.record_failure()
                    continue
            links.append(link)
        return links

    # -- dispatch core -------------------------------------------------
    def _dispatch(self, units: list[PlanUnit], positions: list[int],
                  links: list[_WorkerLink], results: list,
                  context: UnitContext) -> list[int]:
        """Run ``positions`` across ``links``; returns what remains."""
        costs = {position: self.cost_model.predict(units[position])
                 for position in positions}
        assignment = SCHEDULERS[self.scheduler](
            [costs[position] for position in positions], len(links))
        for link, shard in zip(links, assignment):
            link.queue.extend(positions[index] for index in shard)
        state = _DispatchState(units=units, results=results,
                               context=context, links=links)
        tracer = context.tracer
        with tracer.span("shard.dispatch", workers=len(links),
                         units=len(positions),
                         scheduler=self.scheduler) as dispatch_span:
            parent_ctx = (dispatch_span.context if tracer.enabled
                          else None)
            threads = [threading.Thread(target=self._drive_worker,
                                        args=(link, state, parent_ctx),
                                        daemon=True)
                       for link in links]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        self._publish_calibration(state, context)
        with state.lock:
            leftover = [position for position in positions
                        if position not in state.done]
        return leftover

    def _drive_worker(self, link: _WorkerLink, state: _DispatchState,
                      parent_ctx: SpanContext | None = None) -> None:
        tracer = state.context.tracer
        worker_name = f"{link.address[0]}:{link.address[1]}"
        try:
            # Driver threads run outside the dispatching thread's span
            # stack; re-attach under shard.dispatch so chunk spans nest.
            with tracer.attach(parent_ctx):
                while True:
                    chunk = self._next_chunk(link, state)
                    if not chunk:
                        return
                    self._ship_missing(link, state, chunk)
                    with tracer.span("chunk.run", worker=worker_name,
                                     units=len(chunk)) as chunk_span:
                        if tracer.enabled:
                            reply = self._injected_request(
                                link, state,
                                ("run", chunk, chunk_span.context))
                        else:
                            reply = self._injected_request(
                                link, state, ("run", chunk))
                        if reply[0] != "results":
                            raise ConnectionError(
                                f"unexpected reply {reply[0]!r} from "
                                f"{link.address}")
                        _, rows, delta, *spans = reply
                        with state.lock:
                            for position, estimate, seconds in rows:
                                state.results[position] = estimate
                                state.done.add(position)
                                unit = state.units[position]
                                predicted = \
                                    self.cost_model.predict_seconds(unit)
                                if predicted is not None and seconds > 0:
                                    state.predicted_error_abs += abs(
                                        predicted - seconds) / seconds
                                    state.predicted_seconds += predicted
                                    state.compared_units += 1
                                state.observed_seconds += seconds
                                state.observed_units += 1
                                self.cost_model.observe(unit, seconds)
                            state.in_flight.pop(link, None)
                    if spans:
                        tracer.adopt(spans[0])
                    state.context.stats.merge(delta)
                    state.context.stats.add("remote_units", len(rows))
        except (ConnectionError, OSError, socket.timeout,
                pickle.PickleError, EstimationError):
            self._bury_worker(link, state)
        finally:
            # Only dead links close here — a live one stays warm for
            # the next batch (see _connect).
            if link.dead:
                link.close()

    def _injected_request(self, link: _WorkerLink,
                          state: _DispatchState,
                          message: object) -> tuple:
        """One ``run`` round trip, through the remote fault hooks.

        ``remote.send`` may drop (a raised ``ConnectionError`` — the
        normal burial path absorbs it) or delay the request;
        ``remote.recv`` may drop the reply after the worker already
        executed the chunk, which is the nastier case: the parent must
        re-run units whose results it never saw without double-counting
        the ones it did.
        """
        injector = self.injector
        if injector.enabled:
            spec = injector.fire("remote.send")
            if spec is not None:
                state.context.stats.add("faults_injected")
                state.context.tracer.event(
                    "fault.inject", site="remote.send", kind=spec.kind,
                    worker=f"{link.address[0]}:{link.address[1]}")
                if spec.kind == "drop":
                    raise ConnectionError(
                        f"injected remote.send drop to {link.address}")
                time.sleep(float(spec.arg))
        reply = link.request(message)
        if injector.enabled:
            spec = injector.fire("remote.recv")
            if spec is not None:
                state.context.stats.add("faults_injected")
                state.context.tracer.event(
                    "fault.inject", site="remote.recv", kind=spec.kind,
                    worker=f"{link.address[0]}:{link.address[1]}")
                raise ConnectionError(
                    f"injected remote.recv drop from {link.address}")
        return reply

    def _publish_calibration(self, state: _DispatchState,
                             context: UnitContext) -> None:
        """Expose cost-model calibration as gauges on the batch stats.

        ``cost_model.seconds_per_cost.<algorithm>`` is the EMA rate the
        model converged to; ``cost_model.mean_abs_rel_error`` is the
        mean |predicted - observed| / observed over units that had a
        prediction *before* their observation folded in — the metric
        ``bench_remote_executor`` asserts calibration quality on.
        """
        with state.lock:
            observed_units = state.observed_units
            compared = state.compared_units
            error = state.predicted_error_abs
            observed_seconds = state.observed_seconds
        if not observed_units:
            return
        stats = context.stats
        for name, rate in self.cost_model.snapshot().items():
            stats.set_gauge(f"cost_model.seconds_per_cost.{name}", rate)
        stats.set_gauge("cost_model.observed_units", observed_units)
        stats.set_gauge("cost_model.observed_seconds", observed_seconds)
        if compared:
            stats.set_gauge("cost_model.mean_abs_rel_error",
                            error / compared)
            stats.set_gauge("cost_model.compared_units", compared)
        if context.tracer.enabled:
            registry = context.tracer.metrics
            for name, value in stats.gauges().items():
                if name.startswith("cost_model."):
                    registry.gauge(name).set(value)

    def _next_chunk(self, link: _WorkerLink,
                    state: _DispatchState) -> list[int]:
        """Pop this worker's next chunk, stealing when its queue dries.

        An idle worker does not exit while any peer is still busy: a
        peer may yet die and orphan its units, and a live worker is the
        cheapest place to retry them. It polls instead of waiting on a
        condition because wake-ups are rare (a steal or a burial) and
        the poll interval is far below any unit's execution time.
        """
        while True:
            with state.lock:
                deadline = state.context.deadline
                if deadline is not None and deadline.expired:
                    # Past-budget units stay queued; run() turns every
                    # leftover into a typed deadline failure.
                    return []
                if not link.queue:
                    self._steal_into(link, state)
                if link.queue:
                    chunk = []
                    while link.queue and len(chunk) < self.chunk_units:
                        chunk.append(link.queue.popleft())
                    # Record in-flight so a mid-chunk death requeues.
                    state.in_flight[link] = list(chunk)
                    return chunk
                busy = any(
                    other is not link and not other.dead
                    and (other.queue or state.in_flight.get(other))
                    for other in state.links)
                if not busy and not state.orphans:
                    return []
            time.sleep(0.005)

    def _steal_into(self, thief: _WorkerLink,
                    state: _DispatchState) -> None:
        """Move work into an idle worker's queue (caller holds lock)."""
        thief_name = f"{thief.address[0]}:{thief.address[1]}"
        if state.orphans:
            take = min(len(state.orphans),
                       max(self.chunk_units, len(state.orphans) // 2))
            for _ in range(take):
                thief.queue.append(state.orphans.popleft())
            state.context.stats.add("remote_retried_units", take)
            state.context.tracer.event(
                "steal", thief=thief_name, source="orphans", units=take,
                orphans_left=len(state.orphans))
            return
        if not self.steal:
            return
        victim = max((link for link in state.links
                      if link is not thief and not link.dead),
                     key=lambda link: len(link.queue), default=None)
        if victim is None or len(victim.queue) < 2:
            return
        take = len(victim.queue) // 2
        for _ in range(take):
            thief.queue.append(victim.queue.pop())  # steal the tail
        state.context.stats.add("remote_steals", 1)
        state.context.tracer.event(
            "steal", thief=thief_name, source="victim",
            victim=f"{victim.address[0]}:{victim.address[1]}",
            units=take, victim_left=len(victim.queue))

    def _ship_missing(self, link: _WorkerLink, state: _DispatchState,
                      chunk: list[int]) -> None:
        """Install any chunk units this worker has not seen (one blob)."""
        missing = [position for position in chunk
                   if position not in link.installed]
        if not missing:
            return
        blob = pickle.dumps(
            tuple((position, state.units[position])
                  for position in missing),
            protocol=pickle.HIGHEST_PROTOCOL)
        store_blob = None
        if not link.store_sent and state.context.store is not None:
            store_blob = pickle.dumps(state.context.store,
                                      protocol=pickle.HIGHEST_PROTOCOL)
        reply = link.request(("install", blob, store_blob))
        if reply[0] != "installed":
            raise ConnectionError(
                f"unexpected reply {reply[0]!r} from {link.address}")
        link.installed.update(missing)
        link.store_sent = True

    def _bury_worker(self, link: _WorkerLink,
                     state: _DispatchState) -> None:
        """Return a dead worker's unfinished units to the shared pool."""
        with state.lock:
            link.dead = True
            requeue = [position
                       for position in state.in_flight.pop(link, [])
                       if position not in state.done]
            requeue.extend(link.queue)
            link.queue.clear()
            state.orphans.extend(requeue)
        breaker = self._breakers.get(link.address)
        if breaker is not None:
            breaker.record_failure()
        state.context.stats.add("remote_worker_failures", 1)
        state.context.tracer.event(
            "worker.failed",
            worker=f"{link.address[0]}:{link.address[1]}",
            requeued=len(requeue))

    # -- local fallback ------------------------------------------------
    def _run_local_fallback(self, units: list[PlanUnit],
                            positions: list[int], results: list,
                            context: UnitContext) -> None:
        from repro.engine.executors import ProcessPoolPlanExecutor

        subset = [units[position] for position in positions]
        with context.tracer.span("remote.fallback", units=len(subset)):
            try:
                values = ProcessPoolPlanExecutor(
                    max_workers=self.max_local_workers).run(subset,
                                                            context)
            except EstimationError:
                values = [run_plan_unit(unit, context)
                          for unit in subset]
        for position, value in zip(positions, values):
            results[position] = value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"RemotePlanExecutor(workers={self.addresses!r}, "
                f"scheduler={self.scheduler!r}, "
                f"chunk_units={self.chunk_units}, steal={self.steal})")


@dataclass
class _DispatchState:
    """Shared bookkeeping for one dispatch round."""

    units: list[PlanUnit]
    results: list
    context: UnitContext
    links: list[_WorkerLink]
    # repro-lint: ignore[RPL003] -- parent-side dispatch bookkeeping:
    # this state lives only in the coordinating process for the span
    # of one dispatch round and is shared across dispatcher threads,
    # never pickled or shipped (workers receive PlanUnit lists, not
    # _DispatchState); RPL003's audit confirmed no pickle path exists.
    lock: threading.Lock = field(default_factory=threading.Lock)
    done: set[int] = field(default_factory=set)
    orphans: deque[int] = field(default_factory=deque)
    in_flight: dict[_WorkerLink, list[int]] = field(default_factory=dict)
    #: Cost-model calibration accumulators (guarded by ``lock``):
    #: summed |predicted - observed| / observed over units that had a
    #: pre-observation prediction, plus raw observed totals.
    predicted_error_abs: float = 0.0
    predicted_seconds: float = 0.0
    observed_seconds: float = 0.0
    observed_units: int = 0
    compared_units: int = 0
