"""Shared-sample batch estimation: plan / materialize / execute.

The estimation engine is how every layer of the library runs SampleCF:
single calls (:class:`~repro.core.samplecf.SampleCF` is a facade over
it), advisor candidate sizing, multi-trial experiment sweeps, and the
CLI's ``estimate-batch``. See :mod:`repro.engine.engine` for the
execution model.

Caching is two-tier. Tier 1 is the in-process
:class:`~repro.engine.samples.SampleCache` — an LRU of materialized
samples (capacity set per engine or via ``REPRO_SAMPLE_CACHE_SIZE``)
with single-flight semantics across threads. Tier 2, enabled by
constructing :class:`EstimationEngine` with ``store=``, is a persistent
content-addressed :class:`~repro.store.store.SampleStore` on disk.
A cacheable unit resolves in order:

1. **finished estimate on disk** — exact repeats skip sampling *and*
   compression entirely;
2. **sample in the memory LRU** — shared across this process's batches;
3. **sample on disk** — drawn by an earlier run (or another process);
4. **materialize** — then written through to both tiers.

Store entries are keyed by content fingerprints (table content hash x
sampler x fraction x resolved seed, plus algorithm/layout identity for
estimates), so warm starts survive process boundaries and table
mutations invalidate naturally. The per-tier movement is visible in
:class:`~repro.engine.samples.EngineStats` (``sample_cache_hits``,
``sample_store_hits``, ``estimate_store_hits``,
``samples_materialized``).
"""

from repro.engine.engine import EstimationEngine, default_engine
from repro.engine.executors import (PlanExecutor, ProcessPoolPlanExecutor,
                                    SerialExecutor, ThreadPoolPlanExecutor,
                                    make_executor)
from repro.engine.remote import (RemotePlanExecutor, UnitCostModel,
                                 lpt_assign, round_robin_assign,
                                 spawn_local_workers, start_worker_thread)
from repro.engine.plan import (EstimationPlan, PlanNode, expand_trials,
                               plan_batch)
from repro.engine.requests import (BatchResult, EstimationRequest,
                                   PartialBatchResult, RequestResult,
                                   UnitOutcome, derive_seed)
from repro.engine.samples import (DEFAULT_SAMPLE_CACHE_BYTES,
                                  DEFAULT_SAMPLE_CACHE_SIZE,
                                  SAMPLE_CACHE_BYTES_ENV,
                                  SAMPLE_CACHE_SIZE_ENV, EngineStats,
                                  MaterializedSample, SampleCache,
                                  materialize_histogram_sample,
                                  materialize_table_sample,
                                  resolve_sample_cache_bytes,
                                  resolve_sample_cache_size)
from repro.engine.units import (PlanUnit, UnitContext, UnitFailure,
                                plan_units, run_plan_unit)

__all__ = [
    "BatchResult",
    "DEFAULT_SAMPLE_CACHE_BYTES",
    "DEFAULT_SAMPLE_CACHE_SIZE",
    "EngineStats",
    "EstimationEngine",
    "EstimationPlan",
    "EstimationRequest",
    "MaterializedSample",
    "PartialBatchResult",
    "PlanExecutor",
    "PlanNode",
    "PlanUnit",
    "ProcessPoolPlanExecutor",
    "RemotePlanExecutor",
    "RequestResult",
    "SAMPLE_CACHE_BYTES_ENV",
    "SAMPLE_CACHE_SIZE_ENV",
    "SampleCache",
    "SerialExecutor",
    "ThreadPoolPlanExecutor",
    "UnitContext",
    "UnitCostModel",
    "UnitFailure",
    "UnitOutcome",
    "default_engine",
    "derive_seed",
    "expand_trials",
    "lpt_assign",
    "make_executor",
    "materialize_histogram_sample",
    "materialize_table_sample",
    "plan_batch",
    "plan_units",
    "resolve_sample_cache_bytes",
    "resolve_sample_cache_size",
    "round_robin_assign",
    "run_plan_unit",
    "spawn_local_workers",
    "start_worker_thread",
]
