"""Shared-sample batch estimation: plan / materialize / execute.

The estimation engine is how every layer of the library runs SampleCF:
single calls (:class:`~repro.core.samplecf.SampleCF` is a facade over
it), advisor candidate sizing, multi-trial experiment sweeps, and the
CLI's ``estimate-batch``. See :mod:`repro.engine.engine` for the
execution model.
"""

from repro.engine.engine import EstimationEngine, default_engine
from repro.engine.executors import (PlanExecutor, ProcessPoolPlanExecutor,
                                    SerialExecutor, ThreadPoolPlanExecutor,
                                    make_executor)
from repro.engine.plan import EstimationPlan, PlanNode, plan_batch
from repro.engine.requests import (BatchResult, EstimationRequest,
                                   RequestResult, derive_seed)
from repro.engine.samples import (EngineStats, MaterializedSample,
                                  SampleCache, materialize_histogram_sample,
                                  materialize_table_sample)
from repro.engine.units import (PlanUnit, UnitContext, plan_units,
                                run_plan_unit)

__all__ = [
    "BatchResult",
    "EngineStats",
    "EstimationEngine",
    "EstimationPlan",
    "EstimationRequest",
    "MaterializedSample",
    "PlanExecutor",
    "PlanNode",
    "PlanUnit",
    "ProcessPoolPlanExecutor",
    "RequestResult",
    "SampleCache",
    "SerialExecutor",
    "ThreadPoolPlanExecutor",
    "UnitContext",
    "default_engine",
    "derive_seed",
    "make_executor",
    "materialize_histogram_sample",
    "materialize_table_sample",
    "plan_batch",
    "plan_units",
    "run_plan_unit",
]
