"""The EstimationEngine: plan and execute batches of CF estimations.

This is the architectural backbone the ROADMAP asks for ("sharding,
batching, caching"): every estimation in the library — single
:class:`SampleCF` calls, advisor candidate sizing, multi-trial sweeps,
the CLI's ``estimate-batch`` — funnels through :meth:`execute`, which

1. canonicalizes and dedupes the batch (:mod:`repro.engine.plan`),
2. materializes each distinct (source, sampler, fraction, seed) sample
   exactly once, LRU-cached across batches
   (:mod:`repro.engine.samples`),
3. shares one built sample index per column-set layout across all
   algorithms probing it, and
4. runs the independent (node, trial) units on a pluggable executor
   (:mod:`repro.engine.executors`).

Determinism contract: with an integer master seed, ``execute`` returns
byte-identical results for the same batch content regardless of
executor choice, request submission order, or whether samples came from
the cache — asserted by ``tests/property/test_engine_determinism.py``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.sampling.rng import SeedLike
from repro.core.samplecf import SampleCFEstimate
from repro.engine.executors import PlanExecutor, SerialExecutor
from repro.engine.plan import EstimationPlan, PlanNode, plan_batch
from repro.engine.requests import (BatchResult, EstimationRequest,
                                   RequestResult)
from repro.engine.samples import (EngineStats, MaterializedSample,
                                  SampleCache, materialize_histogram_sample,
                                  materialize_table_sample)


def _resolve_master_seed(seed: SeedLike) -> int:
    if seed is None:
        return int(np.random.default_rng().integers(0, 2 ** 63 - 1))
    if isinstance(seed, np.random.Generator):
        return int(seed.integers(0, 2 ** 63 - 1))
    return int(seed)


class EstimationEngine:
    """Shared-sample batch estimator.

    Parameters
    ----------
    seed:
        Master seed. Requests without an explicit seed derive their
        per-trial randomness from it (content-keyed, order-free).
    executor:
        Default :class:`PlanExecutor`; serial unless given.
    sample_cache_size:
        LRU capacity, counted in materialized samples. Samples persist
        across ``execute`` calls, so repeated advisor/sweep runs over
        the same tables reuse prior draws.
    """

    def __init__(self, seed: SeedLike = 0,
                 executor: PlanExecutor | None = None,
                 sample_cache_size: int = 64) -> None:
        self.master_seed = _resolve_master_seed(seed)
        self.executor: PlanExecutor = executor or SerialExecutor()
        self.cache = SampleCache(sample_cache_size)
        self.stats = EngineStats()

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan(self, requests: Sequence[EstimationRequest],
             ) -> EstimationPlan:
        """Canonicalize a batch without executing it."""
        return plan_batch(requests, self.master_seed)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self,
                requests: Sequence[EstimationRequest] | EstimationPlan,
                executor: PlanExecutor | None = None) -> BatchResult:
        """Run a batch (or a pre-built plan) and fan results back out."""
        if isinstance(requests, EstimationPlan):
            plan = requests
        else:
            plan = self.plan(requests)
        runner = executor or self.executor
        before = self.stats.snapshot()
        self.stats.add("requests", plan.num_requests)
        self.stats.add("unique_requests", plan.num_unique)
        self.stats.add("trials", plan.num_units)
        tasks = []
        for node in plan.nodes:
            for trial in range(node.trials):
                tasks.append(self._make_unit(node, trial))
        values = runner.run(tasks)
        estimates_by_node: list[tuple[SampleCFEstimate, ...]] = []
        cursor = 0
        for node in plan.nodes:
            estimates_by_node.append(
                tuple(values[cursor:cursor + node.trials]))
            cursor += node.trials
        slots: list[RequestResult | None] = [None] * plan.num_requests
        for node, estimates in zip(plan.nodes, estimates_by_node):
            for position in node.positions:
                slots[position] = RequestResult(request=node.request,
                                                estimates=estimates)
        after = self.stats.snapshot()
        return BatchResult(results=tuple(slots),
                           stats=EngineStats.delta(before, after))

    def estimate(self, request: EstimationRequest) -> RequestResult:
        """Single-request convenience over :meth:`execute`."""
        return self.execute([request]).results[0]

    # ------------------------------------------------------------------
    # Units
    # ------------------------------------------------------------------
    def _make_unit(self, node: PlanNode, trial: int):
        if node.request.is_table:
            return lambda: self._run_table_unit(node, trial)
        return lambda: self._run_histogram_unit(node, trial)

    def _sample_for(self, node: PlanNode, trial: int,
                    ) -> MaterializedSample:
        request = node.request
        seed = node.trial_seeds[trial]
        if request.is_table:
            def factory() -> MaterializedSample:
                return materialize_table_sample(
                    request.table, request.sampler, request.fraction,
                    seed)
        else:
            def factory() -> MaterializedSample:
                return materialize_histogram_sample(
                    request.histogram, request.sampler, request.fraction,
                    seed)
        key = node.sample_keys[trial]
        if key is None:
            sample = factory()
            hit = False
        else:
            sample, hit = self.cache.get_or_create(key, factory)
        if hit:
            self.stats.add("sample_cache_hits")
        else:
            self.stats.add("samples_materialized")
            self.stats.add("sample_rows_drawn", sample.sample_rows)
        return sample

    def _run_table_unit(self, node: PlanNode,
                        trial: int) -> SampleCFEstimate:
        request = node.request
        sample = self._sample_for(node, trial)
        entry = sample.index_for(
            request.table, request.columns, request.kind,
            request.page_size, request.fill_factor,
            on_build=lambda: self.stats.add("indexes_built"),
            on_reuse=lambda: self.stats.add("index_reuse_hits"))
        result = entry.index.compress(
            request.algorithm, accounting=request.accounting,
            repack_pages=request.repack)
        self.stats.add("estimates_computed")
        return SampleCFEstimate(
            estimate=result.compression_fraction,
            sample_rows=len(sample.rows),
            sampling_fraction=request.fraction,
            algorithm=request.algorithm.name,
            accounting=request.accounting,
            path=sample.path,
            uncompressed_sample_bytes=result.uncompressed_bytes,
            compressed_sample_bytes=result.compressed_bytes,
            sample_distinct=entry.distinct,
            details={"pages_before": result.pages_before,
                     "pages_after": result.pages_after, **sample.extra})

    def _run_histogram_unit(self, node: PlanNode,
                            trial: int) -> SampleCFEstimate:
        request = node.request
        sample = self._sample_for(node, trial)
        histogram = sample.histogram
        estimate = request.algorithm.cf_from_histogram(
            histogram, page_size=request.page_size,
            record_bytes=request.record_bytes,
            fill_factor=request.fill_factor)
        self.stats.add("estimates_computed")
        uncompressed = histogram.total_bytes
        return SampleCFEstimate(
            estimate=estimate,
            sample_rows=histogram.n,
            sampling_fraction=request.fraction,
            algorithm=request.algorithm.name,
            accounting=request.accounting,
            path="histogram",
            uncompressed_sample_bytes=uncompressed,
            compressed_sample_bytes=round(estimate * uncompressed),
            sample_distinct=histogram.d,
            details={})

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"EstimationEngine(seed={self.master_seed}, "
                f"executor={self.executor.name!r}, "
                f"cached_samples={len(self.cache)})")


# ----------------------------------------------------------------------
# Shared default engine (the SampleCF facade runs on it)
# ----------------------------------------------------------------------
_DEFAULT_ENGINE: EstimationEngine | None = None


def default_engine() -> EstimationEngine:
    """The process-wide engine backing single-call SampleCF facades.

    Its master seed never influences results for facade calls (those
    always carry a concrete seed), so sharing one instance only shares
    the sample cache.
    """
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = EstimationEngine(seed=0)
    return _DEFAULT_ENGINE
