"""The EstimationEngine: plan and execute batches of CF estimations.

This is the architectural backbone the ROADMAP asks for ("sharding,
batching, caching"): every estimation in the library — single
:class:`SampleCF` calls, advisor candidate sizing, multi-trial sweeps,
the CLI's ``estimate-batch`` — funnels through :meth:`execute`, which

1. canonicalizes and dedupes the batch (:mod:`repro.engine.plan`),
2. materializes each distinct (source, sampler, fraction, seed) sample
   exactly once, LRU-cached across batches
   (:mod:`repro.engine.samples`),
3. shares one built sample index per column-set layout across all
   algorithms probing it, and
4. runs the independent (node, trial) units — picklable
   :class:`~repro.engine.units.PlanUnit` objects — on a pluggable
   executor (:mod:`repro.engine.executors`): serial, thread pool, or
   process pool.

Determinism contract: with an integer master seed, ``execute`` returns
byte-identical results for the same batch content regardless of
executor choice (including the process pool), request submission order,
or whether samples came from the cache — asserted by
``tests/property/test_engine_determinism.py``.
"""

from __future__ import annotations

import os
import threading
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.errors import EstimationError
from repro.faults import (DEFAULT_RETRY_POLICY, Deadline, FaultInjector,
                          NullInjector, RetryPolicy, injector_from_env)
from repro.sampling.rng import SeedLike
from repro.core.samplecf import SampleCFEstimate
from repro.engine.executors import (PlanExecutor, SerialExecutor,
                                    make_executor)
from repro.engine.plan import EstimationPlan, expand_trials, plan_batch
from repro.engine.requests import (BatchResult, EstimationRequest,
                                   PartialBatchResult, RequestResult,
                                   UnitOutcome)
from repro.engine.samples import EngineStats, SampleCache
from repro.engine.units import UnitContext, UnitFailure, plan_units
from repro.obs import NULL_TRACER, absorb_engine_stats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import NullTracer, Tracer
    from repro.store.store import SampleStore


def _resolve_master_seed(seed: SeedLike) -> int:
    if seed is None:
        # repro-lint: ignore[RPL001] -- the documented None-seed
        # contract: an unseeded engine draws one master seed from OS
        # entropy here, exactly once, and every downstream draw derives
        # from it deterministically (content-keyed trial seeds).
        return int(np.random.default_rng().integers(0, 2 ** 63 - 1))
    if isinstance(seed, np.random.Generator):
        return int(seed.integers(0, 2 ** 63 - 1))
    return int(seed)


class EstimationEngine:
    """Shared-sample batch estimator.

    Parameters
    ----------
    seed:
        Master seed. Requests without an explicit seed derive their
        per-trial randomness from it (content-keyed, order-free).
    executor:
        Default :class:`PlanExecutor` (or a name understood by
        :func:`~repro.engine.executors.make_executor`); serial unless
        given.
    sample_cache_size:
        Memory-tier LRU capacity, counted in materialized samples.
        ``None`` (the default) resolves via the
        ``REPRO_SAMPLE_CACHE_SIZE`` environment variable, falling back
        to 64. Samples persist across ``execute`` calls, so repeated
        advisor/sweep runs over the same tables reuse prior draws.
    sample_cache_bytes:
        Memory-tier byte budget: the LRU additionally evicts until the
        summed sample payloads fit. ``None`` resolves via
        ``REPRO_SAMPLE_CACHE_BYTES``, falling back to 256 MiB.
    store:
        Optional disk tier: a :class:`~repro.store.store.SampleStore`
        handle or a directory path to open one at. With a store, every
        cacheable unit resolves estimate-on-disk -> sample-in-memory ->
        sample-on-disk -> materialize, and new samples/estimates are
        written through — which is what lets a *different process* (or
        a later run) warm-start instead of re-drawing.
    tracer:
        Optional :class:`~repro.obs.Tracer`: every ``execute`` emits
        nested spans (``engine.execute`` -> ``plan.build`` ->
        ``unit.run`` -> ...) into it, across whichever executor runs
        the units. The default :data:`~repro.obs.NULL_TRACER` keeps
        the hot path allocation-free, and estimates are bit-identical
        with tracing on or off (locked by the determinism suite).
    """

    def __init__(self, seed: SeedLike = 0,
                 executor: PlanExecutor | str | None = None,
                 sample_cache_size: int | None = None,
                 sample_cache_bytes: int | None = None,
                 store: "SampleStore | str | os.PathLike | None" = None,
                 tracer: "Tracer | NullTracer | None" = None,
                 retry_policy: RetryPolicy | None = None,
                 injector: FaultInjector | NullInjector | None = None,
                 ) -> None:
        self.master_seed = _resolve_master_seed(seed)
        if isinstance(executor, str):
            executor = make_executor(executor)
        self.executor: PlanExecutor = executor or SerialExecutor()
        self.cache = SampleCache(sample_cache_size, sample_cache_bytes)
        if store is not None:
            from repro.store.store import open_store  # lazy: cycle guard

            store = open_store(store)
        self.store: "SampleStore | None" = store
        self.stats = EngineStats(cache=self.cache)
        self.tracer: "Tracer | NullTracer" = tracer or NULL_TRACER
        self.retry_policy = retry_policy or DEFAULT_RETRY_POLICY
        self.injector = (injector if injector is not None
                         else injector_from_env())

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan(self, requests: Sequence[EstimationRequest],
             ) -> EstimationPlan:
        """Canonicalize a batch without executing it."""
        return plan_batch(requests, self.master_seed)

    def trial_requests(self, request: EstimationRequest,
                       ) -> tuple[EstimationRequest, ...]:
        """Per-trial expansion of ``request`` under this engine's seed.

        Trial ``j`` of the result executes bit-identically to trial
        ``j`` of the full request on this engine (same resolved seed,
        same sample/store keys), so callers can run any subset of a
        request's trials incrementally — later batches reuse the
        samples earlier ones materialized instead of re-running
        finished trials. See :func:`~repro.engine.plan.expand_trials`.
        """
        return expand_trials(request, self.master_seed)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self,
                requests: Sequence[EstimationRequest] | EstimationPlan,
                executor: PlanExecutor | str | None = None,
                deadline: "Deadline | float | None" = None,
                ) -> BatchResult | PartialBatchResult:
        """Run a batch (or a pre-built plan) and fan results back out.

        Stats accumulate into a batch-local counter first and merge
        into the engine's global :attr:`stats` once at the end, so
        concurrent ``execute`` calls on one engine (e.g. the shared
        :func:`default_engine`) each report exactly their own batch's
        movement instead of interleaved snapshot deltas.

        With ``deadline`` (a :class:`~repro.faults.Deadline`, or a
        float of seconds from now) the batch becomes *bounded*: units
        past the budget are skipped as typed failures instead of run,
        and the return type switches to
        :class:`~repro.engine.requests.PartialBatchResult`, which
        accounts every submitted unit exactly once as done, degraded,
        or deadline-exceeded — a budget can shrink the result, never
        corrupt it.
        """
        tracer = self.tracer
        with tracer.span("engine.execute") as batch_span:
            if isinstance(requests, EstimationPlan):
                plan = requests
            else:
                with tracer.span("plan.build"):
                    plan = self.plan(requests)
            if isinstance(executor, str):
                executor = make_executor(executor)
            runner = executor or self.executor
            local = EngineStats(cache=self.cache)
            local.add("requests", plan.num_requests)
            local.add("unique_requests", plan.num_unique)
            local.add("trials", plan.num_units)
            units = plan_units(plan)
            batch_span.annotate(requests=plan.num_requests,
                                units=plan.num_units,
                                executor=runner.name)
            if isinstance(deadline, (int, float)):
                deadline = Deadline.after(float(deadline))
            # Per-batch store attribution: the store handle is shared
            # across concurrent execute() calls, so diffing its global
            # counters would charge each batch the union of all
            # concurrent movement. Units instead mirror their own store
            # I/O into this batch-local dict (thread-scoped sink inside
            # the store), mirroring the batch-local EngineStats.
            store_counters: dict[str, int] | None = (
                {} if self.store is not None else None)
            context = UnitContext(cache=self.cache, stats=local,
                                  store=self.store, tracer=tracer,
                                  deadline=deadline,
                                  retry=self.retry_policy,
                                  injector=self.injector,
                                  store_counters=store_counters)
            values = runner.run(units, context)
            estimates_by_node: list[tuple[SampleCFEstimate, ...]] = []
            failed_nodes: set[int] = set()
            cursor = 0
            for node_pos, node in enumerate(plan.nodes):
                chunk = tuple(values[cursor:cursor + node.trials])
                if any(isinstance(value, UnitFailure) for value in chunk):
                    failed_nodes.add(node_pos)
                estimates_by_node.append(chunk)
                cursor += node.trials
            if deadline is None and failed_nodes:
                raise EstimationError(
                    "executor returned unit failures without a "
                    "deadline in force — executor bug")
            slots: list[RequestResult | None] = [None] * plan.num_requests
            for node_pos, (node, estimates) in enumerate(
                    zip(plan.nodes, estimates_by_node)):
                result = (None if node_pos in failed_nodes
                          else RequestResult(request=node.request,
                                             estimates=estimates))
                for position in node.positions:
                    slots[position] = result
            self.stats.merge(local)
            if tracer.enabled:
                absorb_engine_stats(tracer.metrics, self.stats)
                if store_counters:
                    for name in ("bytes_read", "bytes_written",
                                 "faults_injected", "quarantined"):
                        moved = store_counters.get(name, 0)
                        if moved:
                            tracer.metrics.counter(
                                f"store.{name}").inc(moved)
            stats = local.as_dict()
            if store_counters is not None:
                stats["store"] = dict(store_counters)
            if deadline is None:
                return BatchResult(results=tuple(slots), stats=stats)
            degraded = context.degraded or set()
            outcomes = []
            for position, (unit, value) in enumerate(zip(units, values)):
                if isinstance(value, UnitFailure):
                    outcomes.append(UnitOutcome(
                        index=unit.index, trial=unit.trial,
                        status="deadline_exceeded", detail=value.detail))
                elif unit.index in degraded:
                    outcomes.append(UnitOutcome(
                        index=unit.index, trial=unit.trial,
                        status="degraded"))
                else:
                    outcomes.append(UnitOutcome(
                        index=unit.index, trial=unit.trial,
                        status="done"))
            return PartialBatchResult(results=tuple(slots),
                                      outcomes=tuple(outcomes),
                                      stats=stats)

    def estimate(self, request: EstimationRequest,
                 deadline: "Deadline | float | None" = None,
                 ) -> RequestResult:
        """Single-request convenience over :meth:`execute`.

        With a ``deadline``, a request whose units were skipped past
        the budget raises a typed :class:`EstimationError` instead of
        returning the bounded path's ``None`` slot — callers of this
        facade get a result or an exception, never a null that crashes
        later with an ``AttributeError``. Callers that want the
        per-unit outcome accounting should use :meth:`execute`.
        """
        result = self.execute([request], deadline=deadline).results[0]
        if result is None:
            raise EstimationError(
                "the request could not be evaluated before its "
                "deadline expired; retry with a larger budget, or use "
                "execute() for per-unit deadline outcomes")
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        store_note = (f", store={str(self.store.root)!r}"
                      if self.store is not None else "")
        return (f"EstimationEngine(seed={self.master_seed}, "
                f"executor={self.executor.name!r}, "
                f"cached_samples={len(self.cache)}{store_note})")


# ----------------------------------------------------------------------
# Shared default engine (the SampleCF facade runs on it)
# ----------------------------------------------------------------------
_DEFAULT_ENGINE: EstimationEngine | None = None
_DEFAULT_ENGINE_LOCK = threading.Lock()


def default_engine() -> EstimationEngine:
    """The process-wide engine backing single-call SampleCF facades.

    Its master seed never influences results for facade calls (those
    always carry a concrete seed), so sharing one instance only shares
    the sample cache. Lazy init is lock-protected: two threads racing
    the first facade call must not build two engines and split the
    cache. After initialization, reads take a lock-free fast path
    (double-checked): a fully-constructed engine is published before
    the lock is released, and the module-global read is atomic, so the
    lock exists only to arbitrate the one-time construction — a
    concurrent service must not serialize every facade call on it.
    """
    global _DEFAULT_ENGINE
    engine = _DEFAULT_ENGINE
    if engine is not None:
        return engine
    with _DEFAULT_ENGINE_LOCK:
        if _DEFAULT_ENGINE is None:
            _DEFAULT_ENGINE = EstimationEngine(seed=0)
        return _DEFAULT_ENGINE
