"""Materialized samples, their LRU cache, and engine counters.

The expensive part of SampleCF on the storage path is not compression —
samples are small — but *getting the sample*: drawing positions,
fetching and decoding rows, and building the index on them. A
:class:`MaterializedSample` captures the first two once per distinct
(source, sampler, fraction, seed) and carries a per-column-set cache of
built sample indexes, so a batch of (column-set × algorithm) candidates
over one table pays the draw/decode cost once and the index build once
per column set — every algorithm then only re-compresses shared leaves.

:class:`SampleCache` is a thread-safe LRU with single-flight semantics:
when several plan nodes race for the same key, exactly one thread
materializes and the rest wait, which is what keeps the thread-pool
executor from duplicating work.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import EstimationError
from repro.sampling.base import RowSampler, rows_for_fraction
from repro.sampling.block import BlockSampler
from repro.sampling.rng import make_rng
from repro.storage.index import Index, IndexKind
from repro.storage.record import decode_record
from repro.storage.rid import RID
from repro.storage.table import Table
from repro.core.cf_models import ColumnHistogram


@dataclass
class SampleIndexEntry:
    """One built sample index, shared across algorithms."""

    index: Index
    #: Distinct key values observed in the sample (``d'``).
    distinct: int


@dataclass
class MaterializedSample:
    """A drawn-and-decoded sample, reusable across candidates.

    Table-path samples hold decoded ``rows`` + ``rids``; histogram-path
    samples hold the sampled :class:`ColumnHistogram`. ``indexes`` maps
    ``(columns, kind, page_size, fill_factor)`` to the index built on
    this sample for that layout — built lazily, exactly once.

    The index-build lock is a plain attribute, not a dataclass field:
    samples must pickle (process-pool execution, snapshotting), and
    ``threading.Lock`` objects cannot. ``__getstate__`` drops the lock
    and ``__setstate__`` rebuilds a fresh one — a lock guards in-process
    construction races, which never survive serialization anyway.
    """

    fraction: float
    seed: object
    path: str
    rows: tuple = ()
    rids: tuple[RID, ...] = ()
    histogram: ColumnHistogram | None = None
    extra: dict = field(default_factory=dict)
    indexes: dict[tuple, SampleIndexEntry] = field(default_factory=dict)
    #: Approximate payload bytes this sample pins in memory (decoded
    #: rows at their encoded widths, or the sampled histogram's bytes).
    #: Set at materialization; the byte-aware LRU evicts against it.
    nbytes: int = 0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    @property
    def sample_rows(self) -> int:
        if self.histogram is not None:
            return int(self.histogram.n)
        return len(self.rows)

    def index_for(self, table: Table, columns: tuple[str, ...],
                  kind: IndexKind, page_size: int, fill_factor: float,
                  on_build: Callable[[], None] | None = None,
                  on_reuse: Callable[[], None] | None = None,
                  ) -> SampleIndexEntry:
        """The sample index for one layout, built on first use."""
        key = (columns, kind.value, page_size, float(fill_factor))
        with self._lock:
            entry = self.indexes.get(key)
            if entry is not None:
                if on_reuse is not None:
                    on_reuse()
                return entry
            sample_index = Index(
                "samplecf_sample", table.schema, columns, kind=kind,
                page_size=page_size, fill_factor=fill_factor)
            sample_index.build(list(zip(self.rows, self.rids)))
            distinct = len({sample_index.key_of(row) for row in self.rows})
            entry = SampleIndexEntry(index=sample_index, distinct=distinct)
            self.indexes[key] = entry
            if on_build is not None:
                on_build()
            return entry


def rows_payload_bytes(schema, rows) -> int:
    """Approximate encoded bytes of decoded ``rows`` under ``schema``.

    Fixed-width columns cost their width; variable-width values are
    priced through :meth:`~repro.storage.types.DataType.encoded_size`.
    This is a gauge for cache accounting, not an exact heap measure —
    it deliberately ignores Python object overhead, which is roughly
    proportional anyway.
    """
    fixed = 0
    variable_columns = []
    for position, column in enumerate(schema.columns):
        size = column.dtype.fixed_size
        if size is None:
            variable_columns.append((position, column.dtype))
        else:
            fixed += size
    total = fixed * len(rows)
    for position, dtype in variable_columns:
        total += sum(dtype.encoded_size(row[position]) for row in rows)
    return total


def materialize_table_sample(table: Table,
                             sampler: RowSampler | BlockSampler,
                             fraction: float,
                             seed: object) -> MaterializedSample:
    """Draw one reusable sample from a table (Figure 2, steps 1-2a).

    Reproduces :class:`SampleCF`'s historical draw exactly: the same
    ``make_rng(seed)`` stream, the same position/row/rid sequence — so
    the facade's single-call results are bit-identical to pre-engine
    releases for a fixed seed.
    """
    if table.num_rows == 0:
        raise EstimationError("cannot estimate over an empty table")
    rng = make_rng(seed)
    r = rows_for_fraction(table.num_rows, fraction)
    if isinstance(sampler, BlockSampler):
        block = sampler.sample_records(table.heap.page_view(), r, rng)
        rows = tuple(decode_record(table.schema, record)
                     for record in block.records)
        return MaterializedSample(
            fraction=fraction, seed=seed, path="block", rows=rows,
            rids=tuple(block.rids),
            extra={"pages_sampled": len(block.page_ids),
                   "pages_available": block.pages_available},
            nbytes=sum(len(record) for record in block.records))
    positions = sampler.sample_positions(table.num_rows, r, rng)
    rows = tuple(table.rows_at([int(p) for p in positions]))
    rids = tuple(table.rid_at(int(p)) for p in positions)
    return MaterializedSample(fraction=fraction, seed=seed,
                              path="storage", rows=rows, rids=rids,
                              nbytes=rows_payload_bytes(table.schema,
                                                        rows))


def materialize_histogram_sample(histogram: ColumnHistogram,
                                 sampler: RowSampler, fraction: float,
                                 seed: object) -> MaterializedSample:
    """Draw one reusable sampled histogram (the closed-form fast path)."""
    rng = make_rng(seed)
    r = rows_for_fraction(histogram.n, fraction)
    sample = sampler.sample_histogram(histogram, r, rng)
    return MaterializedSample(fraction=fraction, seed=seed,
                              path="histogram", histogram=sample,
                              nbytes=int(sample.total_bytes))


#: Fallback LRU capacity when neither kwarg nor environment sets one.
DEFAULT_SAMPLE_CACHE_SIZE = 64

#: Environment override for the default capacity (advisor runs over
#: many tables may want more; memory-constrained workers, less).
SAMPLE_CACHE_SIZE_ENV = "REPRO_SAMPLE_CACHE_SIZE"

#: Fallback byte budget for the sample LRU. Entry capacity alone lets
#: 64 paper-scale samples pin gigabytes; the byte bound is what
#: actually protects a worker's memory.
DEFAULT_SAMPLE_CACHE_BYTES = 256 * 1024 * 1024

#: Environment override for the byte budget.
SAMPLE_CACHE_BYTES_ENV = "REPRO_SAMPLE_CACHE_BYTES"


def _resolve_env_int(value: int | None, env_name: str,
                     default: int) -> int:
    if value is not None:
        return int(value)
    raw = os.environ.get(env_name)
    if raw is None or not raw.strip():
        return default
    try:
        return int(raw)
    except ValueError:
        raise EstimationError(
            f"{env_name} must be an integer, got {raw!r}")


def resolve_sample_cache_size(size: int | None = None) -> int:
    """The LRU capacity to use: explicit kwarg > environment > default.

    Every place that builds a :class:`SampleCache` without an explicit
    size (engines, process-pool workers) funnels through this, so one
    ``REPRO_SAMPLE_CACHE_SIZE`` setting governs the whole process tree.
    """
    return _resolve_env_int(size, SAMPLE_CACHE_SIZE_ENV,
                            DEFAULT_SAMPLE_CACHE_SIZE)


def resolve_sample_cache_bytes(max_bytes: int | None = None) -> int:
    """The LRU byte budget: explicit kwarg > environment > default."""
    return _resolve_env_int(max_bytes, SAMPLE_CACHE_BYTES_ENV,
                            DEFAULT_SAMPLE_CACHE_BYTES)


def _entry_nbytes(value: object) -> int:
    """Byte charge of one cache entry (0 for byte-less test doubles)."""
    return int(getattr(value, "nbytes", 0) or 0)


class SampleCache:
    """Thread-safe byte-aware LRU over samples with single-flight.

    ``get_or_create`` returns ``(sample, was_hit)``. Concurrent callers
    asking for the same key block until the one materializing thread
    finishes; a failed materialization wakes waiters so one of them
    retries (and surfaces the error if it persists).

    Eviction is bounded two ways: at most ``capacity`` entries *and*
    at most ``max_bytes`` of sample payload (each entry's
    :attr:`MaterializedSample.nbytes`), evicting least-recently-used
    entries until both hold — so one paper-scale sample can push out
    many small ones instead of silently pinning memory by entry count.
    The most recent entry always stays, even when it alone exceeds the
    byte budget (evicting the sample a unit is about to use would only
    force an immediate re-draw).
    """

    def __init__(self, capacity: int | None = None,
                 max_bytes: int | None = None) -> None:
        capacity = resolve_sample_cache_size(capacity)
        if capacity <= 0:
            raise EstimationError(
                f"sample cache capacity must be positive, got {capacity}")
        max_bytes = resolve_sample_cache_bytes(max_bytes)
        if max_bytes <= 0:
            raise EstimationError(
                f"sample cache byte budget must be positive, "
                f"got {max_bytes}")
        self.capacity = capacity
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._bytes = 0
        self._entries: OrderedDict[tuple, MaterializedSample] = \
            OrderedDict()
        self._pending: dict[tuple, threading.Event] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def nbytes(self) -> int:
        """Payload bytes currently held (the eviction gauge)."""
        with self._lock:
            return self._bytes

    def get_or_create(self, key: tuple,
                      factory: Callable[[], MaterializedSample],
                      ) -> tuple[MaterializedSample, bool]:
        while True:
            with self._lock:
                if key in self._entries:
                    self._entries.move_to_end(key)
                    return self._entries[key], True
                event = self._pending.get(key)
                if event is None:
                    event = threading.Event()
                    self._pending[key] = event
                    is_creator = True
                else:
                    is_creator = False
            if not is_creator:
                event.wait()
                continue  # entry is now cached, or creation failed
            try:
                value = factory()
            except BaseException:
                with self._lock:
                    self._pending.pop(key, None)
                event.set()
                raise
            with self._lock:
                previous = self._entries.pop(key, None)
                if previous is not None:
                    self._bytes -= _entry_nbytes(previous)
                self._entries[key] = value
                self._bytes += _entry_nbytes(value)
                while len(self._entries) > 1 and (
                        len(self._entries) > self.capacity
                        or self._bytes > self.max_bytes):
                    _, evicted = self._entries.popitem(last=False)
                    self._bytes -= _entry_nbytes(evicted)
                self._pending.pop(key, None)
            event.set()
            return value, False

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0


class EngineStats:
    """Thread-safe reuse counters the acceptance tests assert on.

    The ``*_store_*`` fields are the disk tier's movement: a sample (or
    finished estimate) loaded from a persistent
    :class:`~repro.store.store.SampleStore` counts as a store hit, not
    a materialization — a fully warm run therefore reports
    ``samples_materialized == 0``. ``size_kernel_hits`` /
    ``size_scalar_fallbacks`` count compressed *blocks* (leaf pages,
    or one whole index for index-scoped algorithms) sized by the
    vectorized kernels versus the scalar compress path.

    The ``whatif_*`` fields are the lazy advisor's movement:
    ``whatif_rounds`` counts greedy selection rounds driven through the
    engine, ``whatif_pruned`` counts per-round candidate prunes whose
    bound excluded them from winning (no engine units spent),
    ``whatif_early_stops`` counts candidates whose adaptive allocation
    stopped short of the full trial budget, and ``whatif_trials_saved``
    is the total trial units those decisions avoided — so for an
    advisor run over ``K`` compressed candidates at budget ``T``,
    ``trials == K * T - whatif_trials_saved`` reconciles exactly.

    The ``remote_*`` fields are the remote executor's movement:
    ``remote_units`` counts units completed on workers,
    ``remote_steals`` counts queue-stealing events,
    ``remote_retried_units`` counts units rerun after their original
    worker died, ``remote_worker_failures`` counts worker deaths
    observed mid-batch, and ``remote_fallback_units`` counts units the
    local fallback executed because no worker could.

    Counters are not the only series: :meth:`set_gauge` stores named
    point-in-time values (cost-model calibration rates, queue depths)
    that :meth:`gauges` reports alongside the computed sample-cache
    gauges when a ``cache`` backref is attached. :meth:`as_dict` keeps
    counters at the top level and nests every gauge under a ``gauges``
    key so JSON consumers can tell the two apart; :meth:`snapshot`,
    :meth:`delta`, and :meth:`merge` stay counters-only (gauges are
    points, not movement — merging copies the other side's last-set
    values instead of summing).

    This bag is the **authoritative** engine-side accounting; the
    :mod:`repro.obs` metrics registry only mirrors it (see
    :func:`repro.obs.metrics.absorb_engine_stats`).
    """

    FIELDS = ("requests", "unique_requests", "trials",
              "samples_materialized", "sample_cache_hits",
              "sample_rows_drawn", "indexes_built", "index_reuse_hits",
              "estimates_computed", "sample_store_hits",
              "sample_store_writes", "estimate_store_hits",
              "estimate_store_writes", "size_kernel_hits",
              "size_scalar_fallbacks", "whatif_rounds",
              "whatif_pruned", "whatif_early_stops",
              "whatif_trials_saved", "remote_units", "remote_steals",
              "remote_retried_units", "remote_worker_failures",
              "remote_fallback_units", "faults_injected",
              "retry_attempts", "retry_giveups", "store_degraded_reads",
              "store_degraded_writes", "degraded_units",
              "deadline_skipped_units", "pool_worker_deaths",
              "pool_degraded_units", "breaker_open_skips",
              "breaker_probes", "breaker_reconnects")

    def __init__(self, cache: "SampleCache | None" = None) -> None:
        self._lock = threading.Lock()
        self._cache = cache
        self._counts: dict[str, int] = {name: 0 for name in self.FIELDS}
        self._gauges: dict[str, float] = {}

    def add(self, name: str, amount: int = 1) -> None:
        if name not in self._counts:
            raise EstimationError(f"unknown engine stat {name!r}")
        with self._lock:
            self._counts[name] += amount

    def __getitem__(self, name: str) -> int:
        with self._lock:
            return self._counts[name]

    def set_gauge(self, name: str, value: float) -> None:
        """Record a point-in-time value (not a counter; last set wins)."""
        with self._lock:
            self._gauges[name] = float(value)

    def gauges(self) -> dict[str, float]:
        """Stored gauges plus the attached cache's computed size gauges."""
        with self._lock:
            data = dict(self._gauges)
        if self._cache is not None:
            data["sample_cache_size"] = len(self._cache)
            data["sample_cache_capacity"] = self._cache.capacity
            data["sample_cache_bytes"] = self._cache.nbytes
            data["sample_cache_max_bytes"] = self._cache.max_bytes
        return data

    def snapshot(self) -> dict[str, int]:
        """A point-in-time copy of all counters."""
        with self._lock:
            return dict(self._counts)

    @staticmethod
    def delta(before: dict[str, int], after: dict[str, int],
              ) -> dict[str, int]:
        """Counter movement between two snapshots."""
        return {name: after[name] - before.get(name, 0) for name in after}

    def merge(self, other: "EngineStats | dict") -> None:
        """Fold another counter set (or snapshot dict) into this one.

        This is how batch-local counters reach an engine's global stats
        and how process-pool worker deltas reach a batch's counters —
        one atomic merge instead of racy before/after snapshots.
        """
        if isinstance(other, EngineStats):
            counts = other.snapshot()
            with other._lock:
                gauges = dict(other._gauges)
        else:
            counts = other
            gauges = {}
        with self._lock:
            for name, amount in counts.items():
                if name not in self._counts:
                    raise EstimationError(f"unknown engine stat {name!r}")
                self._counts[name] += amount
            self._gauges.update(gauges)

    def as_dict(self) -> dict[str, Any]:
        """Counters at the top level, every gauge nested under ``gauges``.

        The nested key is deliberate: JSON consumers (``repro cache
        stats``, ``estimate-batch`` payloads) must be able to tell
        summable counters from point-in-time gauges without a schema.
        """
        data: dict[str, Any] = self.snapshot()
        data["gauges"] = self.gauges()
        return data
