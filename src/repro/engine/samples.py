"""Materialized samples, their LRU cache, and engine counters.

The expensive part of SampleCF on the storage path is not compression —
samples are small — but *getting the sample*: drawing positions,
fetching and decoding rows, and building the index on them. A
:class:`MaterializedSample` captures the first two once per distinct
(source, sampler, fraction, seed) and carries a per-column-set cache of
built sample indexes, so a batch of (column-set × algorithm) candidates
over one table pays the draw/decode cost once and the index build once
per column set — every algorithm then only re-compresses shared leaves.

:class:`SampleCache` is a thread-safe LRU with single-flight semantics:
when several plan nodes race for the same key, exactly one thread
materializes and the rest wait, which is what keeps the thread-pool
executor from duplicating work.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import EstimationError
from repro.sampling.base import RowSampler, rows_for_fraction
from repro.sampling.block import BlockSampler
from repro.sampling.rng import make_rng
from repro.storage.index import Index, IndexKind
from repro.storage.record import decode_record
from repro.storage.rid import RID
from repro.storage.table import Table
from repro.core.cf_models import ColumnHistogram


@dataclass
class SampleIndexEntry:
    """One built sample index, shared across algorithms."""

    index: Index
    #: Distinct key values observed in the sample (``d'``).
    distinct: int


@dataclass
class MaterializedSample:
    """A drawn-and-decoded sample, reusable across candidates.

    Table-path samples hold decoded ``rows`` + ``rids``; histogram-path
    samples hold the sampled :class:`ColumnHistogram`. ``indexes`` maps
    ``(columns, kind, page_size, fill_factor)`` to the index built on
    this sample for that layout — built lazily, exactly once.

    The index-build lock is a plain attribute, not a dataclass field:
    samples must pickle (process-pool execution, snapshotting), and
    ``threading.Lock`` objects cannot. ``__getstate__`` drops the lock
    and ``__setstate__`` rebuilds a fresh one — a lock guards in-process
    construction races, which never survive serialization anyway.
    """

    fraction: float
    seed: object
    path: str
    rows: tuple = ()
    rids: tuple[RID, ...] = ()
    histogram: ColumnHistogram | None = None
    extra: dict = field(default_factory=dict)
    indexes: dict[tuple, SampleIndexEntry] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    @property
    def sample_rows(self) -> int:
        if self.histogram is not None:
            return int(self.histogram.n)
        return len(self.rows)

    def index_for(self, table: Table, columns: tuple[str, ...],
                  kind: IndexKind, page_size: int, fill_factor: float,
                  on_build: Callable[[], None] | None = None,
                  on_reuse: Callable[[], None] | None = None,
                  ) -> SampleIndexEntry:
        """The sample index for one layout, built on first use."""
        key = (columns, kind.value, page_size, float(fill_factor))
        with self._lock:
            entry = self.indexes.get(key)
            if entry is not None:
                if on_reuse is not None:
                    on_reuse()
                return entry
            sample_index = Index(
                "samplecf_sample", table.schema, columns, kind=kind,
                page_size=page_size, fill_factor=fill_factor)
            sample_index.build(list(zip(self.rows, self.rids)))
            distinct = len({sample_index.key_of(row) for row in self.rows})
            entry = SampleIndexEntry(index=sample_index, distinct=distinct)
            self.indexes[key] = entry
            if on_build is not None:
                on_build()
            return entry


def materialize_table_sample(table: Table,
                             sampler: RowSampler | BlockSampler,
                             fraction: float,
                             seed: object) -> MaterializedSample:
    """Draw one reusable sample from a table (Figure 2, steps 1-2a).

    Reproduces :class:`SampleCF`'s historical draw exactly: the same
    ``make_rng(seed)`` stream, the same position/row/rid sequence — so
    the facade's single-call results are bit-identical to pre-engine
    releases for a fixed seed.
    """
    if table.num_rows == 0:
        raise EstimationError("cannot estimate over an empty table")
    rng = make_rng(seed)
    r = rows_for_fraction(table.num_rows, fraction)
    if isinstance(sampler, BlockSampler):
        block = sampler.sample_records(table.heap.page_view(), r, rng)
        rows = tuple(decode_record(table.schema, record)
                     for record in block.records)
        return MaterializedSample(
            fraction=fraction, seed=seed, path="block", rows=rows,
            rids=tuple(block.rids),
            extra={"pages_sampled": len(block.page_ids),
                   "pages_available": block.pages_available})
    positions = sampler.sample_positions(table.num_rows, r, rng)
    rows = tuple(table.rows_at([int(p) for p in positions]))
    rids = tuple(table.rid_at(int(p)) for p in positions)
    return MaterializedSample(fraction=fraction, seed=seed,
                              path="storage", rows=rows, rids=rids)


def materialize_histogram_sample(histogram: ColumnHistogram,
                                 sampler: RowSampler, fraction: float,
                                 seed: object) -> MaterializedSample:
    """Draw one reusable sampled histogram (the closed-form fast path)."""
    rng = make_rng(seed)
    r = rows_for_fraction(histogram.n, fraction)
    sample = sampler.sample_histogram(histogram, r, rng)
    return MaterializedSample(fraction=fraction, seed=seed,
                              path="histogram", histogram=sample)


#: Fallback LRU capacity when neither kwarg nor environment sets one.
DEFAULT_SAMPLE_CACHE_SIZE = 64

#: Environment override for the default capacity (advisor runs over
#: many tables may want more; memory-constrained workers, less).
SAMPLE_CACHE_SIZE_ENV = "REPRO_SAMPLE_CACHE_SIZE"


def resolve_sample_cache_size(size: int | None = None) -> int:
    """The LRU capacity to use: explicit kwarg > environment > default.

    Every place that builds a :class:`SampleCache` without an explicit
    size (engines, process-pool workers) funnels through this, so one
    ``REPRO_SAMPLE_CACHE_SIZE`` setting governs the whole process tree.
    """
    if size is not None:
        return int(size)
    raw = os.environ.get(SAMPLE_CACHE_SIZE_ENV)
    if raw is None or not raw.strip():
        return DEFAULT_SAMPLE_CACHE_SIZE
    try:
        return int(raw)
    except ValueError:
        raise EstimationError(
            f"{SAMPLE_CACHE_SIZE_ENV} must be an integer, got {raw!r}")


class SampleCache:
    """Thread-safe LRU over materialized samples with single-flight.

    ``get_or_create`` returns ``(sample, was_hit)``. Concurrent callers
    asking for the same key block until the one materializing thread
    finishes; a failed materialization wakes waiters so one of them
    retries (and surfaces the error if it persists).
    """

    def __init__(self, capacity: int | None = None) -> None:
        capacity = resolve_sample_cache_size(capacity)
        if capacity <= 0:
            raise EstimationError(
                f"sample cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, MaterializedSample] = \
            OrderedDict()
        self._pending: dict[tuple, threading.Event] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get_or_create(self, key: tuple,
                      factory: Callable[[], MaterializedSample],
                      ) -> tuple[MaterializedSample, bool]:
        while True:
            with self._lock:
                if key in self._entries:
                    self._entries.move_to_end(key)
                    return self._entries[key], True
                event = self._pending.get(key)
                if event is None:
                    event = threading.Event()
                    self._pending[key] = event
                    is_creator = True
                else:
                    is_creator = False
            if not is_creator:
                event.wait()
                continue  # entry is now cached, or creation failed
            try:
                value = factory()
            except BaseException:
                with self._lock:
                    self._pending.pop(key, None)
                event.set()
                raise
            with self._lock:
                self._entries[key] = value
                self._entries.move_to_end(key)
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                self._pending.pop(key, None)
            event.set()
            return value, False

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


class EngineStats:
    """Thread-safe reuse counters the acceptance tests assert on.

    The ``*_store_*`` fields are the disk tier's movement: a sample (or
    finished estimate) loaded from a persistent
    :class:`~repro.store.store.SampleStore` counts as a store hit, not
    a materialization — a fully warm run therefore reports
    ``samples_materialized == 0``. ``size_kernel_hits`` /
    ``size_scalar_fallbacks`` count compressed *blocks* (leaf pages,
    or one whole index for index-scoped algorithms) sized by the
    vectorized kernels versus the scalar compress path. When
    constructed with a ``cache`` backref, :meth:`as_dict` additionally
    reports the memory tier's current size and capacity as gauges
    (they are not counters and never participate in :meth:`merge`).
    """

    FIELDS = ("requests", "unique_requests", "trials",
              "samples_materialized", "sample_cache_hits",
              "sample_rows_drawn", "indexes_built", "index_reuse_hits",
              "estimates_computed", "sample_store_hits",
              "sample_store_writes", "estimate_store_hits",
              "estimate_store_writes", "size_kernel_hits",
              "size_scalar_fallbacks")

    def __init__(self, cache: "SampleCache | None" = None) -> None:
        self._lock = threading.Lock()
        self._cache = cache
        self._counts: dict[str, int] = {name: 0 for name in self.FIELDS}

    def add(self, name: str, amount: int = 1) -> None:
        if name not in self._counts:
            raise EstimationError(f"unknown engine stat {name!r}")
        with self._lock:
            self._counts[name] += amount

    def __getitem__(self, name: str) -> int:
        with self._lock:
            return self._counts[name]

    def snapshot(self) -> dict[str, int]:
        """A point-in-time copy of all counters."""
        with self._lock:
            return dict(self._counts)

    @staticmethod
    def delta(before: dict[str, int], after: dict[str, int],
              ) -> dict[str, int]:
        """Counter movement between two snapshots."""
        return {name: after[name] - before.get(name, 0) for name in after}

    def merge(self, other: "EngineStats | dict") -> None:
        """Fold another counter set (or snapshot dict) into this one.

        This is how batch-local counters reach an engine's global stats
        and how process-pool worker deltas reach a batch's counters —
        one atomic merge instead of racy before/after snapshots.
        """
        counts = other.snapshot() if isinstance(other, EngineStats) \
            else other
        with self._lock:
            for name, amount in counts.items():
                if name not in self._counts:
                    raise EstimationError(f"unknown engine stat {name!r}")
                self._counts[name] += amount

    def as_dict(self) -> dict[str, Any]:
        """Counters plus, when a cache is attached, its size gauges."""
        data: dict[str, Any] = self.snapshot()
        if self._cache is not None:
            data["sample_cache_size"] = len(self._cache)
            data["sample_cache_capacity"] = self._cache.capacity
        return data
