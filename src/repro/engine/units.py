"""Executable plan units: picklable (node, trial) work items.

The engine reduces an :class:`~repro.engine.plan.EstimationPlan` to a
flat list of :class:`PlanUnit` objects — one per (node, trial) — whose
results are order-aligned with the list. A unit carries everything its
estimation needs (the request, the trial's resolved seed, the trial's
sample-cache key) and *none* of the engine's runtime state, which makes
units plain data: ``pickle.dumps(unit)`` round-trips, so a process-pool
executor can ship units to worker processes and replay them there
bit-identically.

Runtime state travels separately as a :class:`UnitContext` (the sample
cache to share and the stats counter to charge). In-process executors
pass the engine's own context; process-pool workers build one private
context per worker process. Because every unit's randomness was resolved
at plan time, the *estimates* are byte-identical either way — only the
cache-hit accounting differs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.samplecf import SampleCFEstimate
from repro.engine.requests import EstimationRequest
from repro.engine.samples import (EngineStats, MaterializedSample,
                                  SampleCache, materialize_histogram_sample,
                                  materialize_table_sample)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.plan import EstimationPlan


@dataclass
class UnitContext:
    """Runtime state a unit executes against (never pickled)."""

    cache: SampleCache
    stats: EngineStats


@dataclass(frozen=True)
class PlanUnit:
    """One (node, trial) estimation unit, fully resolved at plan time.

    Units are self-contained descriptions: executing one requires no
    engine, only a :class:`UnitContext` to share a cache and charge
    stats to. Calling a unit with no context runs it against a fresh
    throwaway context (useful for tests and one-off replays).
    """

    request: EstimationRequest
    trial: int
    #: The trial's resolved seed (an int, or a Generator when opaque).
    seed: object
    #: The trial's sample-cache key; ``None`` means uncacheable.
    sample_key: tuple | None

    def __call__(self, context: UnitContext | None = None,
                 ) -> SampleCFEstimate:
        return run_plan_unit(self, context)


def plan_units(plan: "EstimationPlan") -> tuple[PlanUnit, ...]:
    """Flatten a plan into its execution units, in canonical order.

    The order — nodes as planned, trials within each node — is the
    order executors must preserve so the engine can fan results back
    out to batch positions.
    """
    return tuple(
        PlanUnit(request=node.request, trial=trial,
                 seed=node.trial_seeds[trial],
                 sample_key=node.sample_keys[trial])
        for node in plan.nodes for trial in range(node.trials))


def run_plan_unit(unit: PlanUnit,
                  context: UnitContext | None = None) -> SampleCFEstimate:
    """Execute one unit: materialize (or reuse) its sample, estimate.

    This is the single entry point every executor funnels through; it
    is a top-level function on purpose so process-pool workers can
    import it by reference.
    """
    if context is None:
        context = UnitContext(cache=SampleCache(8), stats=EngineStats())
    if unit.request.is_table:
        return run_table_unit(unit, context)
    return run_histogram_unit(unit, context)


def _sample_for(unit: PlanUnit,
                context: UnitContext) -> MaterializedSample:
    request = unit.request
    if request.is_table:
        def factory() -> MaterializedSample:
            return materialize_table_sample(
                request.table, request.sampler, request.fraction,
                unit.seed)
    else:
        def factory() -> MaterializedSample:
            return materialize_histogram_sample(
                request.histogram, request.sampler, request.fraction,
                unit.seed)
    if unit.sample_key is None:
        sample = factory()
        hit = False
    else:
        sample, hit = context.cache.get_or_create(unit.sample_key,
                                                  factory)
    if hit:
        context.stats.add("sample_cache_hits")
    else:
        context.stats.add("samples_materialized")
        context.stats.add("sample_rows_drawn", sample.sample_rows)
    return sample


def run_table_unit(unit: PlanUnit,
                   context: UnitContext) -> SampleCFEstimate:
    """The literal Figure 2 path: sample rows, index them, compress."""
    request = unit.request
    sample = _sample_for(unit, context)
    entry = sample.index_for(
        request.table, request.columns, request.kind,
        request.page_size, request.fill_factor,
        on_build=lambda: context.stats.add("indexes_built"),
        on_reuse=lambda: context.stats.add("index_reuse_hits"))
    result = entry.index.compress(
        request.algorithm, accounting=request.accounting,
        repack_pages=request.repack)
    context.stats.add("estimates_computed")
    return SampleCFEstimate(
        estimate=result.compression_fraction,
        sample_rows=len(sample.rows),
        sampling_fraction=request.fraction,
        algorithm=request.algorithm.name,
        accounting=request.accounting,
        path=sample.path,
        uncompressed_sample_bytes=result.uncompressed_bytes,
        compressed_sample_bytes=result.compressed_bytes,
        sample_distinct=entry.distinct,
        details={"pages_before": result.pages_before,
                 "pages_after": result.pages_after, **sample.extra})


def run_histogram_unit(unit: PlanUnit,
                       context: UnitContext) -> SampleCFEstimate:
    """The closed-form fast path over a sampled histogram."""
    request = unit.request
    sample = _sample_for(unit, context)
    histogram = sample.histogram
    estimate = request.algorithm.cf_from_histogram(
        histogram, page_size=request.page_size,
        record_bytes=request.record_bytes,
        fill_factor=request.fill_factor)
    context.stats.add("estimates_computed")
    uncompressed = histogram.total_bytes
    return SampleCFEstimate(
        estimate=estimate,
        sample_rows=histogram.n,
        sampling_fraction=request.fraction,
        algorithm=request.algorithm.name,
        accounting=request.accounting,
        path="histogram",
        uncompressed_sample_bytes=uncompressed,
        compressed_sample_bytes=round(estimate * uncompressed),
        sample_distinct=histogram.d,
        details={})
