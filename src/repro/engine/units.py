"""Executable plan units: picklable (node, trial) work items.

The engine reduces an :class:`~repro.engine.plan.EstimationPlan` to a
flat list of :class:`PlanUnit` objects — one per (node, trial) — whose
results are order-aligned with the list. A unit carries everything its
estimation needs (the request, the trial's resolved seed, the trial's
sample-cache key) and *none* of the engine's runtime state, which makes
units plain data: ``pickle.dumps(unit)`` round-trips, so a process-pool
executor can ship units to worker processes and replay them there
bit-identically.

Runtime state travels separately as a :class:`UnitContext` (the sample
cache to share, the stats counter to charge, and optionally the
persistent :class:`~repro.store.store.SampleStore` forming the disk
tier). In-process executors pass the engine's own context; process-pool
workers build one private context per worker process (sharing the
parent's store, when set). Because every unit's randomness was resolved
at plan time, the *estimates* are byte-identical either way — only the
cache-hit accounting differs.

With a store attached, a unit resolves in tier order:

1. finished estimate on disk — returns without touching any sample;
2. sample in the memory LRU — shared across this process's batches;
3. sample on disk — decoded rows land in the memory LRU;
4. materialize — drawn from the source, then written through to both
   tiers so every later run (in any process) hits.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, TYPE_CHECKING, TypeVar

from repro.core.samplecf import SampleCFEstimate
from repro.engine.requests import EstimationRequest
from repro.engine.samples import (EngineStats, MaterializedSample,
                                  SampleCache, materialize_histogram_sample,
                                  materialize_table_sample)
from repro.faults import (DEFAULT_RETRY_POLICY, NULL_INJECTOR, Deadline,
                          FaultInjector, NullInjector, RetryPolicy)
from repro.obs import NULL_TRACER

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.plan import EstimationPlan
    from repro.obs import NullTracer, Tracer
    from repro.store.store import SampleStore

_T = TypeVar("_T")


@dataclass
class UnitContext:
    """Runtime state a unit executes against (never pickled)."""

    cache: SampleCache
    stats: EngineStats
    #: Disk tier; ``None`` keeps the engine memory-only.
    store: "SampleStore | None" = None
    #: Span sink; the default :data:`~repro.obs.NULL_TRACER` keeps the
    #: unit path allocation-free when tracing is off.
    tracer: "Tracer | NullTracer" = NULL_TRACER
    #: Execution budget shared by executors (skip units past it) and
    #: store I/O (cap retry sleeps); ``None`` means unbounded.
    deadline: "Deadline | None" = None
    #: Retry policy for *transient* store failures; permanent failures
    #: and exhausted budgets degrade exactly as before.
    retry: RetryPolicy = DEFAULT_RETRY_POLICY
    #: Fault hooks for engine-side sites; the default no-op keeps the
    #: hot path at one attribute check, mirroring the tracer.
    injector: "FaultInjector | NullInjector" = NULL_INJECTOR
    #: Unit indexes that absorbed a fault by degrading (lost cache
    #: reuse or persistence, ran on a fallback path). ``None`` disables
    #: the per-unit tracking; counters still move either way.
    degraded: "set[int] | None" = field(default_factory=set)
    #: Per-batch store-counter sink. The store handle is shared across
    #: concurrent batches, so its handle-global ``counters`` cannot
    #: attribute movement to one batch; when set, every store call on
    #: this batch's unit path additionally mirrors its movement here
    #: (see :meth:`SampleStore.attributed`), exactly like the
    #: batch-local :class:`EngineStats`.
    store_counters: "dict[str, int] | None" = None


@dataclass(frozen=True)
class UnitFailure:
    """A typed non-result: the unit was accounted for but not executed.

    Executors emit these in result slots (instead of raising) when a
    deadline expires, so :meth:`EstimationEngine.execute` can report
    every submitted unit exactly once in a
    :class:`~repro.engine.requests.PartialBatchResult`.
    """

    index: int
    trial: int
    kind: str = "deadline"
    detail: str = ""


def deadline_failure(unit: "PlanUnit",
                     context: UnitContext) -> UnitFailure:
    """The canonical deadline-exceeded slot value, counted once."""
    context.stats.add("deadline_skipped_units")
    context.tracer.event("unit.deadline_skipped", unit=unit.index,
                         trial=unit.trial)
    return UnitFailure(index=unit.index, trial=unit.trial,
                       kind="deadline",
                       detail="deadline expired before execution")


def _note_degraded(context: UnitContext, unit: "PlanUnit",
                   reason: str) -> None:
    """Record one absorbed fault: counters, trace event, per-unit mark."""
    context.stats.add("degraded_units")
    if context.degraded is not None:
        context.degraded.add(unit.index)
    context.tracer.event("unit.degraded", unit=unit.index, reason=reason)


def _with_store_retries(context: UnitContext, unit: "PlanUnit",
                        op: str, fn: Callable[[], _T]) -> _T:
    """Run a store operation, retrying transient failures only.

    Retry timing derives from the unit's resolved seed (decorrelated
    jitter, deterministic), sleeps are capped by the context deadline,
    and only :class:`~repro.errors.TransientStoreError` retries —
    permanent failures propagate immediately so callers degrade without
    burning the budget. On give-up the last transient error propagates
    and the existing ``except StoreError`` degradation paths take over.
    """
    from repro.errors import TransientStoreError

    policy = context.retry
    attempt = 0
    store = context.store
    sink = context.store_counters
    while True:
        try:
            if store is None or sink is None:
                return fn()
            with store.attributed(sink):
                return fn()
        except TransientStoreError as exc:
            attempt += 1
            context.stats.add("retry_attempts")
            context.tracer.event("retry.attempt", op=op,
                                 unit=unit.index, attempt=attempt,
                                 error=str(exc))
            if attempt >= policy.max_attempts:
                context.stats.add("retry_giveups")
                raise
            seed = unit.seed if isinstance(unit.seed, int) else 0
            delay = policy.delay_for(seed, attempt)
            deadline = context.deadline
            if deadline is not None:
                remaining = deadline.remaining()
                if remaining <= 0:
                    context.stats.add("retry_giveups")
                    raise
                delay = min(delay, remaining)
            if delay > 0:
                time.sleep(delay)


@dataclass(frozen=True)
class PlanUnit:
    """One (node, trial) estimation unit, fully resolved at plan time.

    Units are self-contained descriptions: executing one requires no
    engine, only a :class:`UnitContext` to share a cache and charge
    stats to. Calling a unit with no context runs it against a fresh
    throwaway context (useful for tests and one-off replays).
    """

    request: EstimationRequest
    trial: int
    #: The trial's resolved seed (an int, or a Generator when opaque).
    seed: object
    #: The trial's sample-cache key; ``None`` means uncacheable.
    sample_key: tuple | None
    #: Position in the plan's flat unit list — the unit's identity in
    #: trace records (``-1`` for hand-built units outside a plan).
    #: Never part of a store key: fingerprints enumerate their fields
    #: explicitly.
    index: int = -1

    def __call__(self, context: UnitContext | None = None,
                 ) -> SampleCFEstimate:
        return run_plan_unit(self, context)


def plan_units(plan: "EstimationPlan") -> tuple[PlanUnit, ...]:
    """Flatten a plan into its execution units, in canonical order.

    The order — nodes as planned, trials within each node — is the
    order executors must preserve so the engine can fan results back
    out to batch positions.
    """
    flat = ((node, trial)
            for node in plan.nodes for trial in range(node.trials))
    return tuple(
        PlanUnit(request=node.request, trial=trial,
                 seed=node.trial_seeds[trial],
                 sample_key=node.sample_keys[trial],
                 index=position)
        for position, (node, trial) in enumerate(flat))


def run_plan_unit(unit: PlanUnit,
                  context: UnitContext | None = None) -> SampleCFEstimate:
    """Execute one unit: materialize (or reuse) its sample, estimate.

    This is the single entry point every executor funnels through; it
    is a top-level function on purpose so process-pool workers can
    import it by reference.
    """
    if context is None:
        context = UnitContext(cache=SampleCache(8), stats=EngineStats())
    tracer = context.tracer
    if not tracer.enabled:
        return _execute_unit(unit, context)
    request = unit.request
    with tracer.span("unit.run", unit=unit.index, trial=unit.trial,
                     algorithm=request.algorithm.name,
                     fraction=float(request.fraction),
                     label=request.label):
        return _execute_unit(unit, context)


def _execute_unit(unit: PlanUnit,
                  context: UnitContext) -> SampleCFEstimate:
    if unit.request.is_table:
        return run_table_unit(unit, context)
    return run_histogram_unit(unit, context)


def _sample_for(unit: PlanUnit,
                context: UnitContext) -> MaterializedSample:
    request = unit.request
    tracer = context.tracer
    if request.is_table:
        def _draw() -> MaterializedSample:
            return materialize_table_sample(
                request.table, request.sampler, request.fraction,
                unit.seed)
    else:
        def _draw() -> MaterializedSample:
            return materialize_histogram_sample(
                request.histogram, request.sampler, request.fraction,
                unit.seed)

    def materialize() -> MaterializedSample:
        with tracer.span("sample.materialize", unit=unit.index) as span:
            sample = _draw()
            span.annotate(rows=sample.sample_rows)
            return sample
    if unit.sample_key is None:
        sample = materialize()
        context.stats.add("samples_materialized")
        context.stats.add("sample_rows_drawn", sample.sample_rows)
        return sample
    store = context.store
    if store is None:
        sample, hit = context.cache.get_or_create(unit.sample_key,
                                                  materialize)
        if hit:
            context.stats.add("sample_cache_hits")
        else:
            context.stats.add("samples_materialized")
            context.stats.add("sample_rows_drawn", sample.sample_rows)
        return sample
    # Two-tier lookup: the disk probe nests inside the memory cache's
    # single-flight factory, so a memory hit never touches disk and
    # racing threads collapse to one disk read (or one materialize).
    # The store is a cache tier, not a dependency: any StoreError
    # (disk full, permissions, unreadable entry) degrades to a plain
    # materialize so an estimable batch never dies on persistence.
    from repro.errors import StoreError
    from repro.store.fingerprint import (sample_store_key,
                                         source_fingerprint)

    tier = {"disk_hit": False, "stored": False}

    def factory() -> MaterializedSample:
        meta = {"source": source_fingerprint(unit),
                "fraction": float(request.fraction),
                "seed": int(unit.seed)}
        with tracer.span("store.get", kind="sample",
                         unit=unit.index) as span:
            try:
                sample, disk_hit = _with_store_retries(
                    context, unit, "sample.get_or_create",
                    lambda: store.get_or_create_sample(
                        sample_store_key(unit), materialize, meta))
            except StoreError:
                span.annotate(hit=False, error=True)
                context.stats.add("store_degraded_reads")
                _note_degraded(context, unit, "store_read")
                return materialize()
            span.annotate(hit=disk_hit)
        tier["disk_hit"] = disk_hit
        tier["stored"] = not disk_hit
        return sample

    sample, mem_hit = context.cache.get_or_create(unit.sample_key,
                                                  factory)
    if mem_hit:
        context.stats.add("sample_cache_hits")
    elif tier["disk_hit"]:
        context.stats.add("sample_store_hits")
    else:
        context.stats.add("samples_materialized")
        context.stats.add("sample_rows_drawn", sample.sample_rows)
        if tier["stored"]:
            context.stats.add("sample_store_writes")
    return sample


def _estimate_tier(unit: PlanUnit, context: UnitContext):
    """``(store, key)`` when the unit's estimate may persist, else Nones.

    Opaque-seed units have no reproducible identity, so they bypass the
    store entirely (exactly like the memory cache).
    """
    if context.store is None or unit.sample_key is None:
        return None, None
    from repro.store.fingerprint import estimate_store_key

    return context.store, estimate_store_key(unit)


def _stored_estimate(unit: PlanUnit, context: UnitContext, store,
                     key) -> SampleCFEstimate | None:
    if store is None:
        return None
    from repro.errors import StoreError

    with context.tracer.span("store.get", kind="estimate",
                             unit=unit.index) as span:
        try:
            cached = _with_store_retries(
                context, unit, "estimate.get",
                lambda: store.get_estimate(key))
        except StoreError:  # unreadable store == miss, never a crash
            span.annotate(hit=False, error=True)
            context.stats.add("store_degraded_reads")
            _note_degraded(context, unit, "estimate_read")
            return None
        hit = isinstance(cached, SampleCFEstimate)
        span.annotate(hit=hit)
    if hit:
        return cached
    return None


def _persist_estimate(unit: PlanUnit, context: UnitContext, store, key,
                      estimate: SampleCFEstimate) -> None:
    if store is None:
        return
    from repro.errors import StoreError
    from repro.store.fingerprint import source_fingerprint

    with context.tracer.span("store.put", kind="estimate",
                             unit=unit.index):
        try:
            _with_store_retries(
                context, unit, "estimate.put",
                lambda: store.put_estimate(
                    key, estimate,
                    meta={"source": source_fingerprint(unit),
                          "algorithm": estimate.algorithm}))
        except StoreError:  # a cache-tier write failure loses only reuse
            context.stats.add("store_degraded_writes")
            _note_degraded(context, unit, "estimate_write")
            return
    context.stats.add("estimate_store_writes")


def run_table_unit(unit: PlanUnit,
                   context: UnitContext) -> SampleCFEstimate:
    """The literal Figure 2 path: sample rows, index them, compress."""
    request = unit.request
    store, estimate_key = _estimate_tier(unit, context)
    cached = _stored_estimate(unit, context, store, estimate_key)
    if cached is not None:
        context.stats.add("estimate_store_hits")
        return cached
    sample = _sample_for(unit, context)
    entry = sample.index_for(
        request.table, request.columns, request.kind,
        request.page_size, request.fill_factor,
        on_build=lambda: context.stats.add("indexes_built"),
        on_reuse=lambda: context.stats.add("index_reuse_hits"))
    # Size-only path: the estimator consumes sizes, not blobs, so the
    # vectorized kernels compute payloads directly (bit-identical to
    # compress(); the parity suite and the store contract rely on it).
    with context.tracer.span("kernel.size", unit=unit.index,
                             algorithm=request.algorithm.name):
        result = entry.index.estimate_compression(
            request.algorithm, accounting=request.accounting,
            repack_pages=request.repack,
            on_kernel=lambda: context.stats.add("size_kernel_hits"),
            on_fallback=lambda: context.stats.add("size_scalar_fallbacks"))
    context.stats.add("estimates_computed")
    estimate = SampleCFEstimate(
        estimate=result.compression_fraction,
        sample_rows=len(sample.rows),
        sampling_fraction=request.fraction,
        algorithm=request.algorithm.name,
        accounting=request.accounting,
        path=sample.path,
        uncompressed_sample_bytes=result.uncompressed_bytes,
        compressed_sample_bytes=result.compressed_bytes,
        sample_distinct=entry.distinct,
        details={"pages_before": result.pages_before,
                 "pages_after": result.pages_after, **sample.extra})
    _persist_estimate(unit, context, store, estimate_key, estimate)
    return estimate


def run_histogram_unit(unit: PlanUnit,
                       context: UnitContext) -> SampleCFEstimate:
    """The closed-form fast path over a sampled histogram."""
    request = unit.request
    store, estimate_key = _estimate_tier(unit, context)
    cached = _stored_estimate(unit, context, store, estimate_key)
    if cached is not None:
        context.stats.add("estimate_store_hits")
        return cached
    sample = _sample_for(unit, context)
    histogram = sample.histogram
    estimate = request.algorithm.cf_from_histogram(
        histogram, page_size=request.page_size,
        record_bytes=request.record_bytes,
        fill_factor=request.fill_factor)
    context.stats.add("estimates_computed")
    uncompressed = histogram.total_bytes
    result = SampleCFEstimate(
        estimate=estimate,
        sample_rows=histogram.n,
        sampling_fraction=request.fraction,
        algorithm=request.algorithm.name,
        accounting=request.accounting,
        path="histogram",
        uncompressed_sample_bytes=uncompressed,
        compressed_sample_bytes=round(estimate * uncompressed),
        sample_distinct=histogram.d,
        details={})
    _persist_estimate(unit, context, store, estimate_key, result)
    return result
