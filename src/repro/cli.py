"""Command-line interface.

The library's equivalent of SQL Server's
``sp_estimate_data_compression_savings``: point it at a workload (a
named scenario or explicit n/d/k parameters), pick a compression
algorithm and a sampling fraction, and get the estimate — optionally
with repeated trials, the exact answer, and the relevant analytic
bounds.

Examples::

    python -m repro algorithms
    python -m repro scenarios
    python -m repro experiments
    python -m repro estimate --scenario customer_names --fraction 0.01
    python -m repro estimate --n 1000000 --d 500 --k 20 \
        --algorithm global_dictionary --trials 50 --truth
    python -m repro estimate-batch spec.json --executor process
    echo '{"workloads": {...}, "requests": [...]}' | \
        python -m repro estimate-batch -
    python -m repro estimate-batch spec.json --store-dir ~/.repro-store
    python -m repro worker serve --port 7071 --store-dir /shared/store
    python -m repro estimate-batch spec.json --executor remote \
        --workers hostA:7071,hostB:7071 --store-dir /shared/store
    python -m repro estimate --scenario customer_names --trials 32 \
        --adaptive --tolerance 0.005
    python -m repro advise design.json --what-if --max-trials 5
    python -m repro advise design.json --what-if --no-prune \
        --executor process
    python -m repro estimate-batch spec.json --trace trace.jsonl
    python -m repro trace summarize trace.jsonl --top 5
    python -m repro serve --port 8080 --store-dir ~/.repro-store
    python -m repro cache stats --store-dir ~/.repro-store
    python -m repro cache prune --store-dir ~/.repro-store \
        --max-bytes 104857600
    python -m repro cache clear --store-dir ~/.repro-store
    python -m repro bounds theorem1 --n 100000000 --fraction 0.01
    python -m repro bounds theorem2 --n 1000000 --d 1000 --k 20 --p 2 \
        --fraction 0.01
    python -m repro bounds theorem3 --alpha 0.5 --fraction 0.01 --k 20 \
        --p 2

The ``estimate-batch`` spec is a JSON object with named ``workloads``
(a scenario reference or explicit ``n``/``d``/``k``, optionally
``"storage": true`` to materialise a real table) and a list of
``requests`` over them; all requests run as one shared-sample
:class:`~repro.engine.engine.EstimationEngine` batch and the output
JSON reports per-request estimates plus the engine's reuse stats.

The ``advise`` spec describes a physical-design problem: named
``tables`` (workload shorthands, or ``"columns": [[name, k, d], ...]``
with ``"n"`` for a multi-column table), a ``queries`` list
(``table`` / ``columns`` / ``selectivity`` / ``weight``), and a
``storage_bound_bytes``. The default path is the eager engine-backed
advisor; ``--what-if`` switches to the lazy
:class:`~repro.advisor.whatif.WhatIfAdvisor`, which prunes candidates
via Theorem 1/2 CF bounds and allocates trials adaptively — the JSON
output then includes the pruning/early-stop report alongside the
selected design (identical to the eager one for the same seed).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Any, Sequence

import numpy as np

from repro._version import __version__
from repro.errors import ReproError
from repro.compression.registry import get_algorithm, list_algorithms
from repro.core.bounds import (dict_large_d_bound, dict_small_d_bound,
                               ns_stddev_bound)
from repro.core.metrics import ErrorSummary, ratio_error
from repro.core.samplecf import SampleCF, true_cf_histogram
from repro.engine.engine import EstimationEngine
from repro.engine.requests import PartialBatchResult
from repro.faults import RetryPolicy
from repro.engine.executors import EXECUTOR_NAMES, make_executor
from repro.engine.requests import EstimationRequest
from repro.experiments.registry import list_experiments
from repro.experiments.report import fmt_bytes, format_table
from repro.sampling.rng import make_rng
from repro.store import SampleStore
from repro.workloads.generators import make_histogram
from repro.workloads.scenarios import SCENARIOS, get_scenario
from repro.advisor import WhatIfAdvisor, advise_from_data
from repro.obs import Tracer, one_line, read_trace, render, summarize
# The JSON spec language is shared with the HTTP service; the builders
# live in repro.service.schemas and the CLI imports them back.
from repro.service.schemas import (build_advise_query,
                                   build_advise_table,
                                   build_batch, candidate_entry,
                                   parse_spec_text,
                                   request_result_entry)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SampleCF: estimate index compression fractions "
                    "from samples (ICDE 2010 reproduction).")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("algorithms",
                        help="list registered compression algorithms")
    commands.add_parser("scenarios", help="list workload scenarios")
    commands.add_parser("experiments",
                        help="list registered paper experiments")

    estimate = commands.add_parser(
        "estimate", help="run SampleCF on a synthetic workload")
    source = estimate.add_mutually_exclusive_group(required=True)
    source.add_argument("--scenario", choices=sorted(SCENARIOS),
                        help="named workload scenario")
    source.add_argument("--n", type=int, help="rows (with --d and --k)")
    estimate.add_argument("--d", type=int, help="distinct values")
    estimate.add_argument("--k", type=int, help="CHAR column width")
    estimate.add_argument("--distribution", default="zipf",
                          help="count distribution (default: zipf)")
    estimate.add_argument("--rows", type=int, default=None,
                          help="override a scenario's row count")
    estimate.add_argument("--algorithm", default="null_suppression",
                          choices=sorted(list_algorithms()))
    estimate.add_argument("--fraction", type=float, default=0.01,
                          help="sampling fraction f (default: 0.01)")
    estimate.add_argument("--trials", type=int, default=1,
                          help="independent estimation trials (with "
                               "--adaptive: the trial budget)")
    estimate.add_argument("--adaptive", action="store_true",
                          help="staged 1/2/4/... trial allocation: stop "
                               "early once the trial-mean confidence "
                               "interval is within --tolerance of the "
                               "full-budget mean")
    estimate.add_argument("--tolerance", type=float, default=0.005,
                          help="(--adaptive) CF half-width target for "
                               "early stopping (default: 0.005)")
    estimate.add_argument("--seed", type=int, default=0)
    estimate.add_argument("--truth", action="store_true",
                          help="also compute the exact CF and the "
                               "ratio error")
    estimate.add_argument("--page-size", type=int, default=8192)
    estimate.add_argument("--store-dir", default=None,
                          help="persistent sample/estimate store "
                               "directory; repeated runs over the same "
                               "workload warm-start from disk")

    batch = commands.add_parser(
        "estimate-batch",
        help="run a JSON batch of estimates through the shared-sample "
             "engine")
    batch.add_argument("spec",
                       help="path to a JSON batch spec, or '-' for stdin")
    batch.add_argument("--seed", type=int, default=None,
                       help="override the spec's master seed")
    batch.add_argument("--executor", choices=list(EXECUTOR_NAMES),
                       default=None,
                       help="override the spec's executor choice: serial, "
                            "thread[s] (one process, GIL-bound), "
                            "process (parallel workers; requests must "
                            "be picklable), or remote (shard across "
                            "'repro worker serve' hosts)")
    batch.add_argument("--workers", default=None,
                       help="worker count for thread/process executors, "
                            "or comma-separated host:port addresses for "
                            "--executor remote (default: the "
                            "REPRO_REMOTE_WORKERS environment variable)")
    batch.add_argument("--indent", type=int, default=2,
                       help="JSON output indentation (default: 2)")
    batch.add_argument("--store-dir", default=None,
                       help="persistent sample/estimate store directory; "
                            "a repeated batch over the same workloads "
                            "reports 0 sample materializations (all "
                            "tiers served from disk)")
    batch.add_argument("--trace", default=None, metavar="FILE",
                       help="record a JSONL span trace of the run to "
                            "FILE and print a one-line summary to "
                            "stderr; estimates are bit-identical with "
                            "tracing on or off")
    batch.add_argument("--deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="batch time budget: units past it are "
                            "skipped as typed deadline failures and "
                            "the output gains a per-unit 'outcomes' "
                            "accounting instead of erroring")
    batch.add_argument("--max-retries", type=int, default=None,
                       metavar="N",
                       help="attempts per transient store failure "
                            "before degrading to re-materialization "
                            "(default: 3; backoff is deterministic "
                            "per unit seed)")

    advise = commands.add_parser(
        "advise",
        help="run the physical-design advisor over a JSON design spec")
    advise.add_argument("spec",
                        help="path to a JSON design spec, or '-' for "
                             "stdin")
    advise.add_argument("--what-if", action="store_true",
                        help="lazy what-if mode: drive the greedy loop "
                             "through the engine, pruning candidates "
                             "whose Theorem 1/2 CF bounds cannot win "
                             "and allocating trials adaptively")
    advise.add_argument("--prune", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="(what-if) bound-based pruning; --no-prune "
                             "still runs lazily but estimates every "
                             "viable candidate at the full budget")
    advise.add_argument("--adaptive",
                        action=argparse.BooleanOptionalAction,
                        default=True,
                        help="(what-if) staged trial allocation; "
                             "--no-adaptive estimates survivors at "
                             "--max-trials straight away")
    advise.add_argument("--max-trials", type=int, default=None,
                        help="per-candidate trial budget (overrides the "
                             "spec's 'trials'); the what-if winner is "
                             "always estimated at the full budget, "
                             "losers may stop early")
    advise.add_argument("--fraction", type=float, default=None,
                        help="sampling fraction (overrides the spec)")
    advise.add_argument("--storage-bound", type=float, default=None,
                        help="storage bound in bytes (overrides the "
                             "spec's 'storage_bound_bytes')")
    advise.add_argument("--seed", type=int, default=None,
                        help="override the spec's master seed")
    advise.add_argument("--executor", choices=list(EXECUTOR_NAMES),
                        default=None,
                        help="how estimation batches run")
    advise.add_argument("--workers", default=None,
                        help="worker count for thread/process executors, "
                             "or comma-separated host:port addresses "
                             "for --executor remote")
    advise.add_argument("--store-dir", default=None,
                        help="persistent sample/estimate store; repeated "
                             "advise runs over the same spec warm-start "
                             "from disk")
    advise.add_argument("--indent", type=int, default=2,
                        help="JSON output indentation (default: 2)")
    advise.add_argument("--trace", default=None, metavar="FILE",
                        help="record a JSONL span trace of the run to "
                             "FILE and print a one-line summary to "
                             "stderr; the selected design is "
                             "bit-identical with tracing on or off")

    trace = commands.add_parser(
        "trace",
        help="inspect JSONL span traces recorded with --trace")
    trace_commands = trace.add_subparsers(dest="trace_command",
                                          required=True)
    trace_summarize = trace_commands.add_parser(
        "summarize",
        help="per-phase time breakdown, unit accounting, straggler "
             "analysis, and the top-N slowest units of one trace")
    trace_summarize.add_argument("trace_file",
                                 help="path to a trace JSONL file")
    trace_summarize.add_argument("--top", type=int, default=10,
                                 help="slowest-units table size "
                                      "(default: 10)")
    trace_summarize.add_argument("--format", choices=("text", "json"),
                                 default="text", dest="fmt",
                                 help="output format (default: text)")

    cache = commands.add_parser(
        "cache",
        help="inspect and maintain a persistent sample/estimate store")
    cache_commands = cache.add_subparsers(dest="cache_command",
                                          required=True)
    cache_stats = cache_commands.add_parser(
        "stats", help="entry counts, byte totals, and quarantine state")
    cache_prune = cache_commands.add_parser(
        "prune", help="evict least-recently-used entries to a budget")
    cache_prune.add_argument("--max-bytes", type=int, required=True,
                             help="target size; LRU entries are evicted "
                                  "until the store fits")
    cache_clear = cache_commands.add_parser(
        "clear", help="remove every stored sample and estimate")
    for sub in (cache_stats, cache_prune, cache_clear):
        sub.add_argument("--store-dir", required=True,
                         help="store directory to operate on")

    worker = commands.add_parser(
        "worker",
        help="run a long-lived estimation worker for --executor remote")
    worker_commands = worker.add_subparsers(dest="worker_command",
                                            required=True)
    worker_serve = worker_commands.add_parser(
        "serve",
        help="accept unit shards from remote executors until killed")
    worker_serve.add_argument("--host", default="127.0.0.1",
                              help="interface to bind (default: "
                                   "127.0.0.1)")
    worker_serve.add_argument("--port", type=int, default=0,
                              help="port to bind; 0 picks an ephemeral "
                                   "one (printed on the ready line)")
    worker_serve.add_argument("--store-dir", default=None,
                              help="persistent sample/estimate store "
                                   "shared with the parent and the "
                                   "other workers; racing shards then "
                                   "materialize each sample once")
    worker_serve.add_argument("--simulate-cost-scale", type=float,
                              default=None,
                              help="scheduler-evaluation harness: sleep "
                                   "scale*predicted_cost seconds per "
                                   "unit to emulate off-box service "
                                   "time (estimates are unaffected)")
    worker_serve.add_argument("--fail-after-units", type=int,
                              default=None, help=argparse.SUPPRESS)

    serve = commands.add_parser(
        "serve",
        help="run the estimation HTTP service over one shared engine")
    serve.add_argument("--host", default="127.0.0.1",
                       help="interface to bind (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=0,
                       help="port to bind; 0 picks an ephemeral one "
                            "(printed on the ready line)")
    serve.add_argument("--seed", type=int, default=0,
                       help="engine master seed (results never depend "
                            "on it: specs are seed-normalized)")
    serve.add_argument("--window", type=float, default=0.02,
                       metavar="SECONDS",
                       help="micro-batch collection window; concurrent "
                            "clients arriving within it share one "
                            "engine batch (default: 0.02)")
    serve.add_argument("--store-dir", default=None,
                       help="persistent sample/estimate store shared "
                            "by every client of this service")
    serve.add_argument("--executor", choices=list(EXECUTOR_NAMES),
                       default=None,
                       help="engine executor for coalesced batches")
    serve.add_argument("--workers", type=int, default=None,
                       help="worker count for thread/process executors")
    serve.add_argument("--max-body-bytes", type=int, default=1 << 20,
                       help="reject larger request bodies with 413 "
                            "(default: 1048576)")
    serve.add_argument("--max-batch-requests", type=int, default=256,
                       help="reject larger batches with 413 "
                            "(default: 256)")
    serve.add_argument("--max-pending", type=int, default=64,
                       help="batching queue bound; a full queue "
                            "rejects with 429 (default: 64)")
    serve.add_argument("--max-concurrent", type=int, default=4,
                       help="concurrent engine execute slots; direct "
                            "(deadline/advise) runs beyond it get 503 "
                            "(default: 4)")
    serve.add_argument("--trace", default=None, metavar="FILE",
                       help="record a JSONL span trace of every batch "
                            "to FILE")
    serve.add_argument("--verbose", action="store_true",
                       help="log every HTTP request to stderr")

    lint = commands.add_parser(
        "lint",
        help="run the repro invariant linter (determinism, "
             "picklability, lock discipline)")
    lint.add_argument("paths", nargs="*",
                      help="files or directories to lint (default: the "
                           "installed repro package source)")
    lint.add_argument("--select", default=None,
                      help="comma-separated rule codes to run "
                           "exclusively, e.g. RPL001,RPL003")
    lint.add_argument("--ignore", default=None,
                      help="comma-separated rule codes to skip")
    lint.add_argument("--format", choices=("text", "json"),
                      default="text", dest="fmt",
                      help="output format (default: text)")
    lint.add_argument("--fixtures", default=None, metavar="DIR",
                      help="corpus mode: check that every fixture under "
                           "DIR fires exactly its declared rule codes "
                           "(exit 1 on any mismatch)")

    bounds = commands.add_parser(
        "bounds", help="evaluate the paper's analytic bounds")
    which = bounds.add_subparsers(dest="theorem", required=True)
    theorem1 = which.add_parser("theorem1",
                                help="NS std-dev bound (Theorem 1)")
    theorem1.add_argument("--n", type=int, required=True)
    theorem1.add_argument("--fraction", type=float, required=True)
    theorem2 = which.add_parser("theorem2",
                                help="dictionary small-d bound")
    theorem2.add_argument("--n", type=int, required=True)
    theorem2.add_argument("--d", type=int, required=True)
    theorem2.add_argument("--k", type=int, required=True)
    theorem2.add_argument("--p", type=int, default=2)
    theorem2.add_argument("--fraction", type=float, required=True)
    theorem3 = which.add_parser("theorem3",
                                help="dictionary large-d bound")
    theorem3.add_argument("--alpha", type=float, required=True)
    theorem3.add_argument("--k", type=int, required=True)
    theorem3.add_argument("--p", type=int, default=2)
    theorem3.add_argument("--fraction", type=float, required=True)
    return parser


def _cli_executor(name: str | None, workers: str | None):
    """Build the executor a CLI flag pair describes (or ``None``).

    ``--workers`` is overloaded the way the executors need it: an
    integer worker count for the local pools, a comma-separated
    ``host:port`` list for ``--executor remote``.
    """
    if name is None:
        return None
    if name == "remote":
        return make_executor(name, workers=workers)
    if workers is None:
        return make_executor(name)
    try:
        count = int(workers)
    except ValueError:
        raise ReproError(
            f"--workers must be an integer count for --executor "
            f"{name}; got {workers!r} (host:port lists are for "
            f"--executor remote)") from None
    return make_executor(name, max_workers=count)


def _cmd_algorithms() -> str:
    rows = []
    for name in list_algorithms():
        algorithm = get_algorithm(name)
        rows.append([name, algorithm.scope])
    return format_table(["algorithm", "scope"], rows)


def _cmd_scenarios() -> str:
    rows = [[scenario.name, f"char({scenario.k})",
             f"{scenario.default_n:,}", scenario.description]
            for scenario in SCENARIOS.values()]
    return format_table(["scenario", "type", "default n", "description"],
                        rows)


def _cmd_experiments() -> str:
    rows = [[spec.id, spec.paper_ref, spec.title,
             spec.bench_module or "(documented in EXPERIMENTS.md)"]
            for spec in list_experiments()]
    return format_table(["id", "paper ref", "title", "bench"], rows)


def _cmd_estimate(args: argparse.Namespace) -> str:
    if args.scenario is not None:
        histogram = get_scenario(args.scenario).build(args.rows,
                                                      seed=args.seed)
        workload = args.scenario
    else:
        if args.d is None or args.k is None:
            raise ReproError("--n needs --d and --k")
        histogram = make_histogram(args.n, args.d, args.k,
                                   distribution=args.distribution,
                                   seed=args.seed)
        workload = f"n={args.n:,} d={args.d:,} k={args.k}"
    algorithm = get_algorithm(args.algorithm)
    # Always a private engine, never the process-wide default one: the
    # int-seeded per-trial samples below are never-reusable draws that
    # must not pin rows in (or evict reusable samples from) a shared
    # cache. With --store-dir the engine is store-backed, so
    # deterministic estimates persist and re-running the same command
    # is a disk read.
    engine = EstimationEngine(seed=args.seed, store=args.store_dir)
    estimator = SampleCF(algorithm, page_size=args.page_size,
                         engine=engine)
    lines = [f"workload  : {workload} "
             f"(n={histogram.n:,}, d={histogram.d:,}, "
             f"{histogram.dtype.name})",
             f"algorithm : {algorithm.name}",
             f"fraction  : {args.fraction:.4%}"]
    if args.adaptive:
        if args.trials <= 1:
            raise ReproError("--adaptive needs --trials > 1 (the "
                             "trial budget)")
        from repro.engine.requests import EstimationRequest
        from repro.experiments.runner import run_request_trials_adaptive

        request = EstimationRequest(
            histogram=histogram, algorithm=algorithm,
            fraction=args.fraction, trials=args.trials,
            page_size=args.page_size)
        outcome = run_request_trials_adaptive(
            request, engine=engine, tolerance=args.tolerance)
        estimates = outcome.values
        point = outcome.mean
        status = "converged" if outcome.converged else "budget spent"
        halfwidth = (f"{outcome.halfwidth:.6f}"
                     if outcome.halfwidth is not None else "n/a")
        lines.append(f"estimate  : mean CF' = {point:.6f} over "
                     f"{outcome.trials_run}/{outcome.trials_budget} "
                     f"trials ({status}; stages "
                     f"{'/'.join(map(str, outcome.stages))}, "
                     f"mean-CI half-width {halfwidth} vs tolerance "
                     f"{args.tolerance})")
    elif args.trials <= 1:
        estimate = estimator.estimate_histogram(histogram, args.fraction,
                                                seed=args.seed)
        lines.append(f"estimate  : CF' = {estimate.estimate:.6f} "
                     f"({estimate.sample_rows:,} rows sampled, "
                     f"d' = {estimate.sample_distinct:,})")
        point = estimate.estimate
    else:
        # Integer trial seeds drawn from the same stream spawn_rngs
        # would use, so the numbers match the historical run_trials
        # path bit for bit — but int-seeded estimates are cacheable,
        # which is what lets --store-dir persist multi-trial runs
        # (opaque Generator seeds bypass the store by design).
        trial_seeds = make_rng(args.seed).integers(0, 2 ** 63 - 1,
                                                   size=args.trials)
        estimates = np.asarray(
            [estimator.estimate_histogram(histogram, args.fraction,
                                          seed=int(trial_seed)).estimate
             for trial_seed in trial_seeds], dtype=np.float64)
        point = float(estimates.mean())
        lines.append(f"estimate  : mean CF' = {point:.6f} over "
                     f"{args.trials} trials "
                     f"(std {float(estimates.std(ddof=1)):.6f})")
    if args.truth:
        truth = true_cf_histogram(histogram, algorithm,
                                  page_size=args.page_size)
        lines.append(f"truth     : CF  = {truth:.6f}")
        lines.append(f"ratio err : {ratio_error(truth, point):.4f}")
        if args.trials > 1:
            summary = ErrorSummary.from_estimates(truth, estimates)
            lines.append(f"bias      : {summary.bias:+.6f}   "
                         f"mean ratio err {summary.mean_ratio_error:.4f}")
    return "\n".join(lines)


def _load_batch_spec(path: str) -> dict:
    if path == "-":
        text = sys.stdin.read()
    else:
        try:
            text = pathlib.Path(path).read_text(encoding="utf-8")
        except OSError as exc:
            raise ReproError(f"cannot read batch spec {path!r}: {exc}")
    return parse_spec_text(text, what="batch spec")


def _close_and_summarize(tracer: Tracer, path: str) -> None:
    """Finish a ``--trace`` run: flush the file, one-liner to stderr."""
    tracer.close()
    print(one_line(summarize(read_trace(path))), file=sys.stderr)


def _cmd_estimate_batch(args: argparse.Namespace) -> str:
    spec = _load_batch_spec(args.spec)
    requests, spec_seed = build_batch(spec)
    seed = args.seed if args.seed is not None else spec_seed
    executor_name = args.executor or spec.get("executor", "serial")
    store_dir = args.store_dir or spec.get("store_dir")
    tracer = (Tracer.to_path(args.trace) if args.trace is not None
              else None)
    retry_policy = (RetryPolicy(max_attempts=args.max_retries)
                    if args.max_retries is not None else None)
    engine = EstimationEngine(
        seed=seed,
        executor=_cli_executor(executor_name, args.workers),
        store=store_dir,
        tracer=tracer,
        retry_policy=retry_policy)
    plan = engine.plan(requests)
    batch = engine.execute(plan, deadline=args.deadline)
    if tracer is not None:
        _close_and_summarize(tracer, args.trace)
    results = [request_result_entry(request, result)
               for request, result in zip(requests, batch.results)]
    payload = {
        "seed": seed,
        "executor": executor_name,
        "store_dir": store_dir,
        "plan": {
            "requests": plan.num_requests,
            "unique_requests": plan.num_unique,
            "trial_units": plan.num_units,
            "samples_to_materialize": plan.num_distinct_samples,
            "sample_indexes_to_build": plan.num_index_layouts,
        },
        "results": results,
        "stats": batch.stats,
    }
    if isinstance(batch, PartialBatchResult):
        payload["deadline"] = args.deadline
        payload["complete"] = batch.complete
        payload["outcome_counts"] = batch.counts()
        payload["outcomes"] = [
            {"unit": outcome.index, "trial": outcome.trial,
             "status": outcome.status,
             **({"detail": outcome.detail} if outcome.detail else {})}
            for outcome in batch.outcomes]
    indent = args.indent if args.indent and args.indent > 0 else None
    return json.dumps(payload, indent=indent)


def _cmd_advise(args: argparse.Namespace) -> str:
    spec = _load_batch_spec(args.spec)
    table_specs = spec.get("tables")
    query_specs = spec.get("queries")
    if not isinstance(table_specs, dict) or not table_specs:
        raise ReproError("advise spec needs a non-empty 'tables' object")
    if not isinstance(query_specs, list) or not query_specs:
        raise ReproError("advise spec needs a non-empty 'queries' list")
    bound = (args.storage_bound if args.storage_bound is not None
             else spec.get("storage_bound_bytes"))
    if bound is None:
        raise ReproError("advise spec needs 'storage_bound_bytes' "
                         "(or pass --storage-bound)")
    tables = {name: build_advise_table(name, tspec)
              for name, tspec in table_specs.items()}
    queries = [build_advise_query(position, item, tables)
               for position, item in enumerate(query_specs)]
    algorithms = spec.get("algorithms", ["page"])
    fraction = (args.fraction if args.fraction is not None
                else float(spec.get("fraction", 0.01)))
    trials = (args.max_trials if args.max_trials is not None
              else int(spec.get("trials", 1)))
    seed = args.seed if args.seed is not None else int(spec.get("seed", 0))
    executor_name = args.executor or spec.get("executor")
    executor = _cli_executor(executor_name, args.workers)
    store_dir = args.store_dir or spec.get("store_dir")
    payload: dict[str, Any] = {
        "mode": "what-if" if args.what_if else "eager",
        "seed": seed,
        "fraction": fraction,
        "max_trials": trials,
        "algorithms": list(algorithms),
        "storage_bound_bytes": float(bound),
        "store_dir": store_dir,
    }
    tracer = (Tracer.to_path(args.trace) if args.trace is not None
              else None)
    if args.what_if:
        advisor = WhatIfAdvisor(
            tables, queries, algorithms=algorithms, fraction=fraction,
            max_trials=trials, seed=seed, executor=executor,
            store=store_dir, prune=args.prune, adaptive=args.adaptive,
            tracer=tracer)
        result = advisor.advise(float(bound))
        if tracer is not None:
            _close_and_summarize(tracer, args.trace)
        payload["prune"] = args.prune
        payload["adaptive"] = args.adaptive
        payload["what_if"] = result.report.as_dict()
        stats = advisor.engine.stats.snapshot()
        payload["engine"] = {
            name: stats[name]
            for name in ("trials", "samples_materialized",
                         "sample_cache_hits", "whatif_rounds",
                         "whatif_pruned", "whatif_early_stops",
                         "whatif_trials_saved")}
    elif tracer is not None:
        # A traced eager run builds the engine here so the tracer rides
        # along; engine= then carries seed/executor/store itself.
        engine = EstimationEngine(seed=seed, executor=executor,
                                  store=store_dir, tracer=tracer)
        result = advise_from_data(
            tables, queries, float(bound), algorithms=algorithms,
            fraction=fraction, trials=trials, engine=engine)
        _close_and_summarize(tracer, args.trace)
    else:
        result = advise_from_data(
            tables, queries, float(bound), algorithms=algorithms,
            fraction=fraction, trials=trials, seed=seed,
            executor=executor, store=store_dir)
    payload.update({
        "cost_before": result.cost_before,
        "cost_after": result.cost_after,
        "improvement": result.improvement,
        "bytes_used": result.bytes_used,
        "chosen": [candidate_entry(c) for c in result.chosen],
        "steps": list(result.steps),
    })
    indent = args.indent if args.indent and args.indent > 0 else None
    return json.dumps(payload, indent=indent)


def _cmd_trace(args: argparse.Namespace) -> str:
    """``trace summarize``: report over one recorded JSONL trace."""
    try:
        records = read_trace(args.trace_file)
    except OSError as exc:
        raise ReproError(
            f"cannot read trace {args.trace_file!r}: {exc}")
    except json.JSONDecodeError as exc:
        raise ReproError(
            f"trace {args.trace_file!r} is not valid JSONL: {exc}")
    if not records:
        raise ReproError(f"trace {args.trace_file!r} is empty")
    summary = summarize(records, top=args.top)
    if args.fmt == "json":
        return json.dumps(summary, indent=2)
    return render(summary)


def _cmd_cache(args: argparse.Namespace) -> str:
    store = SampleStore(args.store_dir)
    if args.cache_command == "stats":
        stats = store.stats()
        rows = [
            ["samples", f"{stats['samples']['entries']:,}",
             fmt_bytes(stats["samples"]["bytes"])],
            ["estimates", f"{stats['estimates']['entries']:,}",
             fmt_bytes(stats["estimates"]["bytes"])],
            ["quarantined", f"{stats['quarantined']['entries']:,}",
             fmt_bytes(stats["quarantined"]["bytes"])],
            ["total", f"{stats['total_entries']:,}",
             fmt_bytes(stats["total_bytes"])],
        ]
        table = format_table(["kind", "entries", "bytes"], rows,
                             title=f"store {stats['root']} "
                                   f"(format {stats['format']})")
        budget = ("unbounded" if stats["max_bytes"] is None
                  else fmt_bytes(stats["max_bytes"]))
        return f"{table}\nsize budget: {budget}"
    if args.cache_command == "prune":
        outcome = store.prune(args.max_bytes)
        return (f"evicted {outcome['evicted_entries']} entries "
                f"({fmt_bytes(outcome['evicted_bytes'])}); "
                f"{fmt_bytes(outcome['remaining_bytes'])} remain")
    removed = store.clear()
    return f"removed {removed} entries from {store.root}"


def _cmd_worker(args: argparse.Namespace) -> str:
    """Run a worker loop until interrupted (``worker serve``)."""
    from repro.engine.remote import serve

    def ready(address: tuple[str, int]) -> None:
        # The machine-readable ready line spawn_local_workers waits on.
        print(f"repro-worker-ready {address[0]}:{address[1]}",
              flush=True)

    try:
        serve(host=args.host, port=args.port, store=args.store_dir,
              simulate_cost_scale=args.simulate_cost_scale,
              fail_after_units=args.fail_after_units,
              exit_on_failure=args.fail_after_units is not None,
              ready=ready)
    except KeyboardInterrupt:
        pass
    return "worker stopped"


def _cmd_serve(args: argparse.Namespace) -> str:
    """Run the estimation HTTP service until interrupted."""
    from repro.service import ServiceConfig, serve

    config = ServiceConfig(
        host=args.host, port=args.port, seed=args.seed,
        window=args.window, store_dir=args.store_dir,
        executor=args.executor, workers=args.workers,
        max_body_bytes=args.max_body_bytes,
        max_batch_requests=args.max_batch_requests,
        max_pending=args.max_pending,
        max_concurrent=args.max_concurrent,
        trace_path=args.trace, verbose=args.verbose)

    def ready(address: tuple[str, int]) -> None:
        # Machine-readable ready line; test harnesses wait on it the
        # same way spawn_local_workers waits on repro-worker-ready.
        print(f"repro-service-ready {address[0]}:{address[1]}",
              flush=True)

    try:
        serve(config, ready=ready)
    except KeyboardInterrupt:
        pass
    return "service stopped"


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run the invariant linter; exit 1 on any finding."""
    from repro.analysis import (lint_paths, lint_project, project_config,
                                render_findings)

    if args.fixtures is not None:
        from repro.analysis.corpus import check_corpus

        outcomes = check_corpus(pathlib.Path(args.fixtures))
        failed = [outcome for outcome in outcomes if not outcome.ok]
        for outcome in outcomes:
            status = "ok" if outcome.ok else "FAIL"
            print(f"{status:4} {outcome.spec.path}")
            for expectation in outcome.missing:
                print(f"     missing expected finding: {expectation}")
            for finding in outcome.unexpected:
                print(f"     unexpected finding: {finding}")
        print(f"{len(outcomes) - len(failed)}/{len(outcomes)} "
              f"fixtures behave as declared")
        return 1 if failed else 0

    config = project_config()
    if args.select or args.ignore:
        split = (lambda raw: tuple(
            code.strip() for code in raw.split(",") if code.strip()))
        config = config.with_filters(
            select=split(args.select) if args.select else (),
            ignore=split(args.ignore) if args.ignore else ())
    if args.paths:
        result = lint_paths([pathlib.Path(p) for p in args.paths],
                            config)
    else:
        result = lint_project(config)
    print(render_findings(result.findings, args.fmt,
                          result.checked_files))
    return 0 if result.ok else 1


def _cmd_bounds(args: argparse.Namespace) -> str:
    if args.theorem == "theorem1":
        bound = ns_stddev_bound(n=args.n, f=args.fraction)
        return (f"Theorem 1: sigma(CF'_NS) <= (1/2) sqrt(1/(f n)) = "
                f"{bound:.6g}\n(n={args.n:,}, f={args.fraction:.4%}, "
                f"r={round(args.fraction * args.n):,})")
    if args.theorem == "theorem2":
        bound = dict_small_d_bound(args.n, args.d, args.k, args.p,
                                   args.fraction)
        return (f"Theorem 2 (small d): ratio error <= {bound.bound:.6g}\n"
                f"  overestimate side : {bound.overestimate:.6g}\n"
                f"  underestimate side: {bound.underestimate:.6g}")
    bound = dict_large_d_bound(args.alpha, args.fraction, args.k, args.p)
    return (f"Theorem 3 (large d): expected ratio error <= "
            f"{bound.bound:.6g}\n"
            f"  overestimate side : {bound.overestimate:.6g}\n"
            f"  underestimate side: {bound.underestimate:.6g}")


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "algorithms":
            output = _cmd_algorithms()
        elif args.command == "scenarios":
            output = _cmd_scenarios()
        elif args.command == "experiments":
            output = _cmd_experiments()
        elif args.command == "estimate":
            output = _cmd_estimate(args)
        elif args.command == "estimate-batch":
            output = _cmd_estimate_batch(args)
        elif args.command == "advise":
            output = _cmd_advise(args)
        elif args.command == "trace":
            output = _cmd_trace(args)
        elif args.command == "cache":
            output = _cmd_cache(args)
        elif args.command == "worker":
            output = _cmd_worker(args)
        elif args.command == "serve":
            output = _cmd_serve(args)
        elif args.command == "lint":
            return _cmd_lint(args)
        elif args.command == "bounds":
            output = _cmd_bounds(args)
        else:  # pragma: no cover - argparse enforces choices
            parser.error(f"unknown command {args.command!r}")
            return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(output)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
