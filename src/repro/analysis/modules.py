"""Source parsing: the project index the lint rules analyse.

One :class:`ProjectIndex` holds every analysed module's AST, plus the
derived tables rules need — functions by qualified name, classes with
their bases/fields/``__init__`` assignments, and per-module import
maps. Qualified names use ``module:Class.method`` / ``module:function``
form throughout (``repro.engine.units:run_plan_unit``).

Everything here is pure stdlib ``ast``; the linter must run in the
barest CI container.
"""

from __future__ import annotations

import ast
import pathlib
from dataclasses import dataclass, field
from typing import Iterable


@dataclass
class CallSite:
    """One call expression inside a function body."""

    node: ast.Call
    #: ``("name", func)`` for ``func(...)``; ``("attr", base, attr)``
    #: for ``base.attr(...)`` where ``base`` is the dotted prefix
    #: (``"self"``, an alias like ``"np.random"``, or ``""`` when the
    #: receiver is a computed expression).
    ref: tuple


@dataclass(eq=False)
class FunctionInfo:
    """A module-level function or a class method (nested defs fold in)."""

    qualname: str
    module: str
    name: str
    owner: str | None  # owning class name, if a method
    node: ast.AST
    calls: list[CallSite] = field(default_factory=list)


@dataclass
class FieldInfo:
    """One class-body annotated field (dataclass field or class attr)."""

    name: str
    annotation: ast.expr | None
    default: ast.expr | None
    lineno: int


@dataclass
class InitAssign:
    """One ``self.attr = value`` inside ``__init__``/``__post_init__``."""

    attr: str
    value: ast.expr
    lineno: int
    method: str


@dataclass(eq=False)
class ClassInfo:
    """A class definition plus the slices of it the rules consume."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    bases: list[str]
    is_dataclass: bool
    dataclass_repr: bool
    frozen: bool
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    fields: list[FieldInfo] = field(default_factory=list)
    init_assigns: list[InitAssign] = field(default_factory=list)


@dataclass(eq=False)
class ModuleInfo:
    """One parsed source file."""

    name: str
    path: pathlib.Path
    tree: ast.Module
    source_lines: list[str]
    #: local name -> dotted target ("repro.engine.units" for a module
    #: alias, "repro.engine.units.run_plan_unit" for an imported object).
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)


_INIT_METHODS = ("__init__", "__post_init__")


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _call_ref(call: ast.Call) -> tuple:
    func = call.func
    if isinstance(func, ast.Name):
        return ("name", func.id)
    if isinstance(func, ast.Attribute):
        base = dotted_name(func.value)
        return ("attr", base if base is not None else "", func.attr)
    return ("attr", "", "")


def _collect_calls(node: ast.AST) -> list[CallSite]:
    """Every call in a function body, nested defs/lambdas included."""
    return [CallSite(node=child, ref=_call_ref(child))
            for child in ast.walk(node)
            if isinstance(child, ast.Call)]


def _decorator_info(node: ast.ClassDef) -> tuple[bool, bool, bool]:
    """``(is_dataclass, repr_enabled, frozen)`` from the decorators."""
    is_dataclass = False
    repr_enabled = True
    frozen = False
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) \
            else decorator
        name = dotted_name(target) or ""
        if name.split(".")[-1] != "dataclass":
            continue
        is_dataclass = True
        if isinstance(decorator, ast.Call):
            for keyword in decorator.keywords:
                value = keyword.value
                flag = isinstance(value, ast.Constant) and value.value is True
                if keyword.arg == "frozen":
                    frozen = flag
                if keyword.arg == "repr":
                    repr_enabled = not (isinstance(value, ast.Constant)
                                        and value.value is False)
    return is_dataclass, repr_enabled, frozen


def _parse_class(module: str, node: ast.ClassDef) -> ClassInfo:
    is_dataclass, repr_enabled, frozen = _decorator_info(node)
    info = ClassInfo(
        qualname=f"{module}:{node.name}", module=module, name=node.name,
        node=node,
        bases=[name for name in (dotted_name(base) for base in node.bases)
               if name is not None],
        is_dataclass=is_dataclass, dataclass_repr=repr_enabled,
        frozen=frozen)
    for child in node.body:
        if isinstance(child, ast.AnnAssign) and \
                isinstance(child.target, ast.Name):
            info.fields.append(FieldInfo(
                name=child.target.id, annotation=child.annotation,
                default=child.value, lineno=child.lineno))
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            method = FunctionInfo(
                qualname=f"{module}:{node.name}.{child.name}",
                module=module, name=child.name, owner=node.name,
                node=child, calls=_collect_calls(child))
            info.methods[child.name] = method
            if child.name in _INIT_METHODS or child.name == "__setstate__":
                for stmt in ast.walk(child):
                    if not isinstance(stmt, ast.Assign):
                        continue
                    for target in stmt.targets:
                        if isinstance(target, ast.Attribute) and \
                                isinstance(target.value, ast.Name) and \
                                target.value.id == "self":
                            info.init_assigns.append(InitAssign(
                                attr=target.attr, value=stmt.value,
                                lineno=stmt.lineno, method=child.name))
    return info


def _parse_imports(tree: ast.Module) -> dict[str, str]:
    """Flatten every import in the module (function-local ones too).

    Lazy ``from x import y`` inside function bodies is a repo idiom
    (cycle guards), and reachability must see through it, so the map is
    module-wide on purpose — a deliberate over-approximation.
    """
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                imports[alias.asname or alias.name.split(".")[0]] = \
                    alias.name if alias.asname else alias.name.split(".")[0]
                if alias.asname:
                    imports[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and \
                not node.level:
            for alias in node.names:
                if alias.name == "*":
                    continue
                imports[alias.asname or alias.name] = \
                    f"{node.module}.{alias.name}"
    return imports


def module_name_for(path: pathlib.Path) -> str:
    """Dotted module name: walk up through ``__init__.py`` packages."""
    path = path.resolve()
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


def parse_module(path: pathlib.Path,
                 name: str | None = None) -> ModuleInfo:
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    name = name if name is not None else module_name_for(path)
    info = ModuleInfo(name=name, path=path, tree=tree,
                      source_lines=source.splitlines(),
                      imports=_parse_imports(tree))
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.functions[node.name] = FunctionInfo(
                qualname=f"{name}:{node.name}", module=name,
                name=node.name, owner=None, node=node,
                calls=_collect_calls(node))
        elif isinstance(node, ast.ClassDef):
            info.classes[node.name] = _parse_class(name, node)
    return info


def iter_source_files(paths: Iterable[pathlib.Path],
                      ) -> list[pathlib.Path]:
    """Expand files/directories into a sorted ``.py`` file list."""
    files: set[pathlib.Path] = set()
    for path in paths:
        path = pathlib.Path(path)
        if path.is_dir():
            files.update(child for child in path.rglob("*.py")
                         if "__pycache__" not in child.parts)
        elif path.suffix == ".py":
            files.add(path)
    return sorted(files)


class ProjectIndex:
    """Cross-module lookup tables over one set of parsed modules."""

    def __init__(self, modules: list[ModuleInfo]) -> None:
        self.modules: dict[str, ModuleInfo] = \
            {module.name: module for module in modules}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: bare name -> every project function/method carrying it (the
        #: class-hierarchy-analysis fallback for attribute calls).
        self.by_bare_name: dict[str, list[FunctionInfo]] = {}
        self.classes_by_name: dict[str, list[ClassInfo]] = {}
        for module in modules:
            for function in module.functions.values():
                self.functions[function.qualname] = function
                self.by_bare_name.setdefault(function.name, []) \
                    .append(function)
            for cls in module.classes.values():
                self.classes[cls.qualname] = cls
                self.classes_by_name.setdefault(cls.name, []).append(cls)
                for method in cls.methods.values():
                    self.functions[method.qualname] = method
                    self.by_bare_name.setdefault(method.name, []) \
                        .append(method)

    # ------------------------------------------------------------------
    # Class relationships
    # ------------------------------------------------------------------
    def resolve_class(self, module: ModuleInfo | None,
                      name: str) -> ClassInfo | None:
        """A class by local/imported/bare name, module context first."""
        bare = name.split(".")[-1]
        if module is not None:
            if bare in module.classes:
                return module.classes[bare]
            target = module.imports.get(name) or module.imports.get(bare)
            if target is not None:
                target_module, _, target_name = target.rpartition(".")
                found = self.classes.get(f"{target_module}:{target_name}")
                if found is not None:
                    return found
        candidates = self.classes_by_name.get(bare, [])
        return candidates[0] if len(candidates) == 1 else None

    def project_bases(self, cls: ClassInfo) -> list[ClassInfo]:
        module = self.modules.get(cls.module)
        resolved = []
        for base in cls.bases:
            found = self.resolve_class(module, base)
            if found is not None:
                resolved.append(found)
        return resolved

    def mro(self, cls: ClassInfo) -> list[ClassInfo]:
        """Linearised project-local ancestry (external bases opaque)."""
        seen: list[ClassInfo] = []
        queue = [cls]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.append(current)
            queue.extend(self.project_bases(current))
        return seen

    def defines_method(self, cls: ClassInfo, name: str) -> bool:
        return any(name in ancestor.methods for ancestor in self.mro(cls))

    def subclasses_of(self, roots: Iterable[ClassInfo],
                      ) -> set[ClassInfo]:
        """Transitive project subclasses of ``roots`` (roots included)."""
        root_set = set(roots)
        changed = True
        members: set[int] = {id(cls) for cls in root_set}
        result = set(root_set)
        while changed:
            changed = False
            for cls in self.classes.values():
                if id(cls) in members:
                    continue
                if any(id(base) in members
                       for base in self.project_bases(cls)):
                    members.add(id(cls))
                    result.add(cls)
                    changed = True
        return result

    def annotation_classes(self, cls: ClassInfo,
                           annotation: ast.expr | None,
                           ) -> list[ClassInfo]:
        """Project classes referenced anywhere in a field annotation."""
        if annotation is None:
            return []
        if isinstance(annotation, ast.Constant) and \
                isinstance(annotation.value, str):
            try:
                annotation = ast.parse(annotation.value,
                                       mode="eval").body
            except SyntaxError:
                return []
        module = self.modules.get(cls.module)
        found: list[ClassInfo] = []
        for node in ast.walk(annotation):
            name = None
            if isinstance(node, ast.Name):
                name = node.id
            elif isinstance(node, ast.Attribute):
                name = dotted_name(node)
            if name is None:
                continue
            resolved = self.resolve_class(module, name)
            if resolved is not None and resolved not in found:
                found.append(resolved)
        return found
