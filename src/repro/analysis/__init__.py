"""Project-specific invariant linting (``repro lint``).

The reproduction's whole value is a contract the type system cannot
see: estimates are bit-identical across serial/thread/process/remote
executors, plan units and storage pickle cleanly, and store/fingerprint
keys are stable across processes. Three shipped PRs each fixed a latent
violation of that contract found only by luck — a default ``repr``
leaking a memory address into store keys, a ``threading.Lock`` dataclass
field breaking pickling, a frozen estimate mutated in place. These
invariants are mechanical, so this package enforces them continuously
as an AST-based static-analysis pass with project-specific rule codes:

========  ==========================================================
RPL000    malformed / rationale-less / unused lint suppression
RPL001    nondeterministic entropy reachable from the estimate path
RPL002    identity-unstable ``repr`` feeding fingerprints/store keys
RPL003    unpicklable payload state without ``__getstate__`` pairing
RPL004    frozen-dataclass mutation via ``object.__setattr__``
RPL005    shared-state mutation both inside and outside the lock
========  ==========================================================

Violations carrying an intentional exception are suppressed inline with
a mandatory rationale::

    value = np.random.default_rng()  # repro-lint: ignore[RPL001] -- why

Entry points: :func:`~repro.analysis.runner.lint_paths` (lint a file or
tree under a :class:`~repro.analysis.config.LintConfig`),
:func:`~repro.analysis.runner.lint_project` (the shipped configuration
over the installed package), and the ``repro lint`` CLI. The
historical-bug corpus under ``tests/analysis_fixtures/`` reintroduces
each shipped bug as a fixture the linter must keep flagging; see
:mod:`repro.analysis.corpus`.
"""

from repro.analysis.config import LintConfig, project_config
from repro.analysis.findings import Finding, render_findings
from repro.analysis.rules import RULES, rule_codes
from repro.analysis.runner import lint_paths, lint_project

__all__ = [
    "Finding",
    "LintConfig",
    "RULES",
    "lint_paths",
    "lint_project",
    "project_config",
    "render_findings",
    "rule_codes",
]
