"""Lint configuration: what the rules anchor on in *this* project.

Every rule is parameterised rather than hard-coded so the
historical-bug corpus (standalone fixture files) can re-anchor the same
machinery on fixture-local names — see :mod:`repro.analysis.corpus`.
:func:`project_config` is the shipped configuration the CLI, the pytest
gate, and CI all use.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class LintConfig:
    """Anchors and filters for one lint run."""

    #: Entry points of the determinism contract: RPL001 flags entropy
    #: only in functions reachable from these (``module:qualname``
    #: patterns; a bare name matches in any analysed module).
    entropy_roots: tuple[str, ...] = ()
    #: Base classes whose instance state feeds canonical identities
    #: (``sampler_key``/``algorithm_key`` repr their ``vars()``):
    #: project classes held as attributes by these must repr stably
    #: (RPL002).
    identity_bases: tuple[str, ...] = ()
    #: Classes that cross pickle boundaries (plan units, shipped
    #: samples, store handles). RPL003 closes over their field
    #: annotations and ``__init__`` assignments.
    payload_roots: tuple[str, ...] = ()
    #: Module-name globs whose functions RPL001 never flags even when
    #: reachable from an entropy root. The observability layer is the
    #: sanctioned home for wall-clock reads (trace timestamps never
    #: feed an estimate); keep this list to that one tree so the rule
    #: still bites everywhere estimates are computed.
    entropy_exempt_modules: tuple[str, ...] = ()
    #: Module-name globs where RPL005 audits lock discipline.
    guard_modules: tuple[str, ...] = ()
    #: Module-name globs where RPL006 flags overbroad exception
    #: handlers that swallow silently (no re-raise, no call that could
    #: record/degrade, no counter increment). These are the layers
    #: whose failure semantics promise "absorbed *and accounted*".
    swallow_modules: tuple[str, ...] = ()
    #: Rule-code filters (empty select = all registered rules).
    select: tuple[str, ...] = ()
    ignore: tuple[str, ...] = ()
    #: Only report unused suppressions when the full rule set ran —
    #: a filtered run cannot tell unused from not-checked.
    check_unused_suppressions: bool = True

    def enabled(self, code: str) -> bool:
        if self.select and code not in self.select:
            return False
        return code not in self.ignore

    def with_filters(self, select: tuple[str, ...] = (),
                     ignore: tuple[str, ...] = ()) -> "LintConfig":
        filtered = bool(select or ignore)
        return replace(
            self, select=tuple(select), ignore=tuple(ignore),
            check_unused_suppressions=self.check_unused_suppressions
            and not filtered)


def project_config() -> LintConfig:
    """The shipped configuration for the ``repro`` package itself."""
    return LintConfig(
        entropy_roots=(
            # The single entry point every executor funnels through —
            # anything it can run must be replay-identical.
            "repro.engine.units:run_plan_unit",
            # Store keys / content fingerprints must be process-stable.
            "repro.store.fingerprint:*",
            # The public facade defines the user-facing determinism
            # boundary (its None-seed behaviour is the one documented
            # exception, suppressed inline at the source).
            "repro.core.samplecf:SampleCF.*",
        ),
        entropy_exempt_modules=(
            # Tracing needs monotonic timestamps and one wall anchor;
            # both live behind this boundary and never reach estimates.
            "repro.obs",
            "repro.obs.*",
        ),
        identity_bases=("CompressionAlgorithm", "RowSampler",
                        "BlockSampler"),
        payload_roots=("PlanUnit", "EstimationRequest",
                       "MaterializedSample", "SampleCFEstimate",
                       "SampleStore"),
        guard_modules=("repro.engine.*", "repro.store.*"),
        swallow_modules=("repro.engine", "repro.engine.*",
                         "repro.store", "repro.store.*"),
    )
