"""Lint orchestration: parse, run rules, apply suppressions."""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.analysis.config import LintConfig, project_config
from repro.analysis.findings import Finding
from repro.analysis.modules import (ModuleInfo, ProjectIndex,
                                    iter_source_files, parse_module)
from repro.analysis.rules import META_CODE, RULES, rule_codes
from repro.analysis.suppressions import (SuppressionTable,
                                         parse_suppressions)


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: list[Finding]
    checked_files: int
    #: Findings that matched an inline suppression (kept for tooling;
    #: the gate only fails on ``findings``).
    suppressed: list[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings


def _apply_suppressions(index: ProjectIndex,
                        tables: dict[str, SuppressionTable],
                        findings: list[Finding],
                        config: LintConfig) -> LintResult:
    kept: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in findings:
        table = tables.get(finding.path)
        if table is not None and \
                table.is_suppressed(finding.code, finding.line):
            suppressed.append(finding)
        else:
            kept.append(finding)
    if config.enabled(META_CODE):
        for path, table in tables.items():
            for lineno, message in table.problems:
                kept.append(Finding(path=path, line=lineno,
                                    code=META_CODE, message=message))
            if config.check_unused_suppressions:
                for suppression in table.unused():
                    kept.append(Finding(
                        path=path, line=suppression.line,
                        code=META_CODE,
                        message=f"unused suppression of "
                                f"{', '.join(suppression.codes)}: "
                                f"nothing fires here any more — "
                                f"delete it"))
    return LintResult(findings=sorted(kept),
                      checked_files=len(index.modules),
                      suppressed=sorted(suppressed))


def lint_index(index: ProjectIndex, config: LintConfig) -> LintResult:
    """Run every enabled rule over an already-parsed index."""
    findings: list[Finding] = []
    for rule in RULES:
        if config.enabled(rule.code):
            findings.extend(rule.check(index, config))
    tables = {}
    for module in index.modules.values():
        table = parse_suppressions(module.source_lines, rule_codes())
        _widen_to_statements(module, table)
        tables[str(module.path)] = table
    return _apply_suppressions(index, tables, findings, config)


def _widen_to_statements(module: ModuleInfo,
                         table: SuppressionTable) -> None:
    """Standalone suppressions cover their whole following statement."""
    import ast

    spans = {node.lineno: getattr(node, "end_lineno", node.lineno)
             for node in ast.walk(module.tree)
             if isinstance(node, ast.stmt)}
    for suppression in table.suppressions:
        if suppression.covers != suppression.line:  # standalone form
            suppression.covers_end = max(
                suppression.covers_end,
                spans.get(suppression.covers, suppression.covers))


def build_index(paths: Iterable[pathlib.Path | str]) -> ProjectIndex:
    files = iter_source_files(pathlib.Path(p) for p in paths)
    return ProjectIndex([parse_module(path) for path in files])


def lint_paths(paths: Sequence[pathlib.Path | str],
               config: LintConfig | None = None) -> LintResult:
    """Lint files/trees under ``config`` (project defaults if omitted)."""
    config = config if config is not None else project_config()
    return lint_index(build_index(paths), config)


def lint_project(config: LintConfig | None = None) -> LintResult:
    """Lint the installed ``repro`` package source itself."""
    package_dir = pathlib.Path(__file__).resolve().parent.parent
    return lint_paths([package_dir], config)
