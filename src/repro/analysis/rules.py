"""The RPL rule registry: project invariants as AST checks.

Each rule encodes one contract this reproduction depends on, each
motivated by a bug that actually shipped (see the historical corpus
under ``tests/analysis_fixtures/``):

* **RPL001** — nondeterministic entropy reachable from the estimate
  path. Bit-identical replay across executors requires every random
  draw to flow from resolved seeds.
* **RPL002** — identity-unstable ``repr`` feeding canonical keys. The
  engine reprs algorithm/sampler instance state into dedup keys and
  persistent store keys; a default object repr embeds a memory address
  (the PR 3 ``_DictionaryCodec`` bug: dedup silently defeated).
* **RPL003** — unpicklable payload state. Plan units, samples, and
  store handles cross process boundaries; a ``threading.Lock`` (or
  socket/thread/file/lambda/generator) field kills that unless a
  ``__getstate__``/``__setstate__`` pair handles it (the PR 2
  ``MaterializedSample`` bug).
* **RPL004** — frozen-dataclass mutation via ``object.__setattr__``
  outside construction (the PR 2 frozen-estimate bug).
* **RPL005** — shared state written both inside and outside
  ``with self._lock`` in concurrency-bearing modules (the PR 2
  cross-batch ``EngineStats`` corruption).
* **RPL000** — the meta-rule: suppressions must parse, name known
  codes, carry a rationale, and actually suppress something.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable

from repro.analysis.callgraph import reachable_from
from repro.analysis.config import LintConfig
from repro.analysis.findings import Finding
from repro.analysis.modules import (ClassInfo, FunctionInfo, ModuleInfo,
                                    ProjectIndex, dotted_name)


@dataclass(frozen=True)
class Rule:
    """One registered invariant check."""

    code: str
    name: str
    summary: str
    check: Callable[[ProjectIndex, LintConfig], list[Finding]]


def _finding(module: ModuleInfo, line: int, code: str, message: str,
             **details) -> Finding:
    return Finding(path=str(module.path), line=line, code=code,
                   message=message,
                   details={k: v for k, v in details.items() if v})


# ----------------------------------------------------------------------
# RPL001 — nondeterministic entropy on the estimate path
# ----------------------------------------------------------------------
#: numpy.random attributes that are fine to touch: types, and the
#: seeded constructor (flagged separately only when called seedless).
_NP_RANDOM_OK = {"Generator", "BitGenerator", "SeedSequence", "PCG64",
                 "PCG64DXSM", "MT19937", "Philox", "SFC64",
                 "default_rng"}

#: ``module -> banned callables`` for direct entropy sources.
_ENTROPY_MODULES = {
    "random": None,          # the entire stdlib random module
    "secrets": None,
    "os": {"urandom", "getrandom"},
    "time": {"time", "time_ns"},
    "uuid": {"uuid1", "uuid4"},
}


def _resolve_dotted(module: ModuleInfo, name: str) -> str:
    """Expand a local alias chain to its imported dotted origin."""
    head, _, tail = name.partition(".")
    target = module.imports.get(head)
    if target is None:
        return name
    return f"{target}.{tail}" if tail else target


def _entropy_problem(module: ModuleInfo, call: ast.Call) -> str | None:
    """Why this call is an entropy source, or ``None``."""
    name = dotted_name(call.func)
    if name is None:
        return None
    resolved = _resolve_dotted(module, name)
    parts = resolved.split(".")
    # numpy's legacy global RNG and seedless default_rng.
    if "random" in parts[:-1] and parts[0] in ("numpy", "np"):
        attr = parts[-1]
        if attr == "default_rng":
            seedless = not call.args or (
                isinstance(call.args[0], ast.Constant)
                and call.args[0].value is None)
            if seedless and not call.keywords:
                return ("seedless np.random.default_rng() draws fresh "
                        "OS entropy")
            return None
        if attr not in _NP_RANDOM_OK:
            return (f"np.random.{attr} uses the process-global legacy "
                    f"RNG")
        return None
    root = parts[0]
    banned = _ENTROPY_MODULES.get(root)
    if root in _ENTROPY_MODULES and len(parts) > 1:
        if banned is None or parts[-1] in banned:
            return f"{resolved}() is a nondeterministic source"
    # `from random import shuffle` style single-name imports.
    if len(parts) == 1:
        origin = module.imports.get(parts[0], "")
        origin_root = origin.split(".")[0]
        tail = origin.split(".")[-1]
        if origin_root in _ENTROPY_MODULES:
            allowed = _ENTROPY_MODULES[origin_root]
            if allowed is None or tail in allowed:
                return f"{origin}() is a nondeterministic source"
        if origin in ("numpy.random.default_rng",):
            seedless = not call.args and not call.keywords
            if seedless:
                return ("seedless default_rng() draws fresh OS "
                        "entropy")
    return None


def check_entropy(index: ProjectIndex,
                  config: LintConfig) -> list[Finding]:
    if not config.entropy_roots:
        return []
    findings: list[Finding] = []
    chains = reachable_from(index, config.entropy_roots)
    for function, chain in chains.items():
        module = index.modules.get(function.module)
        if module is None:
            continue
        # The sanctioned wall-clock home (repro.obs): reachable from
        # the unit path by design, exempt by configuration.
        if _module_guarded(function.module,
                           config.entropy_exempt_modules):
            continue
        in_hash_method = function.name == "__hash__"
        for site in function.calls:
            call = site.node
            problem = _entropy_problem(module, call)
            if problem is None:
                # Builtin hash() of anything is PYTHONHASHSEED-unstable
                # (except inside __hash__, which is process-local by
                # Python's own contract).
                if isinstance(call.func, ast.Name) and \
                        call.func.id == "hash" and \
                        "hash" not in module.imports and \
                        not in_hash_method:
                    problem = ("builtin hash() is randomised per "
                               "process (PYTHONHASHSEED); derive keys "
                               "via hashlib instead")
                else:
                    continue
            findings.append(_finding(
                module, call.lineno, "RPL001",
                f"{problem}; this code is reachable from the "
                f"deterministic estimate path and would break "
                f"bit-identical replay",
                reachable_via=" -> ".join(chain)))
    return findings


# ----------------------------------------------------------------------
# RPL002 — identity-unstable repr feeding fingerprints / store keys
# ----------------------------------------------------------------------
def _repr_stable(index: ProjectIndex, cls: ClassInfo) -> bool:
    if cls.is_dataclass and cls.dataclass_repr:
        return True  # generated repr is field-based, address-free
    if any(base.split(".")[-1] in ("Enum", "IntEnum", "StrEnum", "Flag")
           for ancestor in index.mro(cls) for base in ancestor.bases):
        return True
    return index.defines_method(cls, "__repr__")


def _held_project_classes(index: ProjectIndex, cls: ClassInfo,
                          ) -> list[tuple[ClassInfo, int]]:
    """Project classes instantiated into ``self.*`` during ``__init__``."""
    module = index.modules.get(cls.module)
    held: list[tuple[ClassInfo, int]] = []
    for assign in cls.init_assigns:
        if not isinstance(assign.value, ast.Call):
            continue
        name = dotted_name(assign.value.func)
        if name is None:
            continue
        target = index.resolve_class(module, name)
        if target is not None:
            held.append((target, assign.lineno))
    return held


def check_unstable_repr(index: ProjectIndex,
                        config: LintConfig) -> list[Finding]:
    if not config.identity_bases:
        return []
    roots = [cls for pattern in config.identity_bases
             for cls in index.classes_by_name.get(pattern, [])]
    identity_classes = index.subclasses_of(roots)
    findings: list[Finding] = []
    checked: set[int] = set()

    def audit(holder: ClassInfo, value_cls: ClassInfo,
              lineno: int) -> None:
        if id(value_cls) in checked:
            return
        checked.add(id(value_cls))
        module = index.modules[value_cls.module]
        if not _repr_stable(index, value_cls):
            findings.append(_finding(
                module, value_cls.node.lineno, "RPL002",
                f"{value_cls.name} is held as instance state by "
                f"{holder.name}, whose vars() are repr'd into "
                f"canonical identities (sampler_key/algorithm_key) "
                f"and persistent store keys; without __repr__ the "
                f"default repr leaks a memory address, making equal "
                f"configurations look distinct across processes "
                f"(defeats dedup and the warm-start store)"))
        # One level deeper: a held object's own held state is embedded
        # in its repr in turn.
        for nested, nested_line in _held_project_classes(index,
                                                         value_cls):
            audit(value_cls, nested, nested_line)

    for cls in sorted(identity_classes, key=lambda c: c.qualname):
        for value_cls, lineno in _held_project_classes(index, cls):
            audit(cls, value_cls, lineno)
    return findings


# ----------------------------------------------------------------------
# RPL003 — unpicklable payload state
# ----------------------------------------------------------------------
_UNPICKLABLE_TYPES = {"Lock", "RLock", "Condition", "Event",
                      "Semaphore", "BoundedSemaphore", "Barrier",
                      "Thread", "Timer", "socket", "SSLSocket",
                      "Popen", "TextIOWrapper", "BufferedReader",
                      "BufferedWriter", "BufferedRandom", "FileIO",
                      "Queue", "SimpleQueue", "ThreadPoolExecutor",
                      "ProcessPoolExecutor", "mmap", "memoryview"}

#: Names that only mean trouble when imported from typing — in this
#: codebase a bare ``Generator`` is ``np.random.Generator``, which
#: pickles fine.
_TYPING_ONLY = {"Generator", "Iterator", "IO", "TextIO", "BinaryIO"}

_TYPING_MODULES = ("typing", "collections.abc", "io")


def _unpicklable_name(module: ModuleInfo, name: str) -> str | None:
    bare = name.split(".")[-1]
    if bare in _UNPICKLABLE_TYPES:
        return bare
    if bare in _TYPING_ONLY:
        origin = module.imports.get(bare, "")
        if origin.rpartition(".")[0] in _TYPING_MODULES or \
                name.split(".")[0] in ("typing", "io"):
            return bare
    return None


def _unpicklable_expr(module: ModuleInfo,
                      node: ast.expr | None) -> str | None:
    """Why an expression produces unpicklable state, or ``None``."""
    if node is None:
        return None
    if isinstance(node, ast.Lambda):
        return "a lambda (pickle cannot serialise it)"
    if isinstance(node, ast.GeneratorExp):
        return "a generator (pickle cannot serialise it)"
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name is not None:
            if name == "open":
                return "an open file handle"
            bad = _unpicklable_name(module, name)
            if bad is not None:
                return f"a {bad} ({name}() does not pickle)"
            if name.split(".")[-1] == "field":
                for keyword in node.keywords:
                    if keyword.arg == "default_factory":
                        inner = _factory_problem(module, keyword.value)
                        if inner is not None:
                            return inner
                    if keyword.arg == "default":
                        inner = _unpicklable_expr(module, keyword.value)
                        if inner is not None:
                            return inner
    return None


def _factory_problem(module: ModuleInfo, node: ast.expr) -> str | None:
    name = dotted_name(node)
    if name is not None:
        bad = _unpicklable_name(module, name)
        if bad is not None:
            return f"a {bad} (default_factory={name})"
        if name == "open":
            return "an open file handle (default_factory=open)"
        return None
    if isinstance(node, ast.Lambda):
        # The factory itself never lands on instances — only its
        # *result* does, so a clean-bodied lambda factory is fine.
        return _unpicklable_expr(module, node.body)
    return None


def _annotation_problem(module: ModuleInfo,
                        annotation: ast.expr | None) -> str | None:
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and \
            isinstance(annotation.value, str):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return None
    for node in ast.walk(annotation):
        name = None
        if isinstance(node, ast.Attribute):
            name = dotted_name(node)
        elif isinstance(node, ast.Name):
            name = node.id
        if name is None:
            continue
        bad = _unpicklable_name(module, name)
        if bad is not None:
            return f"a {bad} (annotated)"
    return None


def _has_pickle_protocol(index: ProjectIndex, cls: ClassInfo) -> bool:
    if index.defines_method(cls, "__reduce__") or \
            index.defines_method(cls, "__reduce_ex__"):
        return True
    return index.defines_method(cls, "__getstate__") and \
        index.defines_method(cls, "__setstate__")


def payload_closure(index: ProjectIndex,
                    config: LintConfig) -> set[ClassInfo]:
    """Classes transitively held by the configured pickle-crossing roots.

    Expansion follows dataclass/class-body field annotations,
    ``self.x = ProjectClass(...)`` constructor assignments, and project
    subclassing (a field annotated with a base can hold any subclass).
    """
    closure: set[ClassInfo] = set(
        cls for name in config.payload_roots
        for cls in index.classes_by_name.get(name, []))
    changed = True
    while changed:
        changed = False
        for cls in list(closure):
            grown: list[ClassInfo] = []
            for field_info in cls.fields:
                grown.extend(index.annotation_classes(
                    cls, field_info.annotation))
            grown.extend(target for target, _ in
                         _held_project_classes(index, cls))
            grown.extend(index.subclasses_of([cls]))
            for member in grown:
                if member not in closure:
                    closure.add(member)
                    changed = True
    return closure


def check_unpicklable_payload(index: ProjectIndex,
                              config: LintConfig) -> list[Finding]:
    findings: list[Finding] = []
    payload = payload_closure(index, config) if config.payload_roots \
        else set()

    for cls in index.classes.values():
        module = index.modules[cls.module]
        exempt = _has_pickle_protocol(index, cls)
        # (a) Dataclass fields holding unpicklable state are flagged in
        # every class: besides pickling, they break replace()/compare
        # and were the exact shape of the PR 2 bug.
        if cls.is_dataclass:
            for field_info in cls.fields:
                problem = (_unpicklable_expr(module, field_info.default)
                           or _annotation_problem(module,
                                                  field_info.annotation))
                if problem is None:
                    continue
                if exempt:
                    continue
                findings.append(_finding(
                    module, field_info.lineno, "RPL003",
                    f"dataclass field {cls.name}.{field_info.name} "
                    f"holds {problem}; instances cannot pickle, so "
                    f"they cannot ship to process-pool or remote "
                    f"workers — keep it a plain attribute behind a "
                    f"__getstate__/__setstate__ pair (as "
                    f"MaterializedSample does) or suppress with a "
                    f"rationale if the class never crosses a process "
                    f"boundary"))
        # (b) Payload classes additionally audit __init__ assignments.
        if cls not in payload or exempt:
            continue
        for assign in cls.init_assigns:
            if assign.method == "__setstate__":
                continue
            problem = _unpicklable_expr(module, assign.value)
            if problem is None:
                continue
            findings.append(_finding(
                module, assign.lineno, "RPL003",
                f"{cls.name}.{assign.attr} is assigned {problem} in "
                f"{assign.method}, and {cls.name} crosses pickle "
                f"boundaries (reached from payload roots "
                f"{', '.join(config.payload_roots)}); add a "
                f"__getstate__/__setstate__ pair that rebuilds it"))
    return findings


# ----------------------------------------------------------------------
# RPL004 — frozen-dataclass mutation outside construction
# ----------------------------------------------------------------------
_SETATTR_OK = {"__init__", "__post_init__", "__new__", "__setstate__",
               "__getstate__", "__deepcopy__", "__copy__"}


def check_frozen_mutation(index: ProjectIndex,
                          config: LintConfig) -> list[Finding]:
    findings: list[Finding] = []
    for function in index.functions.values():
        if function.name in _SETATTR_OK:
            continue
        module = index.modules.get(function.module)
        if module is None:
            continue
        for site in function.calls:
            if site.ref != ("attr", "object", "__setattr__"):
                continue
            findings.append(_finding(
                module, site.node.lineno, "RPL004",
                f"object.__setattr__ in {function.qualname.split(':')[1]} "
                f"mutates a frozen dataclass outside construction; "
                f"frozen estimates/requests are shared across caches, "
                f"batches and the persistent store, so in-place "
                f"mutation corrupts every holder — build a new "
                f"instance (dataclasses.replace) or pass the data "
                f"through the constructor"))
    return findings


# ----------------------------------------------------------------------
# RPL005 — shared-state writes that dodge the lock
# ----------------------------------------------------------------------
_INIT_LIKE = {"__init__", "__post_init__", "__setstate__", "__new__"}


def _module_guarded(name: str, patterns: tuple[str, ...]) -> bool:
    import fnmatch

    return any(fnmatch.fnmatchcase(name, pattern)
               for pattern in patterns)


class _WriteCollector(ast.NodeVisitor):
    """Self-attribute writes in one class, with lock context."""

    def __init__(self) -> None:
        self.method_stack: list[str] = []
        self.lock_depth = 0
        #: attr -> list of (guarded, lineno, method)
        self.writes: dict[str, list[tuple[bool, int, str]]] = {}
        self.uses_lock = False

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.method_stack.append(node.name)
        self.generic_visit(node)
        self.method_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_With(self, node: ast.With) -> None:
        guarded = any("lock" in ast.unparse(item.context_expr).lower()
                      for item in node.items)
        if guarded:
            self.uses_lock = True
            self.lock_depth += 1
        self.generic_visit(node)
        if guarded:
            self.lock_depth -= 1

    def _note(self, target: ast.expr, lineno: int) -> None:
        # Unwrap subscript stores: self._entries[key] = ... writes
        # through self._entries.
        while isinstance(target, ast.Subscript):
            target = target.value
        if isinstance(target, ast.Attribute) and \
                isinstance(target.value, ast.Name) and \
                target.value.id == "self":
            method = self.method_stack[0] if self.method_stack else ""
            # The `_locked` suffix is the documented convention for
            # helpers whose callers hold the lock.
            guarded = (self.lock_depth > 0
                       or method in _INIT_LIKE
                       or method.endswith("_locked"))
            self.writes.setdefault(target.attr, []).append(
                (guarded, lineno, method))

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._note(target, node.lineno)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._note(node.target, node.lineno)
        self.generic_visit(node)


def check_unguarded_writes(index: ProjectIndex,
                           config: LintConfig) -> list[Finding]:
    if not config.guard_modules:
        return []
    findings: list[Finding] = []
    for cls in index.classes.values():
        if not _module_guarded(cls.module, config.guard_modules):
            continue
        module = index.modules[cls.module]
        collector = _WriteCollector()
        collector.visit(cls.node)
        if not collector.uses_lock:
            continue
        for attr, writes in sorted(collector.writes.items()):
            in_lock = [w for w in writes if w[0]]
            bare = [w for w in writes
                    if not w[0] and w[2] not in _INIT_LIKE]
            if not in_lock or not bare:
                continue
            for _, lineno, method in bare:
                findings.append(_finding(
                    module, lineno, "RPL005",
                    f"{cls.name}.{attr} is written under "
                    f"`with self._lock` elsewhere in the class but "
                    f"unguarded here in {method}(); concurrent "
                    f"executors interleave these writes (the PR 2 "
                    f"cross-batch stats corruption) — take the lock, "
                    f"rename the helper with a `_locked` suffix if "
                    f"its callers hold it, or suppress with a "
                    f"rationale"))
    return findings


# ----------------------------------------------------------------------
# RPL006 — overbroad exception handlers that swallow silently
# ----------------------------------------------------------------------
_OVERBROAD_NAMES = {"Exception", "BaseException"}


def _handler_overbroad(handler: ast.ExceptHandler) -> bool:
    """Whether the handler catches everything (or near enough)."""
    if handler.type is None:
        return True
    types = (handler.type.elts if isinstance(handler.type, ast.Tuple)
             else [handler.type])
    for node in types:
        name = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if name in _OVERBROAD_NAMES:
            return True
    return False


def _handler_accounts(handler: ast.ExceptHandler) -> bool:
    """Whether the body visibly re-raises, records, or degrades.

    Deliberately coarse: *any* raise, call, or augmented assignment in
    the handler body counts as accounting. The store/engine degradation
    idioms all pass (``self._quarantine(...)``, ``stats.add(...)``,
    ``counter += 1``, ``raise X from exc``); only the genuinely silent
    ``except Exception: pass`` / bare-``return`` shapes get flagged.
    """
    for node in ast.walk(handler):
        if isinstance(node, (ast.Raise, ast.Call, ast.AugAssign)):
            return True
    return False


def check_swallowed_exceptions(index: ProjectIndex,
                               config: LintConfig) -> list[Finding]:
    if not config.swallow_modules:
        return []
    findings: list[Finding] = []
    for module in index.modules.values():
        if not _module_guarded(module.name, config.swallow_modules):
            continue
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _handler_overbroad(node):
                continue
            if _handler_accounts(node):
                continue
            caught = ("bare except" if node.type is None
                      else f"except {ast.unparse(node.type)}")
            findings.append(_finding(
                module, node.lineno, "RPL006",
                f"{caught} swallows without re-raising, calling a "
                f"degradation/quarantine path, or incrementing a "
                f"counter; the failure-semantics contract is "
                f"absorbed-and-accounted — a silent handler here "
                f"turns an injected fault (or a real one) into an "
                f"invisible wrong-path, so narrow the type, re-raise, "
                f"or record the drop before suppressing"))
    return findings


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
RULES: tuple[Rule, ...] = (
    Rule("RPL001", "nondeterministic-entropy",
         "entropy sources reachable from the deterministic estimate "
         "path", check_entropy),
    Rule("RPL002", "identity-unstable-repr",
         "default reprs feeding canonical identities and store keys",
         check_unstable_repr),
    Rule("RPL003", "unpicklable-payload",
         "locks/sockets/handles/lambdas in pickle-crossing classes",
         check_unpicklable_payload),
    Rule("RPL004", "frozen-dataclass-mutation",
         "object.__setattr__ on frozen dataclasses outside "
         "construction", check_frozen_mutation),
    Rule("RPL005", "unguarded-shared-state",
         "shared attributes written both inside and outside the lock",
         check_unguarded_writes),
    Rule("RPL006", "swallowed-exception",
         "overbroad except blocks that neither re-raise nor account",
         check_swallowed_exceptions),
)

#: RPL000 is synthesised by the runner from suppression parsing, not a
#: registered AST check — but it is a real, suppressible-nowhere code.
META_CODE = "RPL000"


def rule_codes() -> set[str]:
    return {rule.code for rule in RULES} | {META_CODE}
