"""A lightweight intra-package call graph for reachability gating.

Rules like RPL001 only matter on code that can run under the engine's
determinism contract — an entropy call in a report formatter is fine;
the same call anywhere reachable from
:func:`repro.engine.units.run_plan_unit` or the store-key derivation is
a bug. The graph here is deliberately an **over-approximation**: edges
resolve by name through each module's imports, ``self.method()``
resolves through the project-local MRO, and attribute calls on computed
receivers fall back to class-hierarchy analysis (every project
function/method with that bare name). Over-approximating reachability
can only demand an explicit suppression where none was needed — it can
never hide a violation.

Nested defs and lambdas fold into their enclosing top-level function
(see :func:`~repro.analysis.modules._collect_calls`), so a closure's
entropy charge lands on the function that ships it.
"""

from __future__ import annotations

import fnmatch

from repro.analysis.modules import FunctionInfo, ProjectIndex

#: Attribute-call names too generic to resolve by bare name alone —
#: edges to them come only from typed receivers (self/module aliases).
_CHA_SKIP = {"get", "items", "keys", "values", "append", "extend",
             "pop", "add", "update", "copy", "join", "split", "strip",
             "encode", "decode", "format", "write", "read", "close"}


def build_call_edges(index: ProjectIndex,
                     ) -> dict[FunctionInfo, list[FunctionInfo]]:
    """Resolve every call site to the project functions it may reach."""
    edges: dict[FunctionInfo, list[FunctionInfo]] = {}
    for function in index.functions.values():
        targets: list[FunctionInfo] = []
        module = index.modules.get(function.module)
        for site in function.calls:
            targets.extend(_resolve(index, module, function, site.ref))
        unique: list[FunctionInfo] = []
        seen: set[int] = set()
        for target in targets:
            if id(target) not in seen:
                seen.add(id(target))
                unique.append(target)
        edges[function] = unique
    return edges


def _class_constructor(index: ProjectIndex, cls) -> list[FunctionInfo]:
    """Calling a class runs ``__init__``/``__post_init__`` up the MRO."""
    found = []
    for name in ("__init__", "__post_init__", "__new__"):
        for ancestor in index.mro(cls):
            if name in ancestor.methods:
                found.append(ancestor.methods[name])
                break
    return found


def _resolve(index: ProjectIndex, module, function: FunctionInfo,
             ref: tuple) -> list[FunctionInfo]:
    kind = ref[0]
    if kind == "name":
        name = ref[1]
        if module is not None:
            if name in module.functions:
                return [module.functions[name]]
            if name in module.classes:
                return _class_constructor(index, module.classes[name])
            target = module.imports.get(name)
            if target is not None:
                target_module, _, target_name = target.rpartition(".")
                resolved_module = index.modules.get(target_module)
                if resolved_module is not None:
                    if target_name in resolved_module.functions:
                        return [resolved_module.functions[target_name]]
                    if target_name in resolved_module.classes:
                        return _class_constructor(
                            index, resolved_module.classes[target_name])
                return []  # external import: out of scope
        return []
    base, attr = ref[1], ref[2]
    if not attr:
        return []
    # self.method() — resolve through the enclosing class's project MRO.
    if base == "self" and function.owner is not None and \
            module is not None and function.owner in module.classes:
        owner = module.classes[function.owner]
        for ancestor in index.mro(owner):
            if attr in ancestor.methods:
                return [ancestor.methods[attr]]
    # module-alias call: repro_mod.func(), pkg.mod.func()
    if base and base not in ("self", "cls") and module is not None:
        head = base.split(".")[0]
        target = module.imports.get(base) or module.imports.get(head)
        if target is not None:
            if target != base and base.count("."):
                tail = base.split(".", 1)[1]
                target = f"{module.imports.get(head, head)}.{tail}"
            resolved_module = index.modules.get(target)
            if resolved_module is not None:
                if attr in resolved_module.functions:
                    return [resolved_module.functions[attr]]
                if attr in resolved_module.classes:
                    return _class_constructor(
                        index, resolved_module.classes[attr])
            if target.rpartition(".")[0] in index.modules:
                # `from pkg import mod` alias of a project module.
                resolved_module = index.modules.get(target)
                if resolved_module is None:
                    return []
            if target.split(".")[0] not in index.modules and \
                    not any(name.startswith(target.split(".")[0])
                            for name in index.modules):
                return []  # a numpy/stdlib receiver: out of scope
    # Computed receiver — class-hierarchy fallback by bare name.
    if attr in _CHA_SKIP:
        return []
    return list(index.by_bare_name.get(attr, []))


def match_roots(index: ProjectIndex,
                patterns: tuple[str, ...]) -> list[FunctionInfo]:
    """Functions matching root patterns (``mod:qual``, globs allowed).

    A bare pattern with no ``:`` matches by function name across every
    analysed module — fixture corpora name their roots that way.
    """
    roots: list[FunctionInfo] = []
    for function in index.functions.values():
        qual = function.qualname
        bare = qual.rpartition(":")[2]
        for pattern in patterns:
            if ":" in pattern:
                if fnmatch.fnmatchcase(qual, pattern):
                    roots.append(function)
                    break
            elif fnmatch.fnmatchcase(bare, pattern) or \
                    fnmatch.fnmatchcase(function.name, pattern):
                roots.append(function)
                break
    return roots


def reachable_from(index: ProjectIndex, patterns: tuple[str, ...],
                   ) -> dict[FunctionInfo, tuple[str, ...]]:
    """BFS closure from the root patterns.

    Returns ``{function: chain}`` where ``chain`` is one shortest
    qualname path from a root — surfaced in findings so a reader can
    see *why* the linter considers a line contract-critical.
    """
    edges = build_call_edges(index)
    frontier = match_roots(index, patterns)
    chains: dict[FunctionInfo, tuple[str, ...]] = \
        {root: (root.qualname,) for root in frontier}
    queue = list(frontier)
    while queue:
        current = queue.pop(0)
        for target in edges.get(current, ()):
            if target not in chains:
                chains[target] = chains[current] + (target.qualname,)
                queue.append(target)
    return chains
