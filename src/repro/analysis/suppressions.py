"""Inline suppression comments: ``# repro-lint: ignore[...] -- why``.

A suppression names the rule codes it waives and **must** carry a
rationale after ``--`` — the lint gate treats a bare waiver as its own
finding (RPL000), so every intentional contract exception in the tree
documents itself. A comment on its own line covers the next code line;
a trailing comment covers its line. Suppressions that never match a
finding are reported unused (also RPL000), mirroring
``warn_unused_ignores``.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

_PATTERN = re.compile(
    r"#\s*repro-lint:\s*ignore\[(?P<codes>[^\]]*)\]"
    r"(?:\s*--\s*(?P<rationale>.*\S))?")

_CODE = re.compile(r"^RPL\d{3}$")


@dataclass
class Suppression:
    """One parsed suppression comment."""

    line: int           # line the comment sits on (1-based)
    covers: int         # first code line it applies to
    codes: tuple[str, ...]
    rationale: str
    #: Last covered line — a standalone comment covers the whole
    #: statement that starts below it (the runner widens this from the
    #: AST's statement spans; trailing comments stay single-line).
    covers_end: int = 0
    used: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        if self.covers_end < self.covers:
            self.covers_end = self.covers

    def matches(self, code: str, line: int) -> bool:
        return self.covers <= line <= self.covers_end and \
            code in self.codes


@dataclass
class SuppressionTable:
    """Every suppression in one file, plus its malformed entries."""

    suppressions: list[Suppression] = field(default_factory=list)
    #: ``(line, message)`` pairs for RPL000 findings.
    problems: list[tuple[int, str]] = field(default_factory=list)

    def is_suppressed(self, code: str, line: int) -> bool:
        hit = False
        for suppression in self.suppressions:
            if suppression.matches(code, line):
                suppression.used = True
                hit = True
        return hit

    def unused(self) -> list[Suppression]:
        return [s for s in self.suppressions if not s.used]


def _comment_only(line: str) -> bool:
    stripped = line.strip()
    return stripped.startswith("#")


def _comment_tokens(source_lines: list[str]) -> list[tuple[int, str]]:
    """``(line, text)`` for every real comment token in the source.

    Tokenizing (rather than regexing raw lines) keeps docstrings that
    *describe* the suppression syntax from registering as suppressions.
    """
    source = "\n".join(source_lines) + "\n"
    try:
        return [(token.start[0], token.string)
                for token in tokenize.generate_tokens(
                    io.StringIO(source).readline)
                if token.type == tokenize.COMMENT]
    except (tokenize.TokenError, IndentationError):
        # Unparseable edge: degrade to raw lines rather than silently
        # dropping every suppression in the file.
        return list(enumerate(source_lines, start=1))


def parse_suppressions(source_lines: list[str],
                       known_codes: set[str]) -> SuppressionTable:
    table = SuppressionTable()
    for lineno, line in _comment_tokens(source_lines):
        match = _PATTERN.search(line)
        if match is None:
            if "repro-lint" in line and "ignore" in line:
                table.problems.append(
                    (lineno, "unparseable repro-lint comment; expected "
                             "`# repro-lint: ignore[RPLnnn] -- reason`"))
            continue
        codes = tuple(code.strip()
                      for code in match.group("codes").split(",")
                      if code.strip())
        rationale = (match.group("rationale") or "").strip()
        bad = [code for code in codes
               if not _CODE.match(code) or code not in known_codes]
        if not codes or bad:
            table.problems.append(
                (lineno, f"suppression names unknown rule codes "
                         f"{bad or ['<none>']}"))
            continue
        if not rationale:
            table.problems.append(
                (lineno, f"suppression of {', '.join(codes)} carries no "
                         f"rationale; append `-- <why this exception "
                         f"is intentional>`"))
            continue
        covers = lineno
        if lineno <= len(source_lines) and \
                _comment_only(source_lines[lineno - 1]):
            # A standalone comment covers the next non-comment line.
            covers = lineno + 1
            while covers <= len(source_lines) and \
                    _comment_only(source_lines[covers - 1]):
                covers += 1
        table.suppressions.append(Suppression(
            line=lineno, covers=covers, codes=codes,
            rationale=rationale))
    return table
