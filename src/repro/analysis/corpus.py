"""The historical-bug fixture corpus: shipped bugs, kept flagged.

Each fixture file under ``tests/analysis_fixtures/`` reintroduces one
bug this repo actually shipped (and fixed) in an earlier PR, in
isolation, and declares what the linter must say about it via header
directives::

    # repro-lint-fixture: expect=RPL003            (one per finding)
    # repro-lint-fixture: expect=RPL001:17         (pin the line too)
    # repro-lint-fixture: roots=drive              (RPL001 entry points)
    # repro-lint-fixture: entropy-exempt=obs_mod   (RPL001 exemptions)
    # repro-lint-fixture: identity-bases=Algorithm (RPL002 anchors)
    # repro-lint-fixture: payload-roots=Shipped    (RPL003 anchors)
    # repro-lint-fixture: guard-all                (RPL005 everywhere)
    # repro-lint-fixture: swallow-all              (RPL006 everywhere)

A fixture with no ``expect`` lines is a **negative** fixture: the
pattern is contract-clean (suppressed with rationale, or paired with
``__getstate__``/``__setstate__``) and the linter must stay silent.
The corpus is the linter's regression suite — if a rule rots, the
fixture for the bug it was built from fails first.
"""

from __future__ import annotations

import pathlib
import re
from dataclasses import dataclass, field

from repro.analysis.config import LintConfig
from repro.analysis.findings import Finding
from repro.analysis.runner import LintResult, lint_paths

_DIRECTIVE = re.compile(r"#\s*repro-lint-fixture:\s*(\S.*\S|\S)")


@dataclass
class FixtureSpec:
    """Parsed header directives of one corpus fixture."""

    path: pathlib.Path
    #: ``(code, line-or-None)`` pairs the lint run must produce.
    expected: list[tuple[str, int | None]] = field(default_factory=list)
    config: LintConfig = field(default_factory=LintConfig)


def parse_fixture(path: pathlib.Path) -> FixtureSpec:
    spec = FixtureSpec(path=path)
    entropy_roots: tuple[str, ...] = ()
    entropy_exempt: tuple[str, ...] = ()
    identity_bases: tuple[str, ...] = ()
    payload_roots: tuple[str, ...] = ()
    guard_modules: tuple[str, ...] = ()
    swallow_modules: tuple[str, ...] = ()
    for line in path.read_text(encoding="utf-8").splitlines():
        match = _DIRECTIVE.search(line)
        if match is None:
            continue
        directive = match.group(1).strip()
        key, _, value = directive.partition("=")
        values = tuple(part.strip() for part in value.split(",")
                       if part.strip())
        if key == "expect":
            for item in values:
                code, _, lineno = item.partition(":")
                spec.expected.append(
                    (code, int(lineno) if lineno else None))
        elif key == "roots":
            entropy_roots = values
        elif key == "entropy-exempt":
            entropy_exempt = values
        elif key == "identity-bases":
            identity_bases = values
        elif key == "payload-roots":
            payload_roots = values
        elif key == "guard-all":
            guard_modules = ("*",)
        elif key == "swallow-all":
            swallow_modules = ("*",)
        else:
            raise ValueError(
                f"{path.name}: unknown fixture directive {key!r}")
    spec.config = LintConfig(entropy_roots=entropy_roots,
                             entropy_exempt_modules=entropy_exempt,
                             identity_bases=identity_bases,
                             payload_roots=payload_roots,
                             guard_modules=guard_modules,
                             swallow_modules=swallow_modules)
    return spec


@dataclass
class FixtureOutcome:
    """One fixture checked against its declared expectations."""

    spec: FixtureSpec
    result: LintResult
    missing: list[tuple[str, int | None]]
    unexpected: list[Finding]

    @property
    def ok(self) -> bool:
        return not self.missing and not self.unexpected


def check_fixture(path: pathlib.Path | str) -> FixtureOutcome:
    """Lint one fixture and diff the findings against its header."""
    path = pathlib.Path(path)
    spec = parse_fixture(path)
    result = lint_paths([path], spec.config)
    remaining = list(result.findings)
    missing: list[tuple[str, int | None]] = []
    for code, lineno in spec.expected:
        hit = next((finding for finding in remaining
                    if finding.code == code
                    and (lineno is None or finding.line == lineno)),
                   None)
        if hit is None:
            missing.append((code, lineno))
        else:
            remaining.remove(hit)
    return FixtureOutcome(spec=spec, result=result, missing=missing,
                          unexpected=remaining)


def check_corpus(directory: pathlib.Path | str,
                 ) -> list[FixtureOutcome]:
    """Check every ``*.py`` fixture in a corpus directory."""
    directory = pathlib.Path(directory)
    paths = sorted(path for path in directory.glob("*.py")
                   if path.name != "__init__.py")
    if not paths:
        raise FileNotFoundError(
            f"no fixtures found under {directory}")
    return [check_fixture(path) for path in paths]
