"""Lint findings and their text/JSON renderings."""

from __future__ import annotations

import json
from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Findings order by (path, line, code) so reports are stable across
    runs and dict/set iteration orders — the lint gate diffs them.
    """

    path: str
    line: int
    code: str
    message: str
    #: Extra context (e.g. the reachability chain from the entry point
    #: that makes an entropy call matter). Excluded from ordering.
    details: dict = field(default_factory=dict, compare=False)

    def as_dict(self) -> dict:
        payload = {"path": self.path, "line": self.line,
                   "code": self.code, "message": self.message}
        if self.details:
            payload["details"] = dict(self.details)
        return payload

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


def render_findings(findings: list[Finding], fmt: str = "text",
                    checked_files: int = 0) -> str:
    """Render a finding list as ``text`` or machine-readable ``json``."""
    findings = sorted(findings)
    if fmt == "json":
        by_code: dict[str, int] = {}
        for finding in findings:
            by_code[finding.code] = by_code.get(finding.code, 0) + 1
        return json.dumps({
            "findings": [finding.as_dict() for finding in findings],
            "summary": {"total": len(findings), "by_code": by_code,
                        "checked_files": checked_files},
        }, indent=2, sort_keys=True)
    if fmt != "text":
        raise ValueError(f"unknown lint format {fmt!r}")
    if not findings:
        return (f"repro lint: clean "
                f"({checked_files} files checked)")
    lines = []
    for finding in findings:
        lines.append(str(finding))
        chain = finding.details.get("reachable_via")
        if chain:
            lines.append(f"    reachable via: {chain}")
    lines.append(f"repro lint: {len(findings)} finding"
                 f"{'s' if len(findings) != 1 else ''} "
                 f"({checked_files} files checked)")
    return "\n".join(lines)
