"""File-backed persistence for heap files and tables.

Serialises a heap file to a single binary file — a fixed header followed
by the raw page images that :meth:`Page.to_bytes` produces — and loads
it back. Tables additionally persist their schema (as SQL-ish type
strings) in a text header so a saved table is self-describing.

Format (heap)::

    magic "RPRHEAP1" | u32 page_size | u32 page_count | u64 record_count
    page image * page_count

Format (table)::

    magic "RPRTBL1\n" | u16 name_len | name | u16 column_count
    per column: u16 len | "name type" utf-8
    heap section (as above)

This exists for engine fidelity (the on-disk layout is the slotted-page
image, byte for byte) and for examples that want to persist generated
workloads between runs.
"""

from __future__ import annotations

import io
import pathlib
import struct
from typing import BinaryIO

from repro.errors import PageFormatError, SchemaError
from repro.storage.heap import HeapFile
from repro.storage.page import Page
from repro.storage.rid import RID
from repro.storage.schema import Column, Schema
from repro.storage.table import Table
from repro.storage.types import parse_type

_HEAP_MAGIC = b"RPRHEAP1"
_TABLE_MAGIC = b"RPRTBL1\n"
_HEAP_HEADER = struct.Struct(">8sIIQ")


def save_heap(heap: HeapFile, target: BinaryIO) -> None:
    """Write a heap file's pages to a binary stream."""
    pages = list(heap.pages())
    target.write(_HEAP_HEADER.pack(_HEAP_MAGIC, heap.page_size,
                                   len(pages), heap.num_records))
    for page in pages:
        target.write(page.to_bytes())


def load_heap(source: BinaryIO) -> HeapFile:
    """Read a heap file written by :func:`save_heap`."""
    header = source.read(_HEAP_HEADER.size)
    if len(header) != _HEAP_HEADER.size:
        raise PageFormatError("truncated heap header")
    magic, page_size, page_count, record_count = _HEAP_HEADER.unpack(
        header)
    if magic != _HEAP_MAGIC:
        raise PageFormatError(f"bad heap magic {magic!r}")
    heap = HeapFile(page_size=page_size)
    for _ in range(page_count):
        image = source.read(page_size)
        if len(image) != page_size:
            raise PageFormatError("truncated page image")
        page = Page.from_bytes(image)
        heap._pages.append(page)
        heap._record_count += page.slot_count
    if heap.num_records != record_count:
        raise PageFormatError(
            f"header claims {record_count} records, pages hold "
            f"{heap.num_records}")
    return heap


def save_table(table: Table, path: str | pathlib.Path) -> None:
    """Persist a table (schema + heap) to ``path``."""
    buffer = io.BytesIO()
    name_bytes = table.name.encode("utf-8")
    buffer.write(_TABLE_MAGIC)
    buffer.write(struct.pack(">H", len(name_bytes)))
    buffer.write(name_bytes)
    buffer.write(struct.pack(">H", len(table.schema)))
    for column in table.schema:
        spec = f"{column.name} {column.dtype.name}".encode("utf-8")
        buffer.write(struct.pack(">H", len(spec)))
        buffer.write(spec)
    save_heap(table.heap, buffer)
    pathlib.Path(path).write_bytes(buffer.getvalue())


def load_table(path: str | pathlib.Path) -> Table:
    """Load a table written by :func:`save_table`.

    Indexes are not persisted (they are derived data); rebuild them with
    :meth:`Table.create_index` after loading, exactly as a database
    restores secondary structures.
    """
    source = io.BytesIO(pathlib.Path(path).read_bytes())
    magic = source.read(len(_TABLE_MAGIC))
    if magic != _TABLE_MAGIC:
        raise SchemaError(f"bad table magic {magic!r}")
    (name_len,) = struct.unpack(">H", source.read(2))
    name = source.read(name_len).decode("utf-8")
    (column_count,) = struct.unpack(">H", source.read(2))
    columns = []
    for _ in range(column_count):
        (spec_len,) = struct.unpack(">H", source.read(2))
        spec = source.read(spec_len).decode("utf-8")
        column_name, _, type_spec = spec.partition(" ")
        if not type_spec:
            raise SchemaError(f"malformed column spec {spec!r}")
        columns.append(Column(column_name, parse_type(type_spec)))
    heap = load_heap(source)
    table = Table(name, Schema(columns), page_size=heap.page_size)
    table.heap = heap
    table._rids = [RID(page.page_id, slot)
                   for page in heap.pages()
                   for slot in range(page.slot_count)]
    return table
