"""Column and schema definitions.

A :class:`Schema` is an ordered list of named, typed columns. It knows how
to validate rows, compute uncompressed row widths, and project subsets of
columns (used when building index key schemas). Row byte encoding lives in
:mod:`repro.storage.record`; the schema supplies the layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Sequence

from repro.errors import SchemaError
from repro.storage.types import DataType, parse_type


@dataclass(frozen=True)
class Column:
    """A named, typed column.

    Columns are NOT NULL: the paper's compression model (and its null
    suppression terminology) concerns blank/zero padding inside stored
    values, not SQL NULLs, so the engine keeps rows total.
    """

    name: str
    dtype: DataType

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid column name {self.name!r}")

    @classmethod
    def of(cls, name: str, type_spec: str) -> "Column":
        """Build a column from a SQL-ish type string, e.g. ``char(20)``."""
        return cls(name, parse_type(type_spec))

    def __str__(self) -> str:
        return f"{self.name} {self.dtype.name}"


class Schema:
    """An ordered collection of :class:`Column` objects."""

    def __init__(self, columns: Sequence[Column]) -> None:
        columns = list(columns)
        if not columns:
            raise SchemaError("a schema needs at least one column")
        names = [col.name for col in columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in {names}")
        self._columns = columns
        self._by_name = {col.name: i for i, col in enumerate(columns)}

    @classmethod
    def of(cls, **column_specs: str) -> "Schema":
        """Build a schema from ``name="type"`` keyword pairs.

        Example::

            Schema.of(name="char(20)", qty="integer")
        """
        return cls([Column.of(name, spec)
                    for name, spec in column_specs.items()])

    @property
    def columns(self) -> tuple[Column, ...]:
        return tuple(self._columns)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(col.name for col in self._columns)

    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self._columns)

    def __getitem__(self, key: int | str) -> Column:
        if isinstance(key, str):
            return self._columns[self.index_of(key)]
        return self._columns[key]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._columns == other._columns

    def __hash__(self) -> int:
        return hash(tuple(self._columns))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(str(col) for col in self._columns)
        return f"Schema({inner})"

    def index_of(self, name: str) -> int:
        """Position of column ``name``; raises :class:`SchemaError`."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(
                f"no column {name!r} in schema {self.names}") from None

    def has_column(self, name: str) -> bool:
        return name in self._by_name

    def project(self, names: Iterable[str]) -> "Schema":
        """A new schema with only the given columns, in the given order."""
        return Schema([self[name] for name in names])

    @property
    def is_fixed(self) -> bool:
        """Whether all columns are fixed width."""
        return all(col.dtype.is_fixed for col in self._columns)

    @property
    def fixed_row_size(self) -> int | None:
        """Uncompressed row width in bytes, or ``None`` if variable."""
        total = 0
        for col in self._columns:
            size = col.dtype.fixed_size
            if size is None:
                return None
            total += size
        return total

    def row_size(self, row: Sequence[Any]) -> int:
        """Uncompressed encoded size in bytes of one validated row."""
        self.validate_row(row)
        return sum(col.dtype.encoded_size(value)
                   for col, value in zip(self._columns, row))

    def validate_row(self, row: Sequence[Any]) -> None:
        """Raise if ``row`` does not match this schema."""
        if len(row) != len(self._columns):
            raise SchemaError(
                f"row has {len(row)} values, schema has "
                f"{len(self._columns)} columns")
        for col, value in zip(self._columns, row):
            col.dtype.validate(value)


def single_char_schema(k: int, name: str = "a") -> Schema:
    """The paper's canonical schema: one ``char(k)`` column.

    Section III fixes "a table T that has a single column A which is a
    character field of k bytes"; most experiments use this shape.
    """
    return Schema([Column.of(name, f"char({k})")])
