"""Database catalog: a named collection of tables with the estimator
wired in.

This is the outermost facade a downstream user touches — the library's
equivalent of a database with `sp_estimate_data_compression_savings`:

    db = Database("warehouse")
    db.create_table("orders", status="char(10)", customer="char(24)")
    ... insert rows ...
    report = db.estimate_compression_savings(
        "orders", ["status"], algorithm="page", fraction=0.01)

It also persists and restores every table through
:mod:`repro.storage.filestore`.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import Sequence

from repro.constants import DEFAULT_PAGE_SIZE
from repro.errors import SchemaError
from repro.sampling.rng import SeedLike
from repro.storage.filestore import load_table, save_table
from repro.storage.index import IndexKind
from repro.storage.rid import RID_BYTES
from repro.storage.schema import Schema
from repro.storage.table import Table


@dataclass(frozen=True)
class CompressionSavingsReport:
    """What `sp_estimate_data_compression_savings` returns, in spirit."""

    table: str
    key_columns: tuple[str, ...]
    kind: IndexKind
    algorithm: str
    sampling_fraction: float
    sample_rows: int
    current_size_bytes: int
    estimated_cf: float

    @property
    def estimated_compressed_bytes(self) -> float:
        return self.estimated_cf * self.current_size_bytes

    @property
    def estimated_savings_bytes(self) -> float:
        return self.current_size_bytes - self.estimated_compressed_bytes

    def describe(self) -> str:
        """One-paragraph human-readable report."""
        return (
            f"{self.table}({', '.join(self.key_columns)}) "
            f"[{self.kind.value}, {self.algorithm}]: "
            f"{self.current_size_bytes:,} B now, estimated CF "
            f"{self.estimated_cf:.3f} => "
            f"{self.estimated_compressed_bytes:,.0f} B "
            f"(saves {self.estimated_savings_bytes:,.0f} B; "
            f"{self.sample_rows:,}-row sample, "
            f"f={self.sampling_fraction:.2%})")


class Database:
    """A named collection of tables sharing a page size."""

    def __init__(self, name: str,
                 page_size: int = DEFAULT_PAGE_SIZE) -> None:
        if not name:
            raise SchemaError("a database needs a non-empty name")
        self.name = name
        self.page_size = page_size
        self.tables: dict[str, Table] = {}

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------
    def create_table(self, name: str, schema: Schema | None = None,
                     **column_specs: str) -> Table:
        """Create and register a table.

        Pass an explicit :class:`Schema` or keyword column specs::

            db.create_table("orders", status="char(10)", qty="integer")
        """
        if name in self.tables:
            raise SchemaError(f"table {name!r} already exists")
        if schema is None:
            if not column_specs:
                raise SchemaError("need a schema or column specs")
            schema = Schema.of(**column_specs)
        elif column_specs:
            raise SchemaError("pass a schema or column specs, not both")
        table = Table(name, schema, page_size=self.page_size)
        self.tables[name] = table
        return table

    def attach(self, table: Table) -> Table:
        """Register an existing table object."""
        if table.name in self.tables:
            raise SchemaError(f"table {table.name!r} already exists")
        self.tables[table.name] = table
        return table

    def drop_table(self, name: str) -> None:
        """Remove a table from the catalog."""
        if name not in self.tables:
            raise SchemaError(f"no table {name!r} in {self.name!r}")
        del self.tables[name]

    def table(self, name: str) -> Table:
        """Look up a table by name."""
        try:
            return self.tables[name]
        except KeyError:
            raise SchemaError(
                f"no table {name!r} in database {self.name!r}; "
                f"known: {sorted(self.tables)}") from None

    # ------------------------------------------------------------------
    # The headline feature
    # ------------------------------------------------------------------
    def estimate_compression_savings(
            self, table_name: str, key_columns: Sequence[str],
            algorithm="page", fraction: float = 0.01,
            kind: IndexKind = IndexKind.NONCLUSTERED,
            seed: SeedLike = None) -> CompressionSavingsReport:
        """Estimate how much compressing an index would save.

        Runs SampleCF (Figure 2 of the paper) against the named table
        and reports current vs estimated compressed size, the way
        `sp_estimate_data_compression_savings` does.
        """
        from repro.core.samplecf import SampleCF

        table = self.table(table_name)
        estimator = SampleCF(algorithm, page_size=self.page_size)
        estimate = estimator.estimate_table(table, fraction,
                                            key_columns, kind=kind,
                                            seed=seed)
        current = self._uncompressed_bytes(table, key_columns, kind)
        return CompressionSavingsReport(
            table=table_name,
            key_columns=tuple(key_columns),
            kind=kind,
            algorithm=estimate.algorithm,
            sampling_fraction=fraction,
            sample_rows=estimate.sample_rows,
            current_size_bytes=current,
            estimated_cf=estimate.estimate)

    @staticmethod
    def _uncompressed_bytes(table: Table, key_columns: Sequence[str],
                            kind: IndexKind) -> int:
        if kind is IndexKind.CLUSTERED:
            width = table.schema.fixed_row_size
            if width is None:
                raise SchemaError(
                    "clustered estimates need fixed-width rows")
            return table.num_rows * width
        width = 0
        for column in key_columns:
            fixed = table.schema[column].dtype.fixed_size
            if fixed is None:
                raise SchemaError(
                    f"column {column!r} is variable-width")
            width += fixed
        return table.num_rows * (width + RID_BYTES)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, directory: str | pathlib.Path) -> None:
        """Persist every table as ``<directory>/<table>.rpr``."""
        target = pathlib.Path(directory)
        target.mkdir(parents=True, exist_ok=True)
        for name, table in self.tables.items():
            save_table(table, target / f"{name}.rpr")

    @classmethod
    def load(cls, name: str, directory: str | pathlib.Path,
             page_size: int = DEFAULT_PAGE_SIZE) -> "Database":
        """Restore a database saved with :meth:`save`."""
        database = cls(name, page_size=page_size)
        source = pathlib.Path(directory)
        for path in sorted(source.glob("*.rpr")):
            table = load_table(path)
            database.page_size = table.page_size
            database.tables[table.name] = table
        return database

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Database({self.name!r}, "
                f"tables={sorted(self.tables)})")
