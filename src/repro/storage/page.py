"""Slotted pages with byte-accurate space accounting.

A :class:`Page` models one fixed-size block of storage: a 16-byte header,
a slot directory that grows from the front, and record payloads that grow
from the back — the classic slotted-page organisation. The implementation
keeps records as Python ``bytes`` for convenience but tracks offsets and
free space *exactly* as the on-disk layout would, and it can round-trip
through a full ``page_size``-byte image (:meth:`to_bytes` /
:meth:`from_bytes`), which the tests use to prove the accounting honest.

Two size views matter for compression-fraction work:

* ``payload_bytes`` — the record bytes only. Dividing compressed payload
  by uncompressed payload reproduces the paper's analytical model with no
  structural noise.
* ``used_bytes`` — header + slot directory + payload: what the page really
  consumes. This powers the engine's ``physical`` accounting mode.
"""

from __future__ import annotations

import struct
from enum import IntEnum
from typing import Iterator

import numpy as np

from repro.constants import (MIN_PAGE_SIZE, PAGE_HEADER_SIZE, SLOT_SIZE)
from repro.errors import PageFormatError, PageFullError, RecordNotFoundError


class PageType(IntEnum):
    """Role a page plays in the engine."""

    DATA = 0
    INDEX_LEAF = 1
    INDEX_INTERNAL = 2
    COMPRESSED = 3


_HEADER_STRUCT = struct.Struct(">IBHHBxxxxxx")  # id, type, slots, free, flags


class Page:
    """One slotted page.

    Parameters
    ----------
    page_size:
        Total size of the page in bytes (header included).
    page_id:
        Identifier recorded in the page header.
    page_type:
        Role marker stored in the header; informational.
    """

    def __init__(self, page_size: int, page_id: int = 0,
                 page_type: PageType = PageType.DATA) -> None:
        if page_size < MIN_PAGE_SIZE:
            raise PageFormatError(
                f"page size {page_size} below minimum {MIN_PAGE_SIZE}")
        if page_size > 0xFFFF:
            raise PageFormatError(
                f"page size {page_size} exceeds 65535 (2-byte slot offsets)")
        self.page_size = page_size
        self.page_id = page_id
        self.page_type = PageType(page_type)
        self._records: list[bytes] = []
        self._payload_bytes = 0

    # ------------------------------------------------------------------
    # Space accounting
    # ------------------------------------------------------------------
    @property
    def slot_count(self) -> int:
        """Number of records stored on this page."""
        return len(self._records)

    @property
    def payload_bytes(self) -> int:
        """Total record bytes (no header, no slot directory)."""
        return self._payload_bytes

    @property
    def used_bytes(self) -> int:
        """Header + slot directory + record payload."""
        return PAGE_HEADER_SIZE + SLOT_SIZE * self.slot_count \
            + self._payload_bytes

    @property
    def free_bytes(self) -> int:
        """Bytes still available for new records (and their slots)."""
        return self.page_size - self.used_bytes

    @staticmethod
    def usable_bytes(page_size: int) -> int:
        """Payload capacity of an empty page of ``page_size`` bytes.

        This is an upper bound that ignores the slot directory; use
        :func:`records_per_page` for the exact fixed-width row count.
        """
        return page_size - PAGE_HEADER_SIZE

    def fits(self, record: bytes) -> bool:
        """Whether ``record`` (plus its slot entry) fits in free space."""
        return len(record) + SLOT_SIZE <= self.free_bytes

    # ------------------------------------------------------------------
    # Record access
    # ------------------------------------------------------------------
    def insert(self, record: bytes) -> int:
        """Append a record; returns its slot number.

        Raises :class:`PageFullError` if the record does not fit, and
        :class:`PageFormatError` for records that could never fit on any
        page of this size.
        """
        needed = len(record) + SLOT_SIZE
        if len(record) + SLOT_SIZE + PAGE_HEADER_SIZE > self.page_size:
            raise PageFormatError(
                f"record of {len(record)} bytes can never fit a "
                f"{self.page_size}-byte page")
        if needed > self.free_bytes:
            raise PageFullError(
                f"record of {len(record)} bytes does not fit "
                f"({self.free_bytes} bytes free)",
                record_bytes=len(record), free_bytes=self.free_bytes)
        self._records.append(bytes(record))
        self._payload_bytes += len(record)
        return len(self._records) - 1

    def get(self, slot: int) -> bytes:
        """Record bytes stored at ``slot``."""
        if not 0 <= slot < len(self._records):
            raise RecordNotFoundError(
                f"slot {slot} not in page {self.page_id} "
                f"({len(self._records)} slots)")
        return self._records[slot]

    def records(self) -> Iterator[bytes]:
        """Iterate over record payloads in slot order."""
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Page(id={self.page_id}, type={self.page_type.name}, "
                f"slots={self.slot_count}, used={self.used_bytes}/"
                f"{self.page_size})")

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def __reduce__(self) -> tuple:
        """Pickle as the canonical on-disk image.

        Round-tripping through :meth:`to_bytes`/:meth:`from_bytes` keeps
        pickles honest (whatever the image format can't express, pickle
        can't smuggle) and is what lets heaps ship to process-pool
        workers as plain page images.
        """
        return (self.from_bytes, (self.to_bytes(),))

    def to_bytes(self) -> bytes:
        """Serialise to a full ``page_size``-byte on-disk image.

        Layout: header, then the slot directory (offset, length per
        record), free space, then record payloads packed at the page tail
        in reverse slot order (the classic layout where payload grows
        backwards toward the directory).
        """
        image = bytearray(self.page_size)
        free_offset = self.page_size
        directory: list[tuple[int, int]] = []
        for record in self._records:
            free_offset -= len(record)
            image[free_offset:free_offset + len(record)] = record
            directory.append((free_offset, len(record)))
        _HEADER_STRUCT.pack_into(
            image, 0, self.page_id, int(self.page_type),
            len(self._records), free_offset, 0)
        cursor = PAGE_HEADER_SIZE
        for offset, length in directory:
            struct.pack_into(">HH", image, cursor, offset, length)
            cursor += SLOT_SIZE
        return bytes(image)

    @classmethod
    def from_bytes(cls, image: bytes) -> "Page":
        """Parse a page image produced by :meth:`to_bytes`."""
        if len(image) < MIN_PAGE_SIZE:
            raise PageFormatError(
                f"page image of {len(image)} bytes is too small")
        page_id, raw_type, slots, free_offset, _flags = \
            _HEADER_STRUCT.unpack_from(image, 0)
        try:
            page_type = PageType(raw_type)
        except ValueError as exc:
            raise PageFormatError(f"unknown page type {raw_type}") from exc
        page = cls(len(image), page_id=page_id, page_type=page_type)
        if PAGE_HEADER_SIZE + SLOT_SIZE * slots > len(image):
            raise PageFormatError("slot directory overruns page")
        # One vectorized parse of the whole slot directory: pages are
        # re-materialized in bulk on the store-load and process-pool
        # paths, where a per-slot struct.unpack loop shows up.
        directory = np.frombuffer(image, dtype=">u2",
                                  count=2 * slots,
                                  offset=PAGE_HEADER_SIZE)
        offsets = directory[0::2].astype(np.int64)
        lengths = directory[1::2].astype(np.int64)
        bad = (offsets + lengths > len(image)) | (offsets < PAGE_HEADER_SIZE)
        if bad.any():
            first = int(np.argmax(bad))
            raise PageFormatError(
                f"slot points outside page: offset={int(offsets[first])}, "
                f"length={int(lengths[first])}")
        page._records = [bytes(image[offset:offset + length])
                         for offset, length in zip(offsets.tolist(),
                                                   lengths.tolist())]
        page._payload_bytes = int(lengths.sum())
        if page.used_bytes > page.page_size:
            raise PageFormatError("page image overflows its declared size")
        return page


def records_per_page(page_size: int, record_size: int) -> int:
    """Exact number of fixed-width records a page can hold.

    Accounts for the header and one slot entry per record. This is the
    quantity the paged-dictionary model needs to translate a sorted value
    histogram into page runs (the paper's ``Pg(i)``).
    """
    if record_size <= 0:
        raise PageFormatError(f"record size must be positive, got {record_size}")
    capacity = (page_size - PAGE_HEADER_SIZE) // (record_size + SLOT_SIZE)
    if capacity <= 0:
        raise PageFormatError(
            f"a {record_size}-byte record does not fit a "
            f"{page_size}-byte page")
    return capacity
