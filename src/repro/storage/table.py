"""Tables: schema + heap storage + indexes.

A :class:`Table` owns a heap file of encoded rows and any number of
indexes. It also provides the two access paths the estimator needs:

* positional row access (uniform row sampling draws row positions),
* page iteration (block-level sampling draws whole pages).
"""

from __future__ import annotations

import hashlib
from typing import Any, Iterator, Sequence

from repro.constants import DEFAULT_PAGE_SIZE
from repro.errors import SchemaError
from repro.storage.heap import HeapFile
from repro.storage.index import Index, IndexKind
from repro.storage.page import Page
from repro.storage.record import decode_record, encode_record
from repro.storage.rid import RID
from repro.storage.schema import Schema


class Table:
    """A named relation stored in a heap file."""

    def __init__(self, name: str, schema: Schema,
                 page_size: int = DEFAULT_PAGE_SIZE) -> None:
        if not name:
            raise SchemaError("a table needs a non-empty name")
        self.name = name
        self.schema = schema
        self.page_size = page_size
        self.heap = HeapFile(page_size=page_size)
        self._indexes: dict[str, Index] = {}
        self._pending_index_specs: list[tuple] = []
        self._rids: list[RID] = []

    @property
    def indexes(self) -> dict[str, Index]:
        """Registered indexes; rebuilt lazily after unpickling.

        Estimation plan units ship tables to process-pool workers but
        never read their indexes (they build their own sample indexes),
        so a restored table defers the full rebuild until something
        actually looks.
        """
        if self._pending_index_specs:
            self._rebuild_indexes()
        return self._indexes

    def _rebuild_indexes(self) -> None:
        specs, self._pending_index_specs = self._pending_index_specs, []
        pairs = [(decode_record(self.schema, record), rid)
                 for rid, record in self.heap.scan()]
        for name, key_columns, kind, page_size, fill_factor, \
                max_fanout in specs:
            index = Index(name, self.schema, key_columns,
                          kind=IndexKind(kind), page_size=page_size,
                          fill_factor=fill_factor, max_fanout=max_fanout)
            index.build(pairs)
            self._indexes[name] = index

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(cls, name: str, schema: Schema,
                  rows: Sequence[Sequence[Any]],
                  page_size: int = DEFAULT_PAGE_SIZE) -> "Table":
        """Create a table and load ``rows`` into it."""
        table = cls(name, schema, page_size=page_size)
        table.insert_many(rows)
        return table

    def insert(self, row: Sequence[Any]) -> RID:
        """Insert one row; updates all existing indexes."""
        record = encode_record(self.schema, row)
        rid = self.heap.insert(record)
        self._rids.append(rid)
        for index in self.indexes.values():
            index.insert(row, rid)
        return rid

    def insert_many(self, rows: Sequence[Sequence[Any]]) -> list[RID]:
        """Insert many rows; returns their RIDs in order."""
        return [self.insert(row) for row in rows]

    # ------------------------------------------------------------------
    # Row access
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return self.heap.num_records

    def __len__(self) -> int:
        return self.num_rows

    def rows(self) -> Iterator[tuple[Any, ...]]:
        """Decode and iterate all rows in physical order."""
        for record in self.heap.records():
            yield decode_record(self.schema, record)

    def row_at(self, position: int) -> tuple[Any, ...]:
        """The ``position``-th row ever inserted (0-based)."""
        rid = self._rids[position]
        return decode_record(self.schema, self.heap.get(rid))

    def rows_at(self, positions: Sequence[int]) -> list[tuple[Any, ...]]:
        """Rows at the given positions (the row-sampling access path)."""
        return [self.row_at(position) for position in positions]

    def rid_at(self, position: int) -> RID:
        """RID of the ``position``-th row."""
        return self._rids[position]

    def column_values(self, column: str) -> list[Any]:
        """All values of one column, in physical row order."""
        position = self.schema.index_of(column)
        return [row[position] for row in self.rows()]

    def pages(self) -> Iterator[Page]:
        """Heap pages (the block-sampling access path)."""
        return self.heap.pages()

    def content_fingerprint(self) -> str:
        """SHA-256 hex digest of the table's content (schema + heap).

        Deliberately excludes the table *name*: the persistent sample
        store is content-addressed, and two tables holding identical
        rows under identical schemas draw identical samples for a fixed
        seed, so they may share stored entries. Inserting a row changes
        the heap and therefore the fingerprint, which is how stale
        store entries are invalidated — old fingerprints simply stop
        being looked up and age out of the store via eviction.
        """
        digest = hashlib.sha256()
        schema_spec = ",".join(f"{column.name}:{column.dtype.name}"
                               for column in self.schema.columns)
        digest.update(f"table:{self.page_size}:{schema_spec}:"
                      .encode("utf-8"))
        digest.update(self.heap.content_fingerprint().encode("ascii"))
        return digest.hexdigest()

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------
    def create_index(self, name: str, key_columns: Sequence[str],
                     kind: IndexKind = IndexKind.NONCLUSTERED,
                     fill_factor: float = 1.0) -> Index:
        """Build an index over the current rows and register it."""
        if name in self.indexes:
            raise SchemaError(f"index {name!r} already exists on "
                              f"table {self.name!r}")
        index = Index(name, self.schema, key_columns, kind=kind,
                      page_size=self.page_size, fill_factor=fill_factor)
        pairs = [(decode_record(self.schema, record), rid)
                 for rid, record in self.heap.scan()]
        index.build(pairs)
        self.indexes[name] = index
        return index

    def drop_index(self, name: str) -> None:
        """Remove a registered index."""
        if name not in self.indexes:
            raise SchemaError(f"no index {name!r} on table {self.name!r}")
        del self.indexes[name]

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Pickle via the heap: pages are the table's source of truth.

        The RID list replays from a heap scan (inserts are append-only)
        and indexes are recorded as configuration specs, rebuilt lazily
        on first access — so neither is serialized, which keeps pickles
        compact and lets plan units ship tables to process-pool workers
        without paying for index rebuilds the estimator never uses.
        """
        if self._pending_index_specs:
            index_specs = list(self._pending_index_specs)
        else:
            index_specs = [
                (index.name, index.key_columns, index.kind.value,
                 index.page_size, index.fill_factor, index.max_fanout)
                for index in self._indexes.values()]
        return {
            "name": self.name,
            "schema": self.schema,
            "page_size": self.page_size,
            "heap": self.heap,
            "index_specs": index_specs,
        }

    def __setstate__(self, state: dict) -> None:
        self.name = state["name"]
        self.schema = state["schema"]
        self.page_size = state["page_size"]
        self.heap = state["heap"]
        self._rids = [rid for rid, _ in self.heap.scan()]
        self._indexes = {}
        self._pending_index_specs = list(state["index_specs"])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Table({self.name!r}, rows={self.num_rows}, "
                f"indexes={sorted(self.indexes)})")
