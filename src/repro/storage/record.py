"""Row <-> bytes codecs.

Uncompressed records are stored in *row format*: the encodings of the
columns concatenated in schema order. Fixed-width columns occupy their
declared width; variable-width columns carry their own length prefix (see
:class:`repro.storage.types.VarCharType`). This is the representation the
compression algorithms take as input, and the representation whose total
size defines the denominator of the compression fraction.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Any, Sequence

from repro.errors import EncodingError
from repro.storage.schema import Schema
from repro.storage.types import VarCharType


@lru_cache(maxsize=256)
def fixed_column_offsets(schema: Schema) -> tuple[int, ...] | None:
    """Fence-post byte offsets of a fully fixed-width schema's columns.

    Returns ``(0, w0, w0+w1, ..., row_width)`` — one more entry than
    there are columns — or ``None`` when any column is variable-width.
    Schemas hash by their column list, so every page split / columnize
    over the same schema shares one computed layout instead of
    rebuilding it per call.
    """
    offsets = [0]
    for col in schema.columns:
        size = col.dtype.fixed_size
        if size is None:
            return None
        offsets.append(offsets[-1] + size)
    return tuple(offsets)


def encode_record(schema: Schema, row: Sequence[Any]) -> bytes:
    """Encode ``row`` to its uncompressed record bytes."""
    schema.validate_row(row)
    parts = [col.dtype.encode(value)
             for col, value in zip(schema.columns, row)]
    return b"".join(parts)


def decode_record(schema: Schema, data: bytes) -> tuple[Any, ...]:
    """Decode record bytes produced by :func:`encode_record`."""
    values: list[Any] = []
    offset = 0
    for col in schema.columns:
        dtype = col.dtype
        if dtype.fixed_size is not None:
            end = offset + dtype.fixed_size
            chunk = data[offset:end]
            if len(chunk) != dtype.fixed_size:
                raise EncodingError(
                    f"record truncated in column {col.name!r}")
            values.append(dtype.decode(chunk))
            offset = end
        elif isinstance(dtype, VarCharType):
            if offset + VarCharType.LENGTH_PREFIX_BYTES > len(data):
                raise EncodingError(
                    f"record truncated in column {col.name!r}")
            length = int.from_bytes(
                data[offset:offset + VarCharType.LENGTH_PREFIX_BYTES], "big")
            end = offset + VarCharType.LENGTH_PREFIX_BYTES + length
            chunk = data[offset:end]
            values.append(dtype.decode(chunk))
            offset = end
        else:  # pragma: no cover - no other variable types exist
            raise EncodingError(
                f"cannot decode variable-width type {dtype.name}")
    if offset != len(data):
        raise EncodingError(
            f"{len(data) - offset} trailing bytes after decoding record")
    return tuple(values)


def split_record(schema: Schema, data: bytes) -> list[bytes]:
    """Split record bytes into per-column byte slices, in schema order.

    Compression algorithms compress each column independently (Section
    II-A: "In the case of multi-column indexes, each column is compressed
    independently"), so they consume records in this split form.
    """
    offsets = fixed_column_offsets(schema)
    if offsets is not None:
        if len(data) != offsets[-1]:
            raise EncodingError(
                f"record of {len(data)} bytes does not match fixed "
                f"schema width {offsets[-1]}")
        return [data[offsets[i]:offsets[i + 1]]
                for i in range(len(offsets) - 1)]
    slices: list[bytes] = []
    offset = 0
    for col in schema.columns:
        dtype = col.dtype
        if dtype.fixed_size is not None:
            end = offset + dtype.fixed_size
        elif isinstance(dtype, VarCharType):
            if offset + VarCharType.LENGTH_PREFIX_BYTES > len(data):
                raise EncodingError(
                    f"record truncated in column {col.name!r}")
            length = int.from_bytes(
                data[offset:offset + VarCharType.LENGTH_PREFIX_BYTES], "big")
            end = offset + VarCharType.LENGTH_PREFIX_BYTES + length
        else:  # pragma: no cover
            raise EncodingError(
                f"cannot split variable-width type {dtype.name}")
        chunk = data[offset:end]
        if len(chunk) != end - offset:
            raise EncodingError(f"record truncated in column {col.name!r}")
        slices.append(chunk)
        offset = end
    if offset != len(data):
        raise EncodingError(
            f"{len(data) - offset} trailing bytes after splitting record")
    return slices


def split_records(schema: Schema, records: Sequence[bytes],
                  ) -> list[list[bytes]]:
    """Batch form of :func:`split_record`: one slice list per *column*.

    Splitting a whole page at once amortizes the schema walk: fixed
    schemas resolve their memoized offsets once for the entire batch,
    variable schemas pay one :func:`split_record` per record (as
    before) but build the transposed per-column lists directly.
    """
    columns: list[list[bytes]] = [[] for _ in schema.columns]
    offsets = fixed_column_offsets(schema)
    if offsets is not None:
        width = offsets[-1]
        spans = [(offsets[i], offsets[i + 1])
                 for i in range(len(offsets) - 1)]
        for record in records:
            if len(record) != width:
                raise EncodingError(
                    f"record of {len(record)} bytes does not match "
                    f"fixed schema width {width}")
            for position, (start, end) in enumerate(spans):
                columns[position].append(record[start:end])
        return columns
    for record in records:
        for position, chunk in enumerate(split_record(schema, record)):
            columns[position].append(chunk)
    return columns


def record_key(schema: Schema, data: bytes, key_positions: Sequence[int],
               ) -> tuple[Any, ...]:
    """Extract the key tuple at ``key_positions`` from record bytes.

    Only the requested columns are decoded; the rest of the record is
    skipped over (fixed-width columns by their memoized offsets,
    VARCHARs by their length prefix). Truncated or oversized records
    still raise :class:`EncodingError`, exactly like a full decode.
    """
    wanted = set(key_positions)
    values: dict[int, Any] = {}
    offsets = fixed_column_offsets(schema)
    if offsets is not None:
        if len(data) != offsets[-1]:
            raise EncodingError(
                f"record of {len(data)} bytes does not match fixed "
                f"schema width {offsets[-1]}")
        for position in wanted:
            col = schema.columns[position]
            values[position] = col.dtype.decode(
                data[offsets[position]:offsets[position + 1]])
        return tuple(values[i] for i in key_positions)
    offset = 0
    for position, col in enumerate(schema.columns):
        dtype = col.dtype
        if dtype.fixed_size is not None:
            end = offset + dtype.fixed_size
            if end > len(data):
                raise EncodingError(
                    f"record truncated in column {col.name!r}")
        elif isinstance(dtype, VarCharType):
            if offset + VarCharType.LENGTH_PREFIX_BYTES > len(data):
                raise EncodingError(
                    f"record truncated in column {col.name!r}")
            length = int.from_bytes(
                data[offset:offset + VarCharType.LENGTH_PREFIX_BYTES], "big")
            end = offset + VarCharType.LENGTH_PREFIX_BYTES + length
            if end > len(data):
                raise EncodingError(
                    f"record truncated in column {col.name!r}")
        else:  # pragma: no cover - no other variable types exist
            raise EncodingError(
                f"cannot decode variable-width type {dtype.name}")
        if position in wanted:
            values[position] = dtype.decode(data[offset:end])
        offset = end
    if offset != len(data):
        raise EncodingError(
            f"{len(data) - offset} trailing bytes after decoding record")
    return tuple(values[i] for i in key_positions)
