"""Row <-> bytes codecs.

Uncompressed records are stored in *row format*: the encodings of the
columns concatenated in schema order. Fixed-width columns occupy their
declared width; variable-width columns carry their own length prefix (see
:class:`repro.storage.types.VarCharType`). This is the representation the
compression algorithms take as input, and the representation whose total
size defines the denominator of the compression fraction.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import EncodingError
from repro.storage.schema import Schema
from repro.storage.types import VarCharType


def encode_record(schema: Schema, row: Sequence[Any]) -> bytes:
    """Encode ``row`` to its uncompressed record bytes."""
    schema.validate_row(row)
    parts = [col.dtype.encode(value)
             for col, value in zip(schema.columns, row)]
    return b"".join(parts)


def decode_record(schema: Schema, data: bytes) -> tuple[Any, ...]:
    """Decode record bytes produced by :func:`encode_record`."""
    values: list[Any] = []
    offset = 0
    for col in schema.columns:
        dtype = col.dtype
        if dtype.fixed_size is not None:
            end = offset + dtype.fixed_size
            chunk = data[offset:end]
            if len(chunk) != dtype.fixed_size:
                raise EncodingError(
                    f"record truncated in column {col.name!r}")
            values.append(dtype.decode(chunk))
            offset = end
        elif isinstance(dtype, VarCharType):
            if offset + VarCharType.LENGTH_PREFIX_BYTES > len(data):
                raise EncodingError(
                    f"record truncated in column {col.name!r}")
            length = int.from_bytes(
                data[offset:offset + VarCharType.LENGTH_PREFIX_BYTES], "big")
            end = offset + VarCharType.LENGTH_PREFIX_BYTES + length
            chunk = data[offset:end]
            values.append(dtype.decode(chunk))
            offset = end
        else:  # pragma: no cover - no other variable types exist
            raise EncodingError(
                f"cannot decode variable-width type {dtype.name}")
    if offset != len(data):
        raise EncodingError(
            f"{len(data) - offset} trailing bytes after decoding record")
    return tuple(values)


def split_record(schema: Schema, data: bytes) -> list[bytes]:
    """Split record bytes into per-column byte slices, in schema order.

    Compression algorithms compress each column independently (Section
    II-A: "In the case of multi-column indexes, each column is compressed
    independently"), so they consume records in this split form.
    """
    slices: list[bytes] = []
    offset = 0
    for col in schema.columns:
        dtype = col.dtype
        if dtype.fixed_size is not None:
            end = offset + dtype.fixed_size
        elif isinstance(dtype, VarCharType):
            if offset + VarCharType.LENGTH_PREFIX_BYTES > len(data):
                raise EncodingError(
                    f"record truncated in column {col.name!r}")
            length = int.from_bytes(
                data[offset:offset + VarCharType.LENGTH_PREFIX_BYTES], "big")
            end = offset + VarCharType.LENGTH_PREFIX_BYTES + length
        else:  # pragma: no cover
            raise EncodingError(
                f"cannot split variable-width type {dtype.name}")
        chunk = data[offset:end]
        if len(chunk) != end - offset:
            raise EncodingError(f"record truncated in column {col.name!r}")
        slices.append(chunk)
        offset = end
    if offset != len(data):
        raise EncodingError(
            f"{len(data) - offset} trailing bytes after splitting record")
    return slices


def record_key(schema: Schema, data: bytes, key_positions: Sequence[int],
               ) -> tuple[Any, ...]:
    """Extract the key tuple at ``key_positions`` from record bytes."""
    row = decode_record(schema, data)
    return tuple(row[i] for i in key_positions)
