"""A B+-tree with byte-accurate leaf pages.

The tree maps comparable keys (tuples of column values) to opaque record
bytes. Leaves hold the records and enforce *page capacity in bytes*: a
leaf may hold as many records as fit a slotted page of the configured
size, exactly mirroring :class:`repro.storage.page.Page` accounting. This
is what gives the reproduction its index-page fidelity — compressing "the
index" means compressing the byte images of these leaf pages.

Features:

* duplicate keys (non-unique indexes),
* bulk loading from sorted input with a fill factor (how real systems
  build indexes, including the index-on-a-sample step of SampleCF),
* point inserts with leaf/internal splits,
* ordered iteration, point and range lookups via the leaf chain,
* structural validation used heavily by the test suite.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Iterable, Iterator

from repro.constants import (DEFAULT_FILL_FACTOR, DEFAULT_PAGE_SIZE,
                             PAGE_HEADER_SIZE, SLOT_SIZE)
from repro.errors import IndexError_
from repro.storage.page import Page, PageType

Key = tuple[Any, ...]

#: Default maximum number of children of an internal node.
DEFAULT_FANOUT: int = 128


class _Leaf:
    """A leaf node: parallel ``keys``/``records`` lists plus a byte count."""

    __slots__ = ("keys", "records", "payload_bytes", "next")

    def __init__(self) -> None:
        self.keys: list[Key] = []
        self.records: list[bytes] = []
        self.payload_bytes = 0
        self.next: _Leaf | None = None

    def used_bytes(self) -> int:
        """Bytes this leaf would occupy as a slotted page."""
        return (PAGE_HEADER_SIZE + SLOT_SIZE * len(self.records)
                + self.payload_bytes)

    def fits(self, record: bytes, capacity: int) -> bool:
        return self.used_bytes() + SLOT_SIZE + len(record) <= capacity


class _Internal:
    """An internal node: ``keys[i]`` separates ``children[i]``/``children[i+1]``.

    Invariant: ``keys[i]`` equals the smallest key in the subtree of
    ``children[i + 1]``.
    """

    __slots__ = ("keys", "children")

    def __init__(self) -> None:
        self.keys: list[Key] = []
        self.children: list[_Leaf | _Internal] = []


class BPlusTree:
    """B+-tree over ``(key, record_bytes)`` entries with duplicate support."""

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE,
                 max_fanout: int = DEFAULT_FANOUT) -> None:
        if max_fanout < 3:
            raise IndexError_(f"fanout must be at least 3, got {max_fanout}")
        self.page_size = page_size
        self.max_fanout = max_fanout
        self._root: _Leaf | _Internal = _Leaf()
        self._first_leaf: _Leaf = self._root
        self._count = 0
        self._height = 1

    # ------------------------------------------------------------------
    # Bulk loading
    # ------------------------------------------------------------------
    @classmethod
    def bulk_load(cls, items: Iterable[tuple[Key, bytes]],
                  page_size: int = DEFAULT_PAGE_SIZE,
                  max_fanout: int = DEFAULT_FANOUT,
                  fill_factor: float = DEFAULT_FILL_FACTOR,
                  presorted: bool = False) -> "BPlusTree":
        """Build a tree from ``(key, record)`` pairs.

        ``items`` are sorted by key unless ``presorted`` is true. Leaves
        are packed up to ``fill_factor * page_size`` bytes (at least one
        record each), the standard way indexes are created from a data or
        sample scan — including step 2 of the paper's SampleCF algorithm.
        """
        if not 0.0 < fill_factor <= 1.0:
            raise IndexError_(
                f"fill factor must be in (0, 1], got {fill_factor}")
        entries = list(items)
        if not presorted:
            entries.sort(key=lambda item: item[0])
        else:
            for prev, cur in zip(entries, entries[1:]):
                if prev[0] > cur[0]:
                    raise IndexError_("items declared presorted are not")
        tree = cls(page_size=page_size, max_fanout=max_fanout)
        if not entries:
            return tree
        capacity = int(fill_factor * page_size)
        leaves: list[_Leaf] = []
        current = _Leaf()
        for key, record in entries:
            tree._check_record_size(record)
            if current.records and not current.fits(record, capacity):
                leaves.append(current)
                nxt = _Leaf()
                current.next = nxt
                current = nxt
            current.keys.append(key)
            current.records.append(bytes(record))
            current.payload_bytes += len(record)
        leaves.append(current)
        tree._count = len(entries)
        tree._first_leaf = leaves[0]
        tree._root, tree._height = tree._build_internal_levels(leaves)
        return tree

    def _build_internal_levels(self, leaves: list[_Leaf],
                               ) -> tuple[_Leaf | _Internal, int]:
        """Stack internal levels on top of packed leaves."""
        level: list[_Leaf | _Internal] = list(leaves)
        height = 1
        while len(level) > 1:
            groups = _chunk_children(level, self.max_fanout)
            parents: list[_Leaf | _Internal] = []
            for group in groups:
                node = _Internal()
                node.children = group
                node.keys = [_subtree_min_key(child) for child in group[1:]]
                parents.append(node)
            level = parents
            height += 1
        return level[0], height

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, key: Key, record: bytes) -> None:
        """Insert one entry, splitting nodes as required."""
        self._check_record_size(record)
        split = self._insert_into(self._root, key, bytes(record))
        if split is not None:
            separator, new_node = split
            new_root = _Internal()
            new_root.children = [self._root, new_node]
            new_root.keys = [separator]
            self._root = new_root
            self._height += 1
        self._count += 1

    def _check_record_size(self, record: bytes) -> None:
        smallest_leaf = PAGE_HEADER_SIZE + SLOT_SIZE + len(record)
        if smallest_leaf > self.page_size:
            raise IndexError_(
                f"record of {len(record)} bytes cannot fit a "
                f"{self.page_size}-byte leaf page")

    def _insert_into(self, node: _Leaf | _Internal, key: Key, record: bytes,
                     ) -> tuple[Key, _Leaf | _Internal] | None:
        """Recursive insert; returns ``(separator, new_right)`` on split."""
        if isinstance(node, _Leaf):
            position = bisect_right(node.keys, key)
            node.keys.insert(position, key)
            node.records.insert(position, record)
            node.payload_bytes += len(record)
            if node.used_bytes() <= self.page_size:
                return None
            return self._split_leaf(node)
        child_index = bisect_right(node.keys, key)
        split = self._insert_into(node.children[child_index], key, record)
        if split is None:
            return None
        separator, new_child = split
        node.keys.insert(child_index, separator)
        node.children.insert(child_index + 1, new_child)
        if len(node.children) <= self.max_fanout:
            return None
        return self._split_internal(node)

    def _split_leaf(self, leaf: _Leaf) -> tuple[Key, _Leaf]:
        """Split an over-full leaf roughly in half by payload bytes."""
        half = leaf.payload_bytes / 2
        cut = 1
        running = len(leaf.records[0])
        while cut < len(leaf.records) - 1 and running < half:
            running += len(leaf.records[cut])
            cut += 1
        right = _Leaf()
        right.keys = leaf.keys[cut:]
        right.records = leaf.records[cut:]
        right.payload_bytes = sum(len(r) for r in right.records)
        right.next = leaf.next
        leaf.keys = leaf.keys[:cut]
        leaf.records = leaf.records[:cut]
        leaf.payload_bytes -= right.payload_bytes
        leaf.next = right
        return right.keys[0], right

    def _split_internal(self, node: _Internal) -> tuple[Key, _Internal]:
        """Split an over-full internal node in half."""
        mid = len(node.children) // 2
        right = _Internal()
        right.children = node.children[mid:]
        right.keys = node.keys[mid:]
        separator = node.keys[mid - 1]
        node.children = node.children[:mid]
        node.keys = node.keys[:mid - 1]
        return separator, right

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _leftmost_leaf_for(self, key: Key) -> _Leaf:
        """The first leaf that could contain ``key``."""
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[bisect_left(node.keys, key)]
        return node

    def search(self, key: Key) -> list[bytes]:
        """All records stored under exactly ``key`` (duplicates included)."""
        results: list[bytes] = []
        leaf: _Leaf | None = self._leftmost_leaf_for(key)
        while leaf is not None:
            start = bisect_left(leaf.keys, key)
            if start == len(leaf.keys):
                leaf = leaf.next
                if leaf is not None and leaf.keys and leaf.keys[0] > key:
                    break
                continue
            for position in range(start, len(leaf.keys)):
                if leaf.keys[position] != key:
                    return results
                results.append(leaf.records[position])
            leaf = leaf.next
        return results

    def range_scan(self, lo: Key | None = None, hi: Key | None = None,
                   ) -> Iterator[tuple[Key, bytes]]:
        """Iterate entries with ``lo <= key <= hi`` in key order."""
        if lo is None:
            leaf: _Leaf | None = self._first_leaf
            start = 0
        else:
            leaf = self._leftmost_leaf_for(lo)
            start = bisect_left(leaf.keys, lo)
        while leaf is not None:
            for position in range(start, len(leaf.keys)):
                key = leaf.keys[position]
                if hi is not None and key > hi:
                    return
                yield key, leaf.records[position]
            leaf = leaf.next
            start = 0

    def items(self) -> Iterator[tuple[Key, bytes]]:
        """All entries in key order."""
        return self.range_scan()

    # ------------------------------------------------------------------
    # Physical views
    # ------------------------------------------------------------------
    def leaves(self) -> Iterator[_Leaf]:
        """Iterate raw leaves left to right (internal use and tests)."""
        leaf: _Leaf | None = self._first_leaf
        while leaf is not None:
            yield leaf
            leaf = leaf.next

    def leaf_pages(self) -> Iterator[Page]:
        """Materialise each leaf as a slotted :class:`Page`.

        These are the pages the compression algorithms consume. Records
        appear in key order, page by page.
        """
        for page_id, leaf in enumerate(self.leaves()):
            page = Page(self.page_size, page_id=page_id,
                        page_type=PageType.INDEX_LEAF)
            for record in leaf.records:
                page.insert(record)
            yield page

    @property
    def num_entries(self) -> int:
        return self._count

    @property
    def height(self) -> int:
        return self._height

    @property
    def num_leaf_pages(self) -> int:
        return sum(1 for _ in self.leaves())

    @property
    def leaf_payload_bytes(self) -> int:
        """Record bytes across all leaves (paper-model index size)."""
        return sum(leaf.payload_bytes for leaf in self.leaves())

    @property
    def leaf_physical_bytes(self) -> int:
        """Allocated leaf bytes: ``num_leaf_pages * page_size``."""
        return self.num_leaf_pages * self.page_size

    def __len__(self) -> int:
        return self._count

    # ------------------------------------------------------------------
    # Validation (used by the test suite)
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check every structural invariant; raises :class:`IndexError_`."""
        count = self._validate_node(self._root, depth=1)
        if count != self._count:
            raise IndexError_(
                f"entry count mismatch: counted {count}, "
                f"recorded {self._count}")
        previous: Key | None = None
        chained = 0
        for leaf in self.leaves():
            if leaf.used_bytes() > self.page_size and len(leaf.records) > 1:
                raise IndexError_("leaf exceeds page capacity")
            if len(leaf.records) != len(leaf.keys):
                raise IndexError_("leaf keys/records length mismatch")
            for key in leaf.keys:
                if previous is not None and key < previous:
                    raise IndexError_("leaf chain out of order")
                previous = key
            chained += len(leaf.keys)
        if chained != self._count:
            raise IndexError_(
                f"leaf chain holds {chained} entries, expected {self._count}")

    def _validate_node(self, node: _Leaf | _Internal, depth: int) -> int:
        if isinstance(node, _Leaf):
            if depth != self._height:
                raise IndexError_(
                    f"leaf at depth {depth}, height is {self._height}")
            if node.payload_bytes != sum(len(r) for r in node.records):
                raise IndexError_("leaf payload byte count is stale")
            return len(node.records)
        if len(node.children) < 2:
            raise IndexError_("internal node with fewer than 2 children")
        if len(node.children) > self.max_fanout:
            raise IndexError_("internal node exceeds fanout")
        if len(node.keys) != len(node.children) - 1:
            raise IndexError_("internal separator count mismatch")
        for separator, child in zip(node.keys, node.children[1:]):
            if _subtree_min_key(child) != separator:
                raise IndexError_(
                    f"separator {separator!r} does not match child minimum")
        return sum(self._validate_node(child, depth + 1)
                   for child in node.children)


def _subtree_min_key(node: _Leaf | _Internal) -> Key:
    """Smallest key stored in the subtree rooted at ``node``."""
    while isinstance(node, _Internal):
        node = node.children[0]
    if not node.keys:
        raise IndexError_("empty leaf inside a non-empty tree")
    return node.keys[0]


def _chunk_children(nodes: list, fanout: int) -> list[list]:
    """Partition ``nodes`` into groups of at most ``fanout``, each >= 2.

    If the tail group would have a single node, one node is moved from the
    previous group so every internal node has at least two children.
    """
    groups = [nodes[i:i + fanout] for i in range(0, len(nodes), fanout)]
    if len(groups) > 1 and len(groups[-1]) == 1:
        groups[-1].insert(0, groups[-2].pop())
    return groups
