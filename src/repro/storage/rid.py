"""Row identifiers.

A :class:`RID` names a record's physical location: the page that holds it
and the slot within that page. RIDs are what non-clustered index leaves
point at, and they are 8 bytes on disk (4-byte page id + 4-byte slot).
"""

from __future__ import annotations

import struct
from typing import NamedTuple

#: On-disk size of an encoded RID in bytes.
RID_BYTES: int = 8

_RID_STRUCT = struct.Struct(">II")


class RID(NamedTuple):
    """Physical address of a record: ``(page_id, slot)``."""

    page_id: int
    slot: int

    def encode(self) -> bytes:
        """Serialise this RID to its fixed 8-byte representation."""
        return _RID_STRUCT.pack(self.page_id, self.slot)

    @classmethod
    def decode(cls, data: bytes) -> "RID":
        """Parse a RID from exactly :data:`RID_BYTES` bytes."""
        page_id, slot = _RID_STRUCT.unpack(data)
        return cls(page_id, slot)

    def __str__(self) -> str:
        return f"({self.page_id}:{self.slot})"
