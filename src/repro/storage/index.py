"""Clustered and non-clustered indexes.

An :class:`Index` wraps a B+-tree built over a table's rows:

* a **clustered** index stores the full row in its leaves (the table *is*
  the index), so compressing it compresses the data;
* a **non-clustered** index stores the key columns plus an 8-byte RID
  locator per entry.

Compression is applied to the index's leaf pages. The
:meth:`Index.compress` method implements the three accounting modes the
experiments need:

* ``payload`` — record bytes only; reproduces the paper's model exactly;
* ``physical`` without repack — in-place page compression keeps the page
  count, so allocated bytes barely change (returned faithfully);
* ``physical`` with ``repack=True`` — pages are refilled to capacity with
  compressed data, the way an index rebuild with compression works.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Iterator, Literal, Sequence

from repro.constants import (DEFAULT_FILL_FACTOR, DEFAULT_PAGE_SIZE)
from repro.errors import CompressionError, IndexError_, KernelUnavailable
from repro.storage.btree import DEFAULT_FANOUT, BPlusTree
from repro.storage.page import Page
from repro.storage.record import (decode_record, encode_record, record_key)
from repro.storage.rid import RID
from repro.storage.schema import Column, Schema
from repro.storage.types import BigIntType
from repro.compression.base import (CompressionAlgorithm, CompressionResult)
from repro.compression.repack import compressed_page_capacity, repack

Accounting = Literal["payload", "physical"]

#: Name of the synthetic locator column in non-clustered leaf schemas.
RID_COLUMN = "_rid"


class IndexKind(Enum):
    """Physical index organisations."""

    CLUSTERED = "clustered"
    NONCLUSTERED = "nonclustered"


def _rid_to_int(rid: RID) -> int:
    return (rid.page_id << 32) | rid.slot


def _int_to_rid(value: int) -> RID:
    return RID(value >> 32, value & 0xFFFFFFFF)


@dataclass(frozen=True)
class IndexSize:
    """Uncompressed size summary of an index."""

    payload_bytes: int
    physical_bytes: int
    leaf_pages: int
    entries: int


class Index:
    """A (possibly compressed-in-analysis) B+-tree index over rows."""

    def __init__(self, name: str, table_schema: Schema,
                 key_columns: Sequence[str],
                 kind: IndexKind = IndexKind.CLUSTERED,
                 page_size: int = DEFAULT_PAGE_SIZE,
                 fill_factor: float = DEFAULT_FILL_FACTOR,
                 max_fanout: int = DEFAULT_FANOUT) -> None:
        if not key_columns:
            raise IndexError_("an index needs at least one key column")
        self.name = name
        self.table_schema = table_schema
        self.key_columns = tuple(key_columns)
        self.kind = kind
        self.page_size = page_size
        self.fill_factor = fill_factor
        self.max_fanout = max_fanout
        self._key_positions = tuple(
            table_schema.index_of(column) for column in key_columns)
        if kind is IndexKind.CLUSTERED:
            self.leaf_schema = table_schema
        else:
            projected = list(table_schema.project(key_columns).columns)
            projected.append(Column(RID_COLUMN, BigIntType()))
            self.leaf_schema = Schema(projected)
        self._tree = BPlusTree(page_size=page_size, max_fanout=max_fanout)
        # Columnar leaf views for the size-only estimation path, built
        # lazily and shared by every algorithm sizing this index. The
        # views (plus their derived arrays) cost a small multiple of
        # the leaf payload in memory for as long as the index lives —
        # sample indexes are small and their count is bounded by the
        # engine's sample cache capacity (REPRO_SAMPLE_CACHE_SIZE).
        self._size_view_cache: dict[str, list] = {}

    def __getstate__(self) -> dict:
        """Pickle without the kernel view cache (numpy arrays, bulky).

        Sample indexes travel inside pickled
        :class:`~repro.engine.samples.MaterializedSample` objects (to
        process-pool workers and the persistent store); the views are
        cheap to rebuild and must not inflate those payloads.
        """
        state = dict(self.__dict__)
        state.pop("_size_view_cache", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._size_view_cache = {}

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    def key_of(self, row: Sequence[Any]) -> tuple[Any, ...]:
        """Extract this index's key tuple from a full table row."""
        return tuple(row[position] for position in self._key_positions)

    def _leaf_record(self, row: Sequence[Any], rid: RID | None) -> bytes:
        if self.kind is IndexKind.CLUSTERED:
            return encode_record(self.table_schema, row)
        if rid is None:
            raise IndexError_(
                "non-clustered index entries need a RID locator")
        key_values = list(self.key_of(row))
        key_values.append(_rid_to_int(rid))
        return encode_record(self.leaf_schema, key_values)

    def build(self, rows_with_rids: Sequence[tuple[Sequence[Any], RID | None]],
              ) -> "Index":
        """Bulk-load the index from ``(row, rid)`` pairs.

        This is how both real index creation and SampleCF's
        index-on-the-sample step run: sort once, pack leaves.
        """
        entries = []
        for row, rid in rows_with_rids:
            self.table_schema.validate_row(row)
            entries.append((self.key_of(row), self._leaf_record(row, rid)))
        self._tree = BPlusTree.bulk_load(
            entries, page_size=self.page_size, max_fanout=self.max_fanout,
            fill_factor=self.fill_factor)
        self._size_view_cache.clear()
        return self

    def build_from_rows(self, rows: Sequence[Sequence[Any]]) -> "Index":
        """Bulk-load a clustered index directly from rows."""
        if self.kind is not IndexKind.CLUSTERED:
            raise IndexError_(
                "non-clustered indexes need RIDs; use build()")
        return self.build([(row, None) for row in rows])

    def insert(self, row: Sequence[Any], rid: RID | None = None) -> None:
        """Insert one row (with its RID for non-clustered indexes)."""
        self.table_schema.validate_row(row)
        self._tree.insert(self.key_of(row), self._leaf_record(row, rid))
        self._size_view_cache.clear()

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def search(self, key: tuple[Any, ...]) -> list[tuple[Any, ...]]:
        """Decoded leaf entries stored under ``key``."""
        return [decode_record(self.leaf_schema, record)
                for record in self._tree.search(tuple(key))]

    def search_rids(self, key: tuple[Any, ...]) -> list[RID]:
        """RIDs stored under ``key`` (non-clustered only)."""
        if self.kind is not IndexKind.CLUSTERED:
            return [_int_to_rid(entry[-1]) for entry in self.search(key)]
        raise IndexError_("clustered indexes store rows, not RIDs")

    def range_scan(self, lo: tuple[Any, ...] | None = None,
                   hi: tuple[Any, ...] | None = None,
                   ) -> Iterator[tuple[Any, ...]]:
        """Decoded leaf entries with ``lo <= key <= hi``."""
        for _key, record in self._tree.range_scan(lo, hi):
            yield decode_record(self.leaf_schema, record)

    # ------------------------------------------------------------------
    # Physical views
    # ------------------------------------------------------------------
    @property
    def num_entries(self) -> int:
        return self._tree.num_entries

    @property
    def height(self) -> int:
        return self._tree.height

    def leaf_pages(self) -> Iterator[Page]:
        """The slotted leaf pages (compression input)."""
        return self._tree.leaf_pages()

    def leaf_records(self) -> Iterator[bytes]:
        """All leaf record byte strings in key order."""
        for leaf in self._tree.leaves():
            yield from leaf.records

    def leaf_records_at(self, positions: Sequence[int]) -> list[bytes]:
        """Leaf records at the given entry positions, in request order.

        Positions are 0-based offsets into the key-ordered leaf-record
        sequence and may repeat (with-replacement samples) or arrive
        unsorted. One streaming pass over the leaves suffices, stopping
        at the last needed leaf — the estimator's sampling access path,
        which must not materialize all ``num_entries`` records.
        """
        wanted: dict[int, list[int]] = {}
        for slot, position in enumerate(positions):
            position = int(position)
            if not 0 <= position < self.num_entries:
                raise IndexError_(
                    f"leaf position {position} out of range "
                    f"[0, {self.num_entries})")
            wanted.setdefault(position, []).append(slot)
        out: list[bytes | None] = [None] * len(positions)
        pending = sorted(wanted)
        cursor = 0
        base = 0
        for leaf in self._tree.leaves():
            records = leaf.records
            end = base + len(records)
            while cursor < len(pending) and pending[cursor] < end:
                position = pending[cursor]
                record = records[position - base]
                for slot in wanted[position]:
                    out[slot] = record
                cursor += 1
            if cursor == len(pending):
                break
            base = end
        return out

    def leaf_record_key(self, record: bytes) -> tuple[Any, ...]:
        """Extract the index key from a leaf record's bytes.

        Decodes only the key columns: a clustered leaf skips the
        non-key payload, a non-clustered leaf skips its RID locator —
        this runs once per sampled record on the estimation path.
        """
        if self.kind is IndexKind.CLUSTERED:
            return record_key(self.table_schema, record,
                              self._key_positions)
        return record_key(self.leaf_schema, record,
                          range(len(self.key_columns)))

    def clone_with_records(self, records: Sequence[bytes]) -> "Index":
        """A new index with identical configuration over ``records``.

        This is the "build an index on the sample" step when the sample
        was drawn from an *existing* index's leaves (Section II-C notes
        that sampling the index directly is more efficient than sampling
        the base table).
        """
        clone = Index(self.name, self.table_schema, self.key_columns,
                      kind=self.kind, page_size=self.page_size,
                      fill_factor=self.fill_factor,
                      max_fanout=self.max_fanout)
        entries = [(self.leaf_record_key(record), bytes(record))
                   for record in records]
        clone._tree = BPlusTree.bulk_load(
            entries, page_size=self.page_size, max_fanout=self.max_fanout,
            fill_factor=self.fill_factor)
        return clone

    def validate(self) -> None:
        """Structural self-check (delegates to the B+-tree)."""
        self._tree.validate()

    def uncompressed_size(self, accounting: Accounting = "payload") -> int:
        """Uncompressed leaf size under the chosen accounting."""
        if accounting == "payload":
            return self._tree.leaf_payload_bytes
        if accounting == "physical":
            return self._tree.leaf_physical_bytes
        raise CompressionError(f"unknown accounting {accounting!r}")

    def size(self) -> IndexSize:
        """Full uncompressed size summary."""
        return IndexSize(
            payload_bytes=self._tree.leaf_payload_bytes,
            physical_bytes=self._tree.leaf_physical_bytes,
            leaf_pages=self._tree.num_leaf_pages,
            entries=self._tree.num_entries)

    # ------------------------------------------------------------------
    # Compression
    # ------------------------------------------------------------------
    def compress(self, algorithm: CompressionAlgorithm,
                 accounting: Accounting = "payload",
                 repack_pages: bool = False) -> CompressionResult:
        """Compress the index's leaf level and report sizes.

        This is step 3 of the paper's Figure 2 when run on a sampled
        index, and the ground-truth computation when run on the full one.
        """
        if self.num_entries == 0:
            raise CompressionError(
                f"index {self.name!r} is empty; nothing to compress")
        if accounting not in ("payload", "physical"):
            raise CompressionError(f"unknown accounting {accounting!r}")
        pages_before = self._tree.num_leaf_pages
        uncompressed = self.uncompressed_size(accounting)
        if algorithm.scope == "index":
            return self._compress_index_scope(
                algorithm, accounting, uncompressed, pages_before)
        if repack_pages:
            return self._compress_repacked(
                algorithm, accounting, uncompressed, pages_before)
        return self._compress_in_place(
            algorithm, accounting, uncompressed, pages_before)

    def _compress_in_place(self, algorithm: CompressionAlgorithm,
                           accounting: Accounting, uncompressed: int,
                           pages_before: int) -> CompressionResult:
        payload = 0
        for leaf in self._tree.leaves():
            block = algorithm.compress(leaf.records, self.leaf_schema)
            payload += block.payload_size
        if accounting == "payload":
            compressed = payload
            pages_after = pages_before
        else:
            # In-place compression frees space inside pages but releases
            # none of them: allocated bytes stay the same.
            compressed = pages_before * self.page_size
            pages_after = pages_before
        return CompressionResult(
            algorithm=algorithm.name, accounting=accounting,
            uncompressed_bytes=uncompressed, compressed_bytes=compressed,
            row_count=self.num_entries, pages_before=pages_before,
            pages_after=pages_after,
            details={"compressed_payload": payload, "repacked": False})

    def _compress_repacked(self, algorithm: CompressionAlgorithm,
                           accounting: Accounting, uncompressed: int,
                           pages_before: int) -> CompressionResult:
        records = list(self.leaf_records())
        result = repack(records, self.leaf_schema, algorithm,
                        self.page_size)
        if accounting == "payload":
            compressed = result.payload_size
        else:
            compressed = result.physical_bytes
        return CompressionResult(
            algorithm=algorithm.name, accounting=accounting,
            uncompressed_bytes=uncompressed, compressed_bytes=compressed,
            row_count=self.num_entries, pages_before=pages_before,
            pages_after=result.num_pages,
            details={"compressed_payload": result.payload_size,
                     "repacked": True})

    # ------------------------------------------------------------------
    # Size-only estimation (vectorized kernels with scalar fallback)
    # ------------------------------------------------------------------
    def estimate_compression(self, algorithm: CompressionAlgorithm,
                             accounting: Accounting = "payload",
                             repack_pages: bool = False,
                             on_kernel=None,
                             on_fallback=None) -> CompressionResult:
        """Size-only :meth:`compress`: same result, no blobs built.

        The estimator only consumes sizes, so this path computes each
        unit's exact ``payload_size`` with the vectorized kernels
        (:mod:`repro.compression.kernels`) where they apply, and falls
        back to :meth:`compress`'s scalar arithmetic per block where
        they don't — results are bit-identical either way, which is
        what keeps kernel-produced estimates interchangeable with
        persisted scalar ones. Columnar leaf views are cached on the
        index, so a batch of algorithms over one (sample) index splits
        the leaves once.

        ``on_kernel`` / ``on_fallback`` are per-block accounting hooks
        (one block per leaf page, or one for an index-scoped
        algorithm); the engine charges them to its
        ``size_kernel_hits`` / ``size_scalar_fallbacks`` stats.
        Repacked page-scope compression stays entirely on the scalar
        path: bin-packing compressed records into fresh pages needs
        the incremental trackers, not just totals.
        """
        if self.num_entries == 0:
            raise CompressionError(
                f"index {self.name!r} is empty; nothing to compress")
        if accounting not in ("payload", "physical"):
            raise CompressionError(f"unknown accounting {accounting!r}")
        if algorithm.scope != "index" and repack_pages:
            if on_fallback is not None:
                on_fallback()
            return self.compress(algorithm, accounting=accounting,
                                 repack_pages=True)
        pages_before = self._tree.num_leaf_pages
        uncompressed = self.uncompressed_size(accounting)
        if algorithm.scope == "index":
            # Records stay a thunk: with warm views the kernel path
            # never materializes the full leaf-record list.
            payload = self._block_payload(
                algorithm, lambda: list(self.leaf_records()),
                self._index_views(), on_kernel, on_fallback)
            capacity = compressed_page_capacity(self.page_size)
            pages_after = max(1, -(-payload // capacity))
            compressed = payload if accounting == "payload" \
                else pages_after * self.page_size
            return CompressionResult(
                algorithm=algorithm.name, accounting=accounting,
                uncompressed_bytes=uncompressed,
                compressed_bytes=compressed,
                row_count=self.num_entries, pages_before=pages_before,
                pages_after=pages_after,
                details={"compressed_payload": payload, "repacked": False})
        payload = 0
        leaf_views = self._leaf_views()
        for position, leaf in enumerate(self._tree.leaves()):
            views = leaf_views[position] if leaf_views is not None \
                else None
            payload += self._block_payload(algorithm, leaf.records,
                                           views, on_kernel, on_fallback)
        if accounting == "payload":
            compressed = payload
        else:
            compressed = pages_before * self.page_size
        return CompressionResult(
            algorithm=algorithm.name, accounting=accounting,
            uncompressed_bytes=uncompressed, compressed_bytes=compressed,
            row_count=self.num_entries, pages_before=pages_before,
            pages_after=pages_before,
            details={"compressed_payload": payload, "repacked": False})

    def _block_payload(self, algorithm: CompressionAlgorithm,
                       records, views, on_kernel, on_fallback) -> int:
        """One block's payload: kernel when covered, scalar otherwise.

        ``records`` may be a thunk; it is only invoked on the scalar
        fallback, so kernel-served blocks never pay for materializing
        a record list.
        """
        if views is not None:
            try:
                size = algorithm.size_of(views, self.leaf_schema)
            except KernelUnavailable:
                size = None
            if size is not None:
                if on_kernel is not None:
                    on_kernel()
                return size
        if on_fallback is not None:
            on_fallback()
        if callable(records):
            records = records()
        return algorithm.compress(records, self.leaf_schema).payload_size

    def _leaf_views(self) -> list | None:
        """Cached per-leaf columnar views (``None`` when disabled).

        Built as row slices of the whole-index parent views from
        :meth:`_index_views`, so leaf-scope and index-scope sizing —
        and every algorithm and leaf within them — share one record
        split and one set of derived arrays.
        """
        from repro.compression.kernels import (build_leaf_views,
                                               kernels_enabled)

        if not kernels_enabled():
            return None
        cached = self._size_view_cache.get("leaves")
        if cached is None:
            cached = build_leaf_views(
                self.leaf_schema,
                [leaf.records for leaf in self._tree.leaves()],
                parents=self._index_views())
            self._size_view_cache["leaves"] = [cached]
        else:
            cached = cached[0]
        return cached

    def _index_views(self):
        """Cached whole-index columnar views (shared parent views)."""
        from repro.compression.kernels import (build_column_views,
                                               kernels_enabled)

        if not kernels_enabled():
            return None
        cached = self._size_view_cache.get("index")
        if cached is None:
            cached = [build_column_views(self.leaf_schema,
                                         list(self.leaf_records()),
                                         trusted_lengths=True)]
            self._size_view_cache["index"] = cached
        return cached[0]

    def _compress_index_scope(self, algorithm: CompressionAlgorithm,
                              accounting: Accounting, uncompressed: int,
                              pages_before: int) -> CompressionResult:
        records = list(self.leaf_records())
        block = algorithm.compress(records, self.leaf_schema)
        capacity = compressed_page_capacity(self.page_size)
        pages_after = max(1, -(-block.payload_size // capacity))
        if accounting == "payload":
            compressed = block.payload_size
        else:
            compressed = pages_after * self.page_size
        return CompressionResult(
            algorithm=algorithm.name, accounting=accounting,
            uncompressed_bytes=uncompressed, compressed_bytes=compressed,
            row_count=self.num_entries, pages_before=pages_before,
            pages_after=pages_after,
            details={"compressed_payload": block.payload_size,
                     "repacked": False})
