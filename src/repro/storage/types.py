"""SQL-style data types with byte-accurate encodings.

The paper's analysis is phrased for a single ``char(k)`` column; this
module provides that type plus the companions a realistic storage engine
needs (``VARCHAR``, 32/64-bit integers). Each type knows how to:

* validate a Python value,
* encode it to its uncompressed on-page bytes,
* decode those bytes back to the Python value, and
* report its *null-suppressed length* — the quantity the paper calls
  ``l_i``, i.e. the number of bytes that remain after pad suppression.

Integer encodings are big-endian with the sign bit flipped so that the
byte order of encodings matches the numeric order of values; index code
can therefore compare encoded keys with plain ``bytes`` comparison.
"""

from __future__ import annotations

import math
import struct
from abc import ABC, abstractmethod
from typing import Any

from repro.constants import PAD_BYTE
from repro.errors import EncodingError, SchemaError


def length_header_bytes(k: int) -> int:
    """Bytes needed to store a length in ``[0, k]``.

    This is the per-value overhead of null suppression: alongside the
    ``l_i`` retained bytes we must record how many bytes were retained.
    For ``k <= 255`` (including the paper's running ``char(20)`` example)
    this is a single byte.
    """
    if k < 0:
        raise SchemaError(f"length upper bound must be non-negative, got {k}")
    if k == 0:
        return 1
    bits = math.ceil(math.log2(k + 1))
    return max(1, math.ceil(bits / 8))


def minimal_int_bytes(value: int) -> int:
    """Smallest two's-complement width (in bytes) that can hold ``value``.

    This is the integer analogue of the paper's null-suppressed length:
    leading sign-extension bytes are suppressible, so a BIGINT holding 7
    needs one byte plus the length header.
    """
    length = 1
    while not -(1 << (8 * length - 1)) <= value <= (1 << (8 * length - 1)) - 1:
        length += 1
    return length


class DataType(ABC):
    """Abstract base class for column data types."""

    #: Short SQL-ish name, e.g. ``"char(20)"``.
    name: str

    @property
    @abstractmethod
    def fixed_size(self) -> int | None:
        """Uncompressed encoded size in bytes, or ``None`` if variable."""

    @property
    def is_fixed(self) -> bool:
        """Whether every encoded value of this type has the same width."""
        return self.fixed_size is not None

    @abstractmethod
    def validate(self, value: Any) -> None:
        """Raise :class:`EncodingError` if ``value`` is not storable."""

    @abstractmethod
    def encode(self, value: Any) -> bytes:
        """Encode ``value`` into its uncompressed byte representation."""

    @abstractmethod
    def decode(self, data: bytes) -> Any:
        """Inverse of :meth:`encode`."""

    @abstractmethod
    def null_suppressed_length(self, value: Any) -> int:
        """The paper's ``l_i``: bytes that survive pad/zero suppression."""

    def encoded_size(self, value: Any) -> int:
        """Uncompressed encoded size of ``value`` in bytes."""
        if self.fixed_size is not None:
            return self.fixed_size
        return len(self.encode(value))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.name == getattr(other, "name", None)

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.name))


class CharType(DataType):
    """Fixed-width ``CHAR(k)`` column, blank-padded on the right.

    Values are stored in exactly ``k`` bytes; shorter strings are padded
    with ASCII blanks. Following SQL semantics, trailing blanks are not
    significant: :meth:`decode` strips them, and two values differing only
    in trailing blanks encode identically.

    Only ``latin-1``-encodable text is accepted so that one character
    always occupies one byte, which keeps the paper's byte arithmetic
    (``l_i`` vs ``k``) exact.
    """

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise SchemaError(f"CHAR width must be positive, got {k}")
        self.k = k
        self.name = f"char({k})"

    @property
    def fixed_size(self) -> int:
        return self.k

    @property
    def length_bytes(self) -> int:
        """Size of the null-suppression length header for this width."""
        return length_header_bytes(self.k)

    def validate(self, value: Any) -> None:
        if not isinstance(value, str):
            raise EncodingError(
                f"{self.name} expects str, got {type(value).__name__}")
        try:
            raw = value.encode("latin-1")
        except UnicodeEncodeError as exc:
            raise EncodingError(
                f"{self.name} only stores latin-1 text: {value!r}") from exc
        if len(raw.rstrip(PAD_BYTE)) > self.k:
            raise EncodingError(
                f"value of length {len(raw)} exceeds {self.name}")

    def encode(self, value: str) -> bytes:
        self.validate(value)
        raw = value.encode("latin-1").rstrip(PAD_BYTE)
        return raw.ljust(self.k, PAD_BYTE)

    def decode(self, data: bytes) -> str:
        if len(data) != self.k:
            raise EncodingError(
                f"{self.name} expects {self.k} bytes, got {len(data)}")
        return data.rstrip(PAD_BYTE).decode("latin-1")

    def null_suppressed_length(self, value: str) -> int:
        self.validate(value)
        raw = value.encode("latin-1").rstrip(PAD_BYTE)
        return len(raw)


class VarCharType(DataType):
    """Variable-width ``VARCHAR(max_len)`` column.

    Encoded as a 2-byte big-endian length prefix followed by the raw
    bytes. Trailing blanks *are* significant for VARCHAR.
    """

    LENGTH_PREFIX_BYTES = 2

    def __init__(self, max_len: int) -> None:
        if max_len <= 0 or max_len > 0xFFFF:
            raise SchemaError(
                f"VARCHAR max length must be in [1, 65535], got {max_len}")
        self.max_len = max_len
        self.name = f"varchar({max_len})"

    @property
    def fixed_size(self) -> None:
        return None

    def validate(self, value: Any) -> None:
        if not isinstance(value, str):
            raise EncodingError(
                f"{self.name} expects str, got {type(value).__name__}")
        try:
            raw = value.encode("latin-1")
        except UnicodeEncodeError as exc:
            raise EncodingError(
                f"{self.name} only stores latin-1 text: {value!r}") from exc
        if len(raw) > self.max_len:
            raise EncodingError(
                f"value of length {len(raw)} exceeds {self.name}")

    def encode(self, value: str) -> bytes:
        self.validate(value)
        raw = value.encode("latin-1")
        return struct.pack(">H", len(raw)) + raw

    def decode(self, data: bytes) -> str:
        if len(data) < self.LENGTH_PREFIX_BYTES:
            raise EncodingError(f"{self.name}: truncated length prefix")
        (length,) = struct.unpack_from(">H", data, 0)
        payload = data[self.LENGTH_PREFIX_BYTES:]
        if len(payload) != length:
            raise EncodingError(
                f"{self.name}: length prefix {length} does not match "
                f"payload of {len(payload)} bytes")
        return payload.decode("latin-1")

    def null_suppressed_length(self, value: str) -> int:
        self.validate(value)
        return len(value.encode("latin-1").rstrip(PAD_BYTE))

    def encoded_size(self, value: str) -> int:
        self.validate(value)
        return self.LENGTH_PREFIX_BYTES + len(value.encode("latin-1"))


class _FixedIntType(DataType):
    """Shared implementation for fixed-width signed integers.

    The encoding is big-endian with the sign bit flipped, which makes the
    lexicographic order of the encoded bytes equal to the numeric order of
    the values — a property the B+-tree relies on for key comparison.
    Null suppression treats leading zero bytes of the encoding as
    suppressible (the integer analogue of the paper's zero suppression).
    """

    _size: int

    def __init__(self) -> None:
        bits = self._size * 8
        self._min = -(1 << (bits - 1))
        self._max = (1 << (bits - 1)) - 1
        self._flip = 1 << (bits - 1)

    @property
    def fixed_size(self) -> int:
        return self._size

    def validate(self, value: Any) -> None:
        if isinstance(value, bool) or not isinstance(value, int):
            raise EncodingError(
                f"{self.name} expects int, got {type(value).__name__}")
        if not self._min <= value <= self._max:
            raise EncodingError(f"{value} out of range for {self.name}")

    def encode(self, value: int) -> bytes:
        self.validate(value)
        return (value + self._flip).to_bytes(self._size, "big")

    def decode(self, data: bytes) -> int:
        if len(data) != self._size:
            raise EncodingError(
                f"{self.name} expects {self._size} bytes, got {len(data)}")
        unsigned = int.from_bytes(data, "big")
        return unsigned - self._flip

    def null_suppressed_length(self, value: int) -> int:
        self.validate(value)
        return minimal_int_bytes(value)


class IntegerType(_FixedIntType):
    """32-bit signed integer column (``INTEGER``)."""

    _size = 4

    def __init__(self) -> None:
        self.name = "integer"
        super().__init__()


class BigIntType(_FixedIntType):
    """64-bit signed integer column (``BIGINT``)."""

    _size = 8

    def __init__(self) -> None:
        self.name = "bigint"
        super().__init__()


def parse_type(spec: str) -> DataType:
    """Parse a SQL-ish type name such as ``"char(20)"`` into a type object.

    Supported forms: ``char(k)``, ``varchar(m)``, ``integer``/``int``,
    ``bigint``. Parsing is case-insensitive and tolerant of whitespace.
    """
    text = spec.strip().lower()
    if text in ("integer", "int"):
        return IntegerType()
    if text == "bigint":
        return BigIntType()
    for prefix, factory in (("char", CharType), ("varchar", VarCharType)):
        if text.startswith(prefix + "(") and text.endswith(")"):
            inner = text[len(prefix) + 1:-1].strip()
            if not inner.isdigit():
                raise SchemaError(f"cannot parse type spec {spec!r}")
            return factory(int(inner))
    raise SchemaError(f"unknown type spec {spec!r}")
