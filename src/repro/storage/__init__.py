"""From-scratch relational storage engine.

Types, schemas, records, slotted pages, heap files, B+-trees, indexes and
tables — the substrate the paper's estimator runs against. See DESIGN.md
section 2 for why each piece exists.
"""

from repro.storage.btree import BPlusTree
from repro.storage.catalog import CompressionSavingsReport, Database
from repro.storage.filestore import (load_heap, load_table, save_heap,
                                     save_table)
from repro.storage.heap import HeapFile
from repro.storage.index import (Accounting, Index, IndexKind, IndexSize,
                                 RID_COLUMN)
from repro.storage.page import Page, PageType, records_per_page
from repro.storage.record import (decode_record, encode_record, record_key,
                                  split_record)
from repro.storage.rid import RID, RID_BYTES
from repro.storage.schema import Column, Schema, single_char_schema
from repro.storage.table import Table
from repro.storage.types import (BigIntType, CharType, DataType, IntegerType,
                                 VarCharType, length_header_bytes,
                                 minimal_int_bytes, parse_type)

__all__ = [
    "Accounting",
    "BPlusTree",
    "BigIntType",
    "CharType",
    "Column",
    "CompressionSavingsReport",
    "DataType",
    "Database",
    "HeapFile",
    "Index",
    "IndexKind",
    "IndexSize",
    "IntegerType",
    "Page",
    "PageType",
    "RID",
    "RID_BYTES",
    "RID_COLUMN",
    "Schema",
    "Table",
    "VarCharType",
    "decode_record",
    "encode_record",
    "length_header_bytes",
    "load_heap",
    "load_table",
    "minimal_int_bytes",
    "save_heap",
    "save_table",
    "parse_type",
    "record_key",
    "records_per_page",
    "single_char_schema",
    "split_record",
]
