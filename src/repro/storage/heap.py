"""Heap files: unordered collections of pages.

A :class:`HeapFile` is the primary storage for a table's rows. Records are
appended to the last page and a new page is allocated when the current one
fills. The heap exposes page-level iteration (needed by block-level
sampling) as well as record-level scans.
"""

from __future__ import annotations

import hashlib
from typing import Iterator

from repro.constants import DEFAULT_PAGE_SIZE
from repro.errors import PageFullError, RecordNotFoundError
from repro.storage.page import Page, PageType
from repro.storage.rid import RID


class HeapFile:
    """An append-only sequence of slotted data pages."""

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        self.page_size = page_size
        self._pages: list[Page] = []
        self._record_count = 0
        self._fingerprint: tuple[int, str] | None = None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, record: bytes) -> RID:
        """Append a record, allocating a new page if needed."""
        if not self._pages or not self._pages[-1].fits(record):
            self._pages.append(
                Page(self.page_size, page_id=len(self._pages),
                     page_type=PageType.DATA))
        page = self._pages[-1]
        try:
            slot = page.insert(record)
        except PageFullError:  # pragma: no cover - fits() guards this
            raise
        self._record_count += 1
        return RID(page.page_id, slot)

    def insert_many(self, records: Iterator[bytes] | list[bytes],
                    ) -> list[RID]:
        """Append many records; returns their RIDs in order."""
        return [self.insert(record) for record in records]

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def get(self, rid: RID) -> bytes:
        """Record bytes at ``rid``."""
        if not 0 <= rid.page_id < len(self._pages):
            raise RecordNotFoundError(f"no page {rid.page_id} in heap")
        return self._pages[rid.page_id].get(rid.slot)

    def scan(self) -> Iterator[tuple[RID, bytes]]:
        """Iterate ``(rid, record)`` over all records in physical order."""
        for page in self._pages:
            for slot, record in enumerate(page.records()):
                yield RID(page.page_id, slot), record

    def records(self) -> Iterator[bytes]:
        """Iterate record payloads in physical order."""
        for page in self._pages:
            yield from page.records()

    def pages(self) -> Iterator[Page]:
        """Iterate the underlying pages (for block sampling)."""
        return iter(self._pages)

    def page_view(self) -> list[Page]:
        """Zero-copy random-access view of the pages.

        Block sampling needs ``len()`` and indexed access; this returns
        the heap's own page list so hot callers avoid re-copying it per
        draw. Treat the result as read-only.
        """
        return self._pages

    def page(self, page_id: int) -> Page:
        """The page with the given id."""
        if not 0 <= page_id < len(self._pages):
            raise RecordNotFoundError(f"no page {page_id} in heap")
        return self._pages[page_id]

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Pickle as page images — the heap's canonical on-disk form.

        Everything else (record count, RIDs) is derivable from the
        pages, so serializing only the images keeps pickles minimal and
        makes a restored heap provably consistent with its storage.
        """
        return {"page_size": self.page_size,
                "images": [page.to_bytes() for page in self._pages]}

    def __setstate__(self, state: dict) -> None:
        self.page_size = state["page_size"]
        self._pages = [Page.from_bytes(image)
                       for image in state["images"]]
        self._record_count = sum(page.slot_count for page in self._pages)
        self._fingerprint = None

    # ------------------------------------------------------------------
    # Content identity
    # ------------------------------------------------------------------
    def content_fingerprint(self) -> str:
        """SHA-256 hex digest of the heap's page images.

        This is the content identity the persistent sample store keys
        on: two heaps holding byte-identical pages fingerprint equally
        regardless of process, object identity, or how they were built.
        Memoized per record count — heaps are append-only, so any
        mutation changes ``num_records`` and invalidates the memo.
        """
        cached = self._fingerprint
        if cached is not None and cached[0] == self._record_count:
            return cached[1]
        digest = hashlib.sha256()
        digest.update(f"heap:{self.page_size}:".encode("ascii"))
        for page in self._pages:
            digest.update(page.to_bytes())
        fingerprint = digest.hexdigest()
        self._fingerprint = (self._record_count, fingerprint)
        return fingerprint

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def num_records(self) -> int:
        return self._record_count

    @property
    def num_pages(self) -> int:
        return len(self._pages)

    @property
    def payload_bytes(self) -> int:
        """Total record bytes across all pages."""
        return sum(page.payload_bytes for page in self._pages)

    @property
    def physical_bytes(self) -> int:
        """Total allocated bytes: ``num_pages * page_size``."""
        return len(self._pages) * self.page_size

    def __len__(self) -> int:
        return self._record_count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"HeapFile(pages={self.num_pages}, "
                f"records={self.num_records}, "
                f"page_size={self.page_size})")
