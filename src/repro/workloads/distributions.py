"""Count distributions over distinct values.

The paper's theorems are parameterised by ``n`` (rows) and ``d``
(distinct values); the *shape* of the counts (uniform, Zipf-skewed,
singleton-heavy) determines how hard distinct-value estimation is in
practice. These helpers produce exact integer count vectors: every
distribution sums to exactly ``n`` with all ``d`` values present at
least once (largest-remainder apportionment), so experiments control
``n`` and ``d`` precisely.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ExperimentError


def exact_counts_from_weights(weights: np.ndarray, n: int) -> np.ndarray:
    """Integer counts proportional to ``weights`` summing exactly ``n``.

    Every entry receives at least 1 (all distinct values must exist);
    the remaining ``n - d`` rows are apportioned by largest remainder.
    """
    weights = np.asarray(weights, dtype=np.float64)
    d = weights.shape[0]
    if d == 0:
        raise ExperimentError("need at least one weight")
    if np.any(weights <= 0):
        raise ExperimentError("weights must be positive")
    if n < d:
        raise ExperimentError(
            f"cannot place {d} distinct values in {n} rows")
    spare = n - d
    shares = weights / weights.sum() * spare
    base = np.floor(shares).astype(np.int64)
    remainder = spare - int(base.sum())
    fractional = shares - base
    order = np.argsort(-fractional, kind="stable")
    extra = np.zeros(d, dtype=np.int64)
    extra[order[:remainder]] = 1
    counts = 1 + base + extra
    if int(counts.sum()) != n:  # pragma: no cover - arithmetic guard
        raise ExperimentError("apportionment failed to sum to n")
    return counts


def uniform_counts(n: int, d: int) -> np.ndarray:
    """As equal as possible: every value gets ``n // d`` or one more."""
    return exact_counts_from_weights(np.ones(d), n)


def zipf_counts(n: int, d: int, s: float = 1.0) -> np.ndarray:
    """Zipf-distributed counts: value ``i`` has weight ``1 / i^s``."""
    if s < 0:
        raise ExperimentError(f"Zipf exponent must be >= 0, got {s}")
    ranks = np.arange(1, d + 1, dtype=np.float64)
    return exact_counts_from_weights(ranks ** (-s), n)


def geometric_counts(n: int, d: int, ratio: float = 0.5) -> np.ndarray:
    """Geometrically decaying counts with the given ratio."""
    if not 0.0 < ratio < 1.0:
        raise ExperimentError(f"ratio must be in (0, 1), got {ratio}")
    weights = ratio ** np.arange(d, dtype=np.float64)
    return exact_counts_from_weights(weights, n)


def singleton_heavy_counts(n: int, d: int) -> np.ndarray:
    """``d - 1`` singletons plus one heavy value with the rest.

    This is the adversarial shape behind Theorem 3's worst case: almost
    all distinct values occur exactly once, so a sample misses as many
    of them as uniform sampling possibly can.
    """
    if n < d:
        raise ExperimentError(
            f"cannot place {d} distinct values in {n} rows")
    counts = np.ones(d, dtype=np.int64)
    counts[0] = n - (d - 1)
    return counts


def all_singleton_counts(n: int) -> np.ndarray:
    """Every value unique (``d = n``): the hardest large-d instance."""
    if n <= 0:
        raise ExperimentError(f"need positive n, got {n}")
    return np.ones(n, dtype=np.int64)


DISTRIBUTIONS = {
    "uniform": uniform_counts,
    "zipf": zipf_counts,
    "geometric": geometric_counts,
    "singleton_heavy": singleton_heavy_counts,
}


def make_counts(distribution: str, n: int, d: int, **params) -> np.ndarray:
    """Dispatch by distribution name (see :data:`DISTRIBUTIONS`)."""
    try:
        factory = DISTRIBUTIONS[distribution]
    except KeyError:
        raise ExperimentError(
            f"unknown distribution {distribution!r}; known: "
            f"{sorted(DISTRIBUTIONS)}") from None
    return factory(n, d, **params)
