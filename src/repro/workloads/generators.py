"""Histogram and table builders used by tests, examples and benches."""

from __future__ import annotations

from typing import Any, Sequence

from repro.constants import DEFAULT_PAGE_SIZE
from repro.errors import ExperimentError
from repro.sampling.rng import SeedLike, make_rng, spawn_rngs
from repro.storage.schema import Column, Schema, single_char_schema
from repro.storage.table import Table
from repro.storage.types import CharType
from repro.core.cf_models import ColumnHistogram, Order
from repro.workloads.distributions import make_counts
from repro.workloads.strings import distinct_strings


def make_histogram(n: int, d: int, k: int,
                   distribution: str = "zipf",
                   min_len: int | None = None,
                   max_len: int | None = None,
                   seed: SeedLike = None,
                   **dist_params) -> ColumnHistogram:
    """A CHAR(k) histogram with exact ``n``, ``d`` and length control.

    The workhorse generator: chooses ``d`` distinct strings with
    stripped lengths uniform in ``[min_len, max_len]`` and apportions
    ``n`` rows over them by the named distribution.
    """
    value_rng, _ = spawn_rngs(seed, 2)
    values = distinct_strings(d, k, min_len=min_len, max_len=max_len,
                              seed=value_rng)
    counts = make_counts(distribution, n, d, **dist_params)
    return ColumnHistogram(CharType(k), values, counts)


def histogram_to_table(histogram: ColumnHistogram, name: str = "t",
                       column: str = "a", order: Order = "shuffled",
                       page_size: int = DEFAULT_PAGE_SIZE,
                       seed: SeedLike = None) -> Table:
    """Materialise a single-column table holding the histogram's rows.

    ``shuffled`` (default) models a heap in arrival order; ``sorted``
    models a table already clustered on the column.
    """
    dtype = histogram.dtype
    if not isinstance(dtype, CharType):
        raise ExperimentError(
            "histogram_to_table currently materialises CHAR columns")
    schema = single_char_schema(dtype.k, column)
    rows = [(value,) for value in histogram.expand(order, seed=seed)]
    return Table.from_rows(name, schema, rows, page_size=page_size)


def make_table(n: int, d: int, k: int, distribution: str = "zipf",
               order: Order = "shuffled", page_size: int = DEFAULT_PAGE_SIZE,
               seed: SeedLike = None, **dist_params) -> Table:
    """One-call histogram + materialisation for storage-path tests."""
    histogram = make_histogram(n, d, k, distribution=distribution,
                               seed=seed, **dist_params)
    return histogram_to_table(histogram, order=order, page_size=page_size,
                              seed=seed)


def make_multicolumn_table(name: str, n: int,
                           column_specs: Sequence[tuple[str, int, int]],
                           page_size: int = DEFAULT_PAGE_SIZE,
                           seed: SeedLike = None) -> Table:
    """A table with several independent CHAR columns.

    ``column_specs`` is a sequence of ``(column_name, k, d)`` triples;
    each column gets its own Zipf-distributed value set. Used by the
    physical-design advisor experiments, which need multi-column
    candidate indexes.
    """
    if not column_specs:
        raise ExperimentError("need at least one column spec")
    rng = make_rng(seed)
    columns = [Column(cname, CharType(k)) for cname, k, _ in column_specs]
    schema = Schema(columns)
    per_column: list[list[Any]] = []
    for cname, k, d in column_specs:
        histogram = make_histogram(
            n, d, k, distribution="zipf",
            seed=int(rng.integers(0, 2**63 - 1)))
        per_column.append(histogram.expand(
            "shuffled", seed=int(rng.integers(0, 2**63 - 1))))
    rows = list(zip(*per_column))
    return Table.from_rows(name, schema, rows, page_size=page_size)
