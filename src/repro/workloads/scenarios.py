"""Named workload scenarios used across examples and benchmarks.

Each scenario models a column shape the paper's introduction motivates
(warehouse fact tables, archival candidates): a width ``k``, a
distinct-count profile (fixed, or scaling with ``n``), a skew, and a
length distribution. Scenarios build :class:`ColumnHistogram` objects at
any requested ``n``, which keeps every bench and example on the same
vocabulary.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.errors import ExperimentError
from repro.sampling.rng import SeedLike
from repro.storage.types import CharType
from repro.core.cf_models import ColumnHistogram
from repro.workloads.distributions import (singleton_heavy_counts,
                                           uniform_counts, zipf_counts)
from repro.workloads.strings import (comment_strings, distinct_strings,
                                     prefixed_names, zero_padded_ids)


@dataclass(frozen=True)
class Scenario:
    """A reproducible column workload."""

    name: str
    description: str
    k: int
    default_n: int
    builder: Callable[[int, SeedLike], ColumnHistogram]

    def build(self, n: int | None = None,
              seed: SeedLike = None) -> ColumnHistogram:
        """Materialise the scenario's histogram at ``n`` rows."""
        rows = self.default_n if n is None else n
        if rows <= 0:
            raise ExperimentError(f"need positive n, got {rows}")
        return self.builder(rows, seed)


def _status_codes(n: int, seed: SeedLike) -> ColumnHistogram:
    values = ["ACTIVE", "CLOSED", "HOLD", "NEW", "VOID"]
    counts = zipf_counts(n, len(values), s=0.8)
    return ColumnHistogram(CharType(10), values, counts)


def _customer_names(n: int, seed: SeedLike) -> ColumnHistogram:
    d = min(n, 5000)
    values = distinct_strings(d, 40, min_len=5, max_len=18, seed=seed)
    return ColumnHistogram(CharType(40), values, zipf_counts(n, d, s=1.1))


def _order_comments(n: int, seed: SeedLike) -> ColumnHistogram:
    d = max(1, int(0.8 * n))
    values = comment_strings(d, 100, seed=seed)
    return ColumnHistogram(CharType(100), values,
                           singleton_heavy_counts(n, d))


def _zero_padded(n: int, seed: SeedLike) -> ColumnHistogram:
    d = max(1, min(n, n // 2 if n > 1 else 1))
    values = zero_padded_ids(d, 20, width=12)
    return ColumnHistogram(CharType(20), values, uniform_counts(n, d))


def _uniform_mid_d(n: int, seed: SeedLike) -> ColumnHistogram:
    d = max(1, min(n, int(math.isqrt(n)) * 4))
    values = distinct_strings(d, 20, min_len=4, max_len=16, seed=seed)
    return ColumnHistogram(CharType(20), values, uniform_counts(n, d))


def _zipf_skewed(n: int, seed: SeedLike) -> ColumnHistogram:
    d = max(1, min(n, n // 100 if n >= 100 else n))
    values = distinct_strings(d, 32, min_len=6, max_len=28, seed=seed)
    return ColumnHistogram(CharType(32), values, zipf_counts(n, d, s=1.5))


def _product_skus(n: int, seed: SeedLike) -> ColumnHistogram:
    d = min(n, 2000)
    values = prefixed_names(d, 24, prefix="SKU-2026-")
    return ColumnHistogram(CharType(24), values, zipf_counts(n, d, s=1.0))


SCENARIOS: dict[str, Scenario] = {
    scenario.name: scenario for scenario in (
        Scenario(
            name="status_codes",
            description="Tiny domain (d = 5): dictionary compression's "
                        "best case, Theorem 2's small-d regime.",
            k=10, default_n=100_000, builder=_status_codes),
        Scenario(
            name="customer_names",
            description="Zipf-skewed names in a wide CHAR(40): the "
                        "null-suppression sweet spot.",
            k=40, default_n=100_000, builder=_customer_names),
        Scenario(
            name="order_comments",
            description="Near-unique free text (d ~ 0.8 n): Theorem 3's "
                        "large-d regime, hostile to dictionaries.",
            k=100, default_n=50_000, builder=_order_comments),
        Scenario(
            name="zero_padded_ids",
            description="Zero-padded identifiers: the Figure 1.a case "
                        "where run-based NS beats trailing NS.",
            k=20, default_n=100_000, builder=_zero_padded),
        Scenario(
            name="uniform_mid_d",
            description="Uniform counts with d ~ 4 sqrt(n): between the "
                        "two theorem regimes.",
            k=20, default_n=100_000, builder=_uniform_mid_d),
        Scenario(
            name="zipf_skewed",
            description="Heavy skew (Zipf s=1.5, d = n/100): easy for "
                        "sampling to find the heavy hitters, singletons "
                        "hide in the tail.",
            k=32, default_n=100_000, builder=_zipf_skewed),
        Scenario(
            name="product_skus",
            description="Shared-prefix SKUs: the prefix/PAGE compression "
                        "showcase.",
            k=24, default_n=100_000, builder=_product_skus),
    )
}


def get_scenario(name: str) -> Scenario:
    """Look up a scenario by name."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ExperimentError(
            f"unknown scenario {name!r}; known: {sorted(SCENARIOS)}"
        ) from None
