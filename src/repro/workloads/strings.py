"""Generators of distinct CHAR(k) values with controlled lengths.

Null suppression's CF is entirely determined by the distribution of
null-suppressed lengths ``l_i``, so experiments need precise length
control; dictionary compression cares only about distinctness. Every
generator guarantees pairwise-distinct values whose stripped length
equals the requested target (no accidental trailing blanks).
"""

from __future__ import annotations

import string

from repro.errors import ExperimentError
from repro.sampling.rng import SeedLike, make_rng

_ALPHABET = string.ascii_lowercase
_BASE36 = string.digits + string.ascii_lowercase


def _encode_base36(value: int, width: int) -> str:
    """Fixed-width base-36 rendering of a non-negative integer."""
    digits = []
    for _ in range(width):
        value, rem = divmod(value, 36)
        digits.append(_BASE36[rem])
    if value:
        raise ExperimentError(f"value does not fit in {width} base-36 digits")
    return "".join(reversed(digits))


def _id_width(d: int) -> int:
    """Base-36 digits needed to give ``d`` values distinct ids."""
    width = 1
    capacity = 36
    while capacity < d:
        width += 1
        capacity *= 36
    return width


def distinct_strings(d: int, k: int, min_len: int | None = None,
                     max_len: int | None = None,
                     seed: SeedLike = None) -> list[str]:
    """``d`` distinct strings with stripped lengths uniform in a range.

    Each value is a unique base-36 id followed by random letters up to
    its target length; the last character is never a blank, so the
    null-suppressed length is exactly the target.
    """
    if d <= 0 or k <= 0:
        raise ExperimentError(f"need positive d and k, got d={d}, k={k}")
    width = _id_width(d)
    if width > k:
        raise ExperimentError(
            f"{d} distinct values need {width} id characters, but k={k}")
    low = max(width, min_len if min_len is not None else width)
    high = min(k, max_len if max_len is not None else k)
    if low > high:
        raise ExperimentError(
            f"empty length range [{low}, {high}] for d={d}, k={k}")
    rng = make_rng(seed)
    targets = rng.integers(low, high + 1, size=d)
    letters = rng.integers(0, len(_ALPHABET), size=int(targets.sum()))
    values: list[str] = []
    cursor = 0
    for index in range(d):
        target = int(targets[index])
        filler_len = target - width
        filler = "".join(_ALPHABET[j]
                         for j in letters[cursor:cursor + filler_len])
        cursor += filler_len
        values.append(_encode_base36(index, width) + filler)
    return values


def fixed_length_strings(d: int, k: int, length: int) -> list[str]:
    """``d`` distinct strings, all with stripped length ``length``."""
    if not 0 < length <= k:
        raise ExperimentError(
            f"length must be in [1, {k}], got {length}")
    width = _id_width(d)
    if width > length:
        raise ExperimentError(
            f"{d} distinct values need {width} characters, length={length}")
    filler = "z" * (length - width)
    return [_encode_base36(i, width) + filler for i in range(d)]


def zero_padded_ids(d: int, k: int, width: int | None = None) -> list[str]:
    """Zero-padded numeric identifiers, e.g. ``"00000000123"``.

    The motivating case for the run-based NS variant (Figure 1.a shows a
    zero run being suppressed): trailing-blank NS saves nothing here,
    run NS collapses the leading zeros.
    """
    if width is None:
        width = k
    if not 0 < width <= k:
        raise ExperimentError(f"width must be in [1, {k}], got {width}")
    digits = len(str(d - 1)) if d > 1 else 1
    if digits > width:
        raise ExperimentError(
            f"{d} ids need {digits} digits, width is {width}")
    return [str(i).zfill(width) for i in range(d)]


def prefixed_names(d: int, k: int, prefix: str = "SKU-") -> list[str]:
    """Values sharing a long common prefix, e.g. product SKUs.

    The showcase for per-page prefix compression: the shared prefix is
    factored out once per page.
    """
    width = _id_width(d)
    if len(prefix) + width > k:
        raise ExperimentError(
            f"prefix {prefix!r} plus {width} id characters exceed k={k}")
    return [prefix + _encode_base36(i, width) for i in range(d)]


def comment_strings(d: int, k: int, seed: SeedLike = None,
                    word_length: int = 5) -> list[str]:
    """Pseudo-text comments: space-separated words, varied lengths.

    Models the free-text columns (order comments, descriptions) that
    motivate null suppression in warehouses: wide CHAR columns whose
    values use a fraction of their width. Interior blanks exist but the
    values never *end* with a blank.
    """
    if word_length <= 0 or word_length >= k:
        raise ExperimentError(
            f"word length must be in [1, {k - 1}], got {word_length}")
    rng = make_rng(seed)
    base = distinct_strings(d, word_length, min_len=word_length,
                            max_len=word_length, seed=rng)
    values: list[str] = []
    for index in range(d):
        words = [base[index]]
        budget = int(rng.integers(word_length, k + 1))
        while len(" ".join(words)) + 1 + word_length <= budget:
            extra = int(rng.integers(0, d))
            words.append(base[extra])
        values.append(" ".join(words))
    return values
