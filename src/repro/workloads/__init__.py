"""Synthetic workload generation with exact n / d / length control."""

from repro.workloads.distributions import (DISTRIBUTIONS,
                                           all_singleton_counts,
                                           exact_counts_from_weights,
                                           geometric_counts, make_counts,
                                           singleton_heavy_counts,
                                           uniform_counts, zipf_counts)
from repro.workloads.generators import (histogram_to_table, make_histogram,
                                        make_multicolumn_table, make_table)
from repro.workloads.scenarios import SCENARIOS, Scenario, get_scenario
from repro.workloads.strings import (comment_strings, distinct_strings,
                                     fixed_length_strings, prefixed_names,
                                     zero_padded_ids)

__all__ = [
    "DISTRIBUTIONS",
    "SCENARIOS",
    "Scenario",
    "all_singleton_counts",
    "comment_strings",
    "distinct_strings",
    "exact_counts_from_weights",
    "fixed_length_strings",
    "geometric_counts",
    "get_scenario",
    "histogram_to_table",
    "make_counts",
    "make_histogram",
    "make_multicolumn_table",
    "make_table",
    "prefixed_names",
    "singleton_heavy_counts",
    "uniform_counts",
    "zero_padded_ids",
    "zipf_counts",
]
