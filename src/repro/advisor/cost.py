"""Workload cost model for compression-aware physical design.

Section I motivates the estimator with automated physical design: given
a query workload and a storage bound, choose indexes (possibly
compressed) that minimise workload cost. The model here is deliberately
the textbook one those tools use at candidate-pruning time:

* an index serves a query if its key columns contain the query's
  referenced columns;
* I/O cost is pages read: ``ceil(selectivity * leaf_pages)`` through an
  index, or the full heap scan without one;
* compression reduces pages proportionally to CF but charges a CPU
  penalty per compressed page read (the decompression cost the paper
  highlights as the reason compression must be applied judiciously).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.constants import DEFAULT_PAGE_SIZE
from repro.errors import AdvisorError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.table import Table


@dataclass(frozen=True)
class Query:
    """One workload query: which table, which columns, how selective."""

    name: str
    table: str
    columns: tuple[str, ...]
    selectivity: float = 1.0
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.columns:
            raise AdvisorError(f"query {self.name!r} references no columns")
        if not 0.0 < self.selectivity <= 1.0:
            raise AdvisorError(
                f"selectivity must be in (0, 1], got {self.selectivity}")
        if self.weight <= 0:
            raise AdvisorError(
                f"weight must be positive, got {self.weight}")


@dataclass(frozen=True)
class TableStats:
    """What the cost model needs to know about a base table."""

    name: str
    rows: int
    heap_pages: int

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.heap_pages <= 0:
            raise AdvisorError(
                f"table {self.name!r} needs positive rows and pages")


@dataclass(frozen=True)
class CostModel:
    """Tunable constants of the cost function."""

    page_size: int = DEFAULT_PAGE_SIZE
    #: Extra CPU cost per compressed page read, as a fraction of the I/O
    #: cost of that page (Section I: decompression is a real CPU cost).
    decompression_cpu_factor: float = 0.2

    def __post_init__(self) -> None:
        if self.page_size <= 0:
            raise AdvisorError("page size must be positive")
        if self.decompression_cpu_factor < 0:
            raise AdvisorError("CPU factor must be non-negative")

    def pages_for_bytes(self, size_bytes: float) -> int:
        """Whole pages needed to hold ``size_bytes``."""
        if size_bytes <= 0:
            return 1
        return max(1, math.ceil(size_bytes / self.page_size))

    def index_access_cost(self, query: Query, leaf_pages: int,
                          compressed: bool) -> float:
        """Cost of answering ``query`` through a covering index."""
        touched = max(1, math.ceil(query.selectivity * leaf_pages))
        multiplier = 1.0 + (self.decompression_cpu_factor
                            if compressed else 0.0)
        return query.weight * touched * multiplier

    def scan_cost(self, query: Query, table: TableStats) -> float:
        """Fallback cost: scan the whole heap."""
        return query.weight * table.heap_pages


def stats_for_tables(tables: dict[str, "Table"],
                     ) -> dict[str, TableStats]:
    """Derive :class:`TableStats` straight from live tables.

    The engine-backed advisor path estimates everything from data, so
    callers should not have to hand-assemble row/page counts either.
    """
    return {name: TableStats(name=name, rows=table.num_rows,
                             heap_pages=table.heap.num_pages)
            for name, table in tables.items()}


def covers(key_columns: Sequence[str], query: Query) -> bool:
    """Whether an index on ``key_columns`` can serve ``query``.

    The standard sargability shortcut: the index is usable when every
    referenced column appears among its keys.
    """
    return set(query.columns).issubset(set(key_columns))


@dataclass
class WorkloadCost:
    """Total workload cost with a per-query breakdown."""

    total: float = 0.0
    per_query: dict[str, float] = field(default_factory=dict)


def workload_cost(queries: Sequence[Query],
                  tables: dict[str, TableStats],
                  chosen: Sequence["CandidateIndex"],  # noqa: F821
                  model: CostModel) -> WorkloadCost:
    """Cost of the workload given the chosen physical design.

    Each query uses the cheapest applicable access path among the chosen
    indexes, falling back to a heap scan.
    """
    from repro.advisor.candidates import CandidateIndex  # cycle guard

    result = WorkloadCost()
    for query in queries:
        try:
            table = tables[query.table]
        except KeyError:
            raise AdvisorError(
                f"query {query.name!r} references unknown table "
                f"{query.table!r}") from None
        best = model.scan_cost(query, table)
        for candidate in chosen:
            if not isinstance(candidate, CandidateIndex):
                raise AdvisorError(
                    f"chosen design contains a non-candidate: "
                    f"{candidate!r}")
            if candidate.table != query.table:
                continue
            if not covers(candidate.key_columns, query):
                continue
            leaf_pages = model.pages_for_bytes(candidate.size_bytes)
            cost = model.index_access_cost(
                query, leaf_pages, candidate.compressed)
            best = min(best, cost)
        result.per_query[query.name] = best
        result.total += best
    return result
