"""Candidate index enumeration with SampleCF-estimated sizes.

For every query the advisor considers an index keyed on the query's
columns, in both an uncompressed and a compressed variant. The
compressed variant's size — the quantity a storage-bounded search needs
— comes from SampleCF, exactly the role the paper assigns the estimator
inside physical design tools. Ground-truth sizes (full compression) can
be requested instead, which is how the `app-advisor` experiment measures
the cost of estimation error in final decisions.

Two estimation paths exist:

* :func:`enumerate_candidates` — the historical per-candidate loop
  (one fresh sample per compressed candidate);
* :func:`enumerate_candidates_batch` — the engine-backed path: all
  (column-set × algorithm) candidates go into one
  :class:`~repro.engine.engine.EstimationEngine` batch, so every
  candidate on a table shares one materialized sample per trial and
  every algorithm probing a column set shares one built sample index —
  the shared-sample trick compression-aware design tools rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Literal, Sequence

import numpy as np

from repro.errors import AdvisorError
from repro.sampling.rng import SeedLike, make_rng
from repro.storage.index import IndexKind
from repro.storage.rid import RID_BYTES
from repro.storage.table import Table
from repro.compression.base import CompressionAlgorithm
from repro.compression.registry import get_algorithm
from repro.core.samplecf import SampleCF, true_cf_table
from repro.advisor.cost import Query

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.engine import EstimationEngine
    from repro.engine.executors import PlanExecutor
    from repro.store.store import SampleStore

SizeSource = Literal["samplecf", "exact"]


@dataclass(frozen=True)
class CandidateIndex:
    """One possible index, sized and ready for selection."""

    table: str
    key_columns: tuple[str, ...]
    compressed: bool
    algorithm: str | None
    size_bytes: float
    size_source: str
    estimated_cf: float | None = None

    @property
    def name(self) -> str:
        suffix = f"__{self.algorithm}" if self.compressed else ""
        return f"ix_{self.table}_{'_'.join(self.key_columns)}{suffix}"

    def __post_init__(self) -> None:
        if not self.key_columns:
            raise AdvisorError("candidate needs key columns")
        if self.size_bytes <= 0:
            raise AdvisorError(
                f"candidate {self.key_columns} has non-positive size")


def uncompressed_index_bytes(table: Table,
                             key_columns: Sequence[str]) -> int:
    """Leaf payload of a non-clustered index on ``key_columns``.

    Per entry: the fixed widths of the key columns plus an 8-byte RID.
    """
    width = 0
    for column in key_columns:
        fixed = table.schema[column].dtype.fixed_size
        if fixed is None:
            raise AdvisorError(
                f"column {column!r} is variable-width; the advisor "
                "sizes fixed-width keys only")
        width += fixed
    return table.num_rows * (width + RID_BYTES)


def workload_key_sets(tables: dict[str, Table], queries: Sequence[Query],
                      ) -> list[tuple[str, tuple[str, ...]]]:
    """Distinct (table, column tuple) pairs referenced by the workload."""
    key_sets: dict[tuple[str, tuple[str, ...]], None] = {}
    for query in queries:
        if query.table not in tables:
            raise AdvisorError(
                f"query {query.name!r} references unknown table "
                f"{query.table!r}")
        key_sets.setdefault((query.table, tuple(query.columns)), None)
    return list(key_sets)


def enumerate_candidates(tables: dict[str, Table],
                         queries: Sequence[Query],
                         algorithm: CompressionAlgorithm | str = "page",
                         fraction: float = 0.01,
                         size_source: SizeSource = "samplecf",
                         seed: SeedLike = None) -> list[CandidateIndex]:
    """Candidates for a workload: one (un)compressed pair per key set.

    Key sets are the distinct column tuples referenced by queries.
    Compressed sizes come from SampleCF (``size_source="samplecf"``) or
    from actually compressing the full index (``"exact"``, the oracle
    the ablation compares against). This is the naive per-candidate
    loop — every compressed candidate draws its own sample; prefer
    :func:`enumerate_candidates_batch` when sizing more than a handful.
    """
    if isinstance(algorithm, str):
        algorithm = get_algorithm(algorithm)
    rng = make_rng(seed)
    key_sets = workload_key_sets(tables, queries)
    candidates: list[CandidateIndex] = []
    for table_name, key_columns in key_sets:
        table = tables[table_name]
        plain_bytes = uncompressed_index_bytes(table, key_columns)
        candidates.append(CandidateIndex(
            table=table_name, key_columns=key_columns, compressed=False,
            algorithm=None, size_bytes=float(plain_bytes),
            size_source="schema"))
        if size_source == "samplecf":
            estimator = SampleCF(algorithm, page_size=table.page_size)
            estimate = estimator.estimate_table(
                table, fraction, key_columns,
                kind=IndexKind.NONCLUSTERED,
                seed=int(rng.integers(0, 2**63 - 1)))
            cf = estimate.estimate
        elif size_source == "exact":
            cf = true_cf_table(table, key_columns, algorithm,
                               kind=IndexKind.NONCLUSTERED,
                               page_size=table.page_size)
        else:
            raise AdvisorError(f"unknown size source {size_source!r}")
        candidates.append(CandidateIndex(
            table=table_name, key_columns=key_columns, compressed=True,
            algorithm=algorithm.name, size_bytes=plain_bytes * cf,
            size_source=size_source, estimated_cf=cf))
    return candidates


def resolve_algorithms(algorithms: Sequence[CompressionAlgorithm | str],
                       ) -> list[CompressionAlgorithm]:
    """Registry lookups for name entries; rejects an empty list."""
    resolved = [get_algorithm(a) if isinstance(a, str) else a
                for a in algorithms]
    if not resolved:
        raise AdvisorError("need at least one compression algorithm")
    return resolved


def candidate_request(table: Table, table_name: str,
                      key_columns: tuple[str, ...],
                      algorithm: CompressionAlgorithm, fraction: float,
                      trials: int) -> "EstimationRequest":
    """The engine request that sizes one compressed candidate.

    Single source of truth for the advisor's request shape: the eager
    batch path and the lazy what-if path both build candidates through
    here, so the two can never drift apart in sampler, index kind,
    accounting, or page layout — which is what makes their estimates
    (and therefore their selected designs) comparable trial for trial.
    """
    from repro.engine.requests import EstimationRequest  # lazy: cycle

    return EstimationRequest(
        table=table, columns=key_columns, algorithm=algorithm,
        fraction=fraction, trials=trials, kind=IndexKind.NONCLUSTERED,
        page_size=table.page_size,
        label=f"{table_name}:{','.join(key_columns)}:{algorithm.name}")


def enumerate_candidates_batch(
        tables: dict[str, Table], queries: Sequence[Query],
        algorithms: Sequence[CompressionAlgorithm | str] = ("page",),
        fraction: float = 0.01,
        trials: int = 1,
        engine: "EstimationEngine | None" = None,
        seed: SeedLike = None,
        executor: "PlanExecutor | str | None" = None,
        store: "SampleStore | str | None" = None,
        ) -> list[CandidateIndex]:
    """Engine-backed candidate enumeration from data.

    Sizes every (key set × algorithm) compressed candidate in **one**
    engine batch: per trial, each table is sampled once and shared
    across all of its candidates; each column set's sample index is
    built once and shared across algorithms. With ``trials > 1`` the
    per-candidate CF is the mean over trials (variance reduction at
    almost no extra sampling cost, since trials of different candidates
    still share table samples).

    Unlike :func:`enumerate_candidates`, callers never supply CF
    numbers — the estimates come straight from the tables.

    ``executor`` overrides how the batch runs (an executor instance or
    a name: ``"serial"``, ``"threads"``, ``"process"``). The advisor
    batch is embarrassingly parallel and compress-heavy, which is
    exactly the shape the process pool is for; estimates are
    byte-identical across executors for a fixed seed.

    ``store`` (a :class:`~repro.store.store.SampleStore` or a
    directory path) attaches the persistent disk tier, so repeated
    advisor runs over the same stored tables warm-start instead of
    re-sampling — the paper's "design tools call the estimator many
    times over the same data" scenario.
    """
    from repro.engine.engine import EstimationEngine  # lazy: cycle guard

    resolved = resolve_algorithms(algorithms)
    if engine is None:
        engine = EstimationEngine(seed=seed if seed is not None else 0,
                                  store=store)
    else:
        if seed is not None:
            raise AdvisorError(
                "pass either engine= or seed=, not both: a supplied "
                "engine's master seed governs the randomness")
        if store is not None:
            raise AdvisorError(
                "pass either engine= or store=, not both: a supplied "
                "engine already decided its persistence tier")
    key_sets = workload_key_sets(tables, queries)
    requests = []
    for table_name, key_columns in key_sets:
        table = tables[table_name]
        for algorithm in resolved:
            requests.append(candidate_request(
                table, table_name, key_columns, algorithm, fraction,
                trials))
    batch = engine.execute(requests, executor=executor)
    candidates: list[CandidateIndex] = []
    cursor = 0
    for table_name, key_columns in key_sets:
        table = tables[table_name]
        plain_bytes = uncompressed_index_bytes(table, key_columns)
        candidates.append(CandidateIndex(
            table=table_name, key_columns=key_columns, compressed=False,
            algorithm=None, size_bytes=float(plain_bytes),
            size_source="schema"))
        for algorithm in resolved:
            result = batch.results[cursor]
            cursor += 1
            cf = float(np.mean(result.values))
            candidates.append(CandidateIndex(
                table=table_name, key_columns=key_columns,
                compressed=True, algorithm=algorithm.name,
                size_bytes=plain_bytes * cf, size_source="engine",
                estimated_cf=cf))
    return candidates
