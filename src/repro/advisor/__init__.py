"""Compression-aware physical design: the paper's motivating application."""

from repro.advisor.candidates import (CandidateIndex, enumerate_candidates,
                                      uncompressed_index_bytes)
from repro.advisor.capacity import (CapacityEntry, CapacityPlan,
                                    plan_capacity)
from repro.advisor.cost import (CostModel, Query, TableStats, WorkloadCost,
                                covers, workload_cost)
from repro.advisor.selection import (AdvisorResult, design_summary,
                                     select_indexes)

__all__ = [
    "AdvisorResult",
    "CandidateIndex",
    "CapacityEntry",
    "CapacityPlan",
    "CostModel",
    "Query",
    "TableStats",
    "WorkloadCost",
    "covers",
    "design_summary",
    "enumerate_candidates",
    "plan_capacity",
    "select_indexes",
    "uncompressed_index_bytes",
    "workload_cost",
]
