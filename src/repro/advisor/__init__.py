"""Compression-aware physical design: the paper's motivating application."""

from repro.advisor.candidates import (CandidateIndex, enumerate_candidates,
                                      enumerate_candidates_batch,
                                      uncompressed_index_bytes,
                                      workload_key_sets)
from repro.advisor.capacity import (CapacityEntry, CapacityPlan,
                                    plan_capacity)
from repro.advisor.cost import (CostModel, Query, TableStats, WorkloadCost,
                                covers, stats_for_tables, workload_cost)
from repro.advisor.selection import (AdvisorResult, advise_from_data,
                                     design_summary, select_indexes)

__all__ = [
    "AdvisorResult",
    "CandidateIndex",
    "CapacityEntry",
    "CapacityPlan",
    "CostModel",
    "Query",
    "TableStats",
    "WorkloadCost",
    "advise_from_data",
    "covers",
    "design_summary",
    "enumerate_candidates",
    "enumerate_candidates_batch",
    "plan_capacity",
    "select_indexes",
    "stats_for_tables",
    "uncompressed_index_bytes",
    "workload_key_sets",
    "workload_cost",
]
