"""Compression-aware physical design: the paper's motivating application."""

from repro.advisor.candidates import (CandidateIndex, candidate_request,
                                      enumerate_candidates,
                                      enumerate_candidates_batch,
                                      resolve_algorithms,
                                      uncompressed_index_bytes,
                                      workload_key_sets)
from repro.advisor.capacity import (CapacityEntry, CapacityPlan,
                                    plan_capacity)
from repro.advisor.cost import (CostModel, Query, TableStats, WorkloadCost,
                                covers, stats_for_tables, workload_cost)
from repro.advisor.selection import (AdvisorResult, advise_from_data,
                                     candidate_gain, design_summary,
                                     select_indexes)
from repro.advisor.whatif import (CandidateState, PruneEvent,
                                  WhatIfAdvisor, WhatIfReport,
                                  WhatIfResult, advise_what_if,
                                  prior_cf_interval)

__all__ = [
    "AdvisorResult",
    "CandidateIndex",
    "CandidateState",
    "CapacityEntry",
    "CapacityPlan",
    "CostModel",
    "PruneEvent",
    "Query",
    "TableStats",
    "WhatIfAdvisor",
    "WhatIfReport",
    "WhatIfResult",
    "WorkloadCost",
    "advise_from_data",
    "advise_what_if",
    "candidate_gain",
    "candidate_request",
    "covers",
    "design_summary",
    "enumerate_candidates",
    "enumerate_candidates_batch",
    "plan_capacity",
    "prior_cf_interval",
    "resolve_algorithms",
    "select_indexes",
    "stats_for_tables",
    "uncompressed_index_bytes",
    "workload_key_sets",
    "workload_cost",
]
