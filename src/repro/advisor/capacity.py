"""Capacity planning: how much storage will the archive need?

The paper's second application (Section I): estimate the space required
to store data compressed — for archival, backup sizing, or data-retention
budgeting — without compressing anything. Each table contributes its
estimated compressed size; null-suppression estimates carry Theorem 1
confidence intervals so the plan can be quoted with a safety margin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import AdvisorError
from repro.sampling.rng import SeedLike, make_rng
from repro.storage.index import IndexKind
from repro.storage.table import Table
from repro.compression.base import CompressionAlgorithm
from repro.compression.null_suppression import NullSuppression
from repro.compression.registry import get_algorithm
from repro.core.confidence import ConfidenceInterval, ns_confidence_interval
from repro.core.samplecf import SampleCF


@dataclass(frozen=True)
class CapacityEntry:
    """One table's contribution to the capacity plan."""

    table: str
    rows: int
    uncompressed_bytes: int
    estimated_cf: float
    estimated_compressed_bytes: float
    interval: ConfidenceInterval | None = None


@dataclass(frozen=True)
class CapacityPlan:
    """Aggregate archival sizing across tables."""

    entries: tuple[CapacityEntry, ...]
    algorithm: str
    sampling_fraction: float

    @property
    def total_uncompressed_bytes(self) -> int:
        return sum(entry.uncompressed_bytes for entry in self.entries)

    @property
    def total_compressed_bytes(self) -> float:
        return sum(entry.estimated_compressed_bytes
                   for entry in self.entries)

    @property
    def total_high_bytes(self) -> float:
        """Conservative (upper-CI) total, for quoting with a margin."""
        total = 0.0
        for entry in self.entries:
            if entry.interval is not None:
                total += entry.interval.high * entry.uncompressed_bytes
            else:
                total += entry.estimated_compressed_bytes
        return total

    def describe(self) -> str:
        lines = [f"capacity plan ({self.algorithm}, "
                 f"f={self.sampling_fraction:.2%}):"]
        for entry in self.entries:
            lines.append(
                f"  {entry.table}: {entry.uncompressed_bytes:,} B -> "
                f"{entry.estimated_compressed_bytes:,.0f} B "
                f"(CF {entry.estimated_cf:.3f})")
        lines.append(
            f"  TOTAL: {self.total_uncompressed_bytes:,} B -> "
            f"{self.total_compressed_bytes:,.0f} B "
            f"(safe upper {self.total_high_bytes:,.0f} B)")
        return "\n".join(lines)


def plan_capacity(tables: Sequence[Table],
                  algorithm: CompressionAlgorithm | str = "null_suppression",
                  fraction: float = 0.01,
                  confidence: float = 0.95,
                  seed: SeedLike = None) -> CapacityPlan:
    """Estimate compressed sizes for archiving ``tables``.

    Each table is sized through a clustered index on all of its columns
    (archival stores whole rows). For null suppression the Theorem 1
    interval is attached; other algorithms report point estimates.
    """
    if not tables:
        raise AdvisorError("no tables to plan for")
    if isinstance(algorithm, str):
        algorithm = get_algorithm(algorithm)
    rng = make_rng(seed)
    entries: list[CapacityEntry] = []
    for table in tables:
        estimator = SampleCF(algorithm, page_size=table.page_size)
        estimate = estimator.estimate_table(
            table, fraction, list(table.schema.names),
            kind=IndexKind.CLUSTERED,
            seed=int(rng.integers(0, 2**63 - 1)))
        row_bytes = table.schema.fixed_row_size
        if row_bytes is None:
            raise AdvisorError(
                f"table {table.name!r} has variable-width rows; "
                "capacity planning sizes fixed-width schemas")
        uncompressed = table.num_rows * row_bytes
        interval = None
        if isinstance(algorithm, NullSuppression):
            interval = ns_confidence_interval(
                estimate.estimate, estimate.sample_rows,
                confidence=confidence)
        entries.append(CapacityEntry(
            table=table.name,
            rows=table.num_rows,
            uncompressed_bytes=uncompressed,
            estimated_cf=estimate.estimate,
            estimated_compressed_bytes=estimate.estimate * uncompressed,
            interval=interval))
    return CapacityPlan(entries=tuple(entries), algorithm=algorithm.name,
                        sampling_fraction=fraction)
