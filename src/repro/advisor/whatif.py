"""What-if advisor: lazy engine-backed selection with bound pruning.

:func:`~repro.advisor.selection.advise_from_data` is eager — it sizes
every (key set × algorithm) candidate at the full trial budget before
the greedy loop ever looks at one. Kimura et al.'s compression-aware
design work (PAPERS.md) points out that a what-if interface should
only pay for estimates the search can actually use. This module is
that interface:

* the greedy selection loop runs first and *requests* estimates
  lazily, one engine batch per refinement step, so candidates on the
  same table keep sharing samples exactly as in the eager batch;
* before spending a unit on a candidate, the loop brackets its CF with
  the paper's analytic machinery — Theorem 1's deterministic stored-
  fraction envelope and probabilistic trial-mean interval for null
  suppression, Theorem 2's ``d/n + p/k`` envelope for the dictionary
  family (:mod:`repro.core.bounds`, :mod:`repro.core.confidence`) —
  and **prunes** any candidate whose best-case benefit density cannot
  beat another candidate's guaranteed worst case;
* trial allocation is **adaptive**: estimation proceeds in stages
  (1, 2, 4, ... trials) and stops as soon as a candidate's interval is
  decisively outside (or alone inside) the winning region, respending
  the remaining budget only on candidates whose intervals still
  overlap the decision margin. The round's winner is always escalated
  to the full budget before being committed, so the selected design —
  including sizes, costs, and step log — is **bit-identical** to the
  eager advisor's whenever the bounds are valid (the pruning-soundness
  property suite locks this in across executors).

Soundness argument, in one paragraph: every interval is built to
contain the eager advisor's final per-candidate estimate (the mean
over ``max_trials`` engine trials — the deterministic envelopes also
contain the exact CF). The marginal cost reduction is non-increasing
in a candidate's size, so a CF interval maps to a benefit-density
interval. If candidate X's best case ``density_hi(X)`` is strictly
below candidate Y's guaranteed ``density_lo(Y)`` — with Y surely
feasible and surely improving — then under valid bounds the eager
scan would also rank X below Y, so X cannot be that round's winner
and skipping its estimation cannot change the selection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Sequence

import numpy as np

from repro.errors import AdvisorError
from repro.sampling.base import rows_for_fraction
from repro.sampling.rng import SeedLike
from repro.storage.index import IndexKind
from repro.storage.types import BigIntType
from repro.compression.base import CompressionAlgorithm
from repro.compression.dictionary import DictionaryCompression
from repro.compression.global_dictionary import GlobalDictionaryCompression
from repro.compression.null_suppression import NullSuppression
from repro.core.bounds import (TRIVIAL_CF_INTERVAL, CFInterval,
                               dict_prior_cf_interval, mix_trials_interval,
                               ns_prior_cf_interval)
from repro.core.confidence import (empirical_trial_mean_interval,
                                   ns_trial_mean_interval)
from repro.advisor.candidates import (CandidateIndex, candidate_request,
                                      resolve_algorithms,
                                      uncompressed_index_bytes,
                                      workload_key_sets)
from repro.advisor.cost import (CostModel, Query, TableStats,
                                stats_for_tables, workload_cost)
from repro.advisor.selection import AdvisorResult, candidate_gain

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.table import Table
    from repro.engine.engine import EstimationEngine
    from repro.engine.executors import PlanExecutor
    from repro.engine.requests import EstimationRequest
    from repro.store.store import SampleStore

#: Sizes are clamped here before density division; real candidate sizes
#: are orders of magnitude larger, so the floor only guards the
#: ``cf_low == 0`` trivial-prior corner from dividing by zero.
_SIZE_FLOOR = 1e-9


# ----------------------------------------------------------------------
# Candidate state
# ----------------------------------------------------------------------
@dataclass
class CandidateState:
    """One candidate's live estimation state inside the lazy loop."""

    position: int
    table_name: str
    key_columns: tuple[str, ...]
    compressed: bool
    plain_bytes: float
    max_trials: int
    algorithm: CompressionAlgorithm | None = None
    request: "EstimationRequest | None" = None
    trial_requests: tuple = ()
    prior: CFInterval = field(
        default_factory=lambda: CFInterval(1.0, 1.0))
    #: Per-entry stored-fraction range when Theorem 1 applies (NS).
    ns_range: tuple[float, float] | None = None
    #: Rows per trial sample (Theorem 1's ``r``).
    sample_rows: int = 0
    values: list[float] = field(default_factory=list)

    @property
    def trials_run(self) -> int:
        return len(self.values)

    @property
    def resolved(self) -> bool:
        """Whether the candidate's size is a point (no interval left)."""
        return not self.compressed or self.trials_run >= self.max_trials

    @property
    def name(self) -> str:
        """Delegates to :attr:`CandidateIndex.name`: the soundness
        suite joins report keys to eager candidates by this string, so
        the two formats must be one."""
        return self.probe(1.0).name

    def mean(self) -> float:
        """Trial mean so far — eager-identical arithmetic at full T."""
        return float(np.mean(np.asarray(self.values, dtype=np.float64)))

    def cf_interval(self, use_probabilistic: bool, confidence: float,
                    empirical_inflation: float) -> CFInterval:
        """Tightest current interval for the final trial-mean CF."""
        if not self.compressed:
            return CFInterval(1.0, 1.0)
        if self.trials_run >= self.max_trials:
            point = self.mean()
            return CFInterval(point, point)
        interval = mix_trials_interval(self.prior, self.values,
                                       self.max_trials)
        if not use_probabilistic or self.trials_run == 0:
            return interval
        if self.ns_range is not None:
            probabilistic = ns_trial_mean_interval(
                self.values, self.max_trials, self.sample_rows,
                self.ns_range, confidence)
            return interval.intersect(probabilistic)
        empirical = empirical_trial_mean_interval(
            self.values, self.max_trials,
            inflation=empirical_inflation, confidence=confidence)
        if empirical is not None:
            return interval.intersect(empirical)
        return interval

    def as_candidate(self) -> CandidateIndex:
        """The point candidate, identical to the eager enumeration's."""
        if not self.compressed:
            return CandidateIndex(
                table=self.table_name, key_columns=self.key_columns,
                compressed=False, algorithm=None,
                size_bytes=float(self.plain_bytes), size_source="schema")
        if not self.resolved:
            raise AdvisorError(
                f"candidate {self.name} committed at "
                f"{self.trials_run}/{self.max_trials} trials")
        cf = self.mean()
        return CandidateIndex(
            table=self.table_name, key_columns=self.key_columns,
            compressed=True, algorithm=self.algorithm.name,
            size_bytes=self.plain_bytes * cf, size_source="engine",
            estimated_cf=cf)

    def probe(self, size_bytes: float) -> CandidateIndex:
        """A hypothetical candidate at ``size_bytes`` for cost probing."""
        return CandidateIndex(
            table=self.table_name, key_columns=self.key_columns,
            compressed=self.compressed,
            algorithm=self.algorithm.name if self.compressed else None,
            size_bytes=max(float(size_bytes), _SIZE_FLOOR),
            size_source="bound")


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PruneEvent:
    """One per-round decision to skip estimating a candidate."""

    round: int
    candidate: str
    #: ``"bound"`` (interval lost to an incumbent), ``"budget"``
    #: (cannot fit even at its best-case size), or ``"no-gain"``
    #: (cannot reduce cost even at its best-case size).
    reason: str
    cf_low: float
    cf_high: float
    deterministic: bool
    incumbent_density: float


@dataclass
class WhatIfReport:
    """Where the lazy loop spent — and avoided spending — engine units."""

    max_trials: int
    candidates_total: int
    compressed_candidates: int
    rounds: int = 0
    units_executed: int = 0
    units_eager: int = 0
    pruned_never_estimated: int = 0
    early_stopped: int = 0
    trials_by_candidate: dict[str, int] = field(default_factory=dict)
    prune_events: tuple[PruneEvent, ...] = ()

    @property
    def units_saved(self) -> int:
        return self.units_eager - self.units_executed

    @property
    def savings_fraction(self) -> float:
        if self.units_eager <= 0:
            return 0.0
        return self.units_saved / self.units_eager

    def as_dict(self) -> dict[str, Any]:
        return {
            "max_trials": self.max_trials,
            "candidates_total": self.candidates_total,
            "compressed_candidates": self.compressed_candidates,
            "rounds": self.rounds,
            "units_executed": self.units_executed,
            "units_eager": self.units_eager,
            "units_saved": self.units_saved,
            "savings_fraction": round(self.savings_fraction, 4),
            "pruned_never_estimated": self.pruned_never_estimated,
            "early_stopped": self.early_stopped,
            "prune_events": len(self.prune_events),
            "trials_by_candidate": dict(self.trials_by_candidate),
        }


@dataclass(frozen=True)
class WhatIfResult(AdvisorResult):
    """An :class:`AdvisorResult` plus the lazy loop's spend report."""

    report: WhatIfReport | None = None


# ----------------------------------------------------------------------
# Priors
# ----------------------------------------------------------------------
def leaf_entry_dtypes(table: "Table", columns: Sequence[str],
                      kind: IndexKind) -> list:
    """Column dtypes of one leaf entry for the candidate's layout."""
    if kind is IndexKind.NONCLUSTERED:
        return [table.schema[column].dtype for column in columns] \
            + [BigIntType()]
    return [column.dtype for column in table.schema.columns]


def prior_cf_interval(request: "EstimationRequest") -> CFInterval:
    """Pre-sampling CF interval for one advisor request.

    Dispatches to the theorem family that covers the request's
    algorithm — Theorem 1's stored-fraction envelope for null
    suppression, Theorem 2's distinct-count envelope for the
    dictionary family — and degrades to the trivial interval whenever
    any assumption (payload accounting, no repacking, fixed-width
    entries, a recognised codec) does not hold, so a prior can never
    be wrong, only uninformative.
    """
    if request.table is None or request.accounting != "payload" \
            or request.repack:
        return TRIVIAL_CF_INTERVAL
    dtypes = leaf_entry_dtypes(request.table, request.columns,
                               request.kind)
    algorithm = request.algorithm
    if isinstance(algorithm, NullSuppression):
        return ns_prior_cf_interval(dtypes, algorithm.mode)
    if isinstance(algorithm, (DictionaryCompression,
                              GlobalDictionaryCompression)):
        r = rows_for_fraction(request.table.num_rows, request.fraction)
        return dict_prior_cf_interval(dtypes, r,
                                      algorithm.pointer_bytes,
                                      algorithm.entry_storage)
    return TRIVIAL_CF_INTERVAL


# ----------------------------------------------------------------------
# The advisor
# ----------------------------------------------------------------------
class WhatIfAdvisor:
    """Drive greedy index selection lazily through the engine.

    Construction mirrors :func:`advise_from_data` (same tables /
    queries / algorithms / fraction / seed / executor / store
    contract); :meth:`advise` then answers any number of storage
    bounds against the same engine, reusing samples and estimates
    across calls. With ``prune=False`` every surviving candidate is
    estimated at the full budget (the engine batches still share
    samples); with ``adaptive=False`` refinement jumps straight to
    ``max_trials`` instead of staging through 1, 2, 4, ... trials.
    """

    def __init__(self, tables: dict[str, "Table"],
                 queries: Sequence[Query],
                 algorithms: Sequence[CompressionAlgorithm | str]
                 = ("page",),
                 fraction: float = 0.01,
                 max_trials: int = 1,
                 model: CostModel | None = None,
                 engine: "EstimationEngine | None" = None,
                 seed: SeedLike = None,
                 executor: "PlanExecutor | str | None" = None,
                 store: "SampleStore | str | None" = None,
                 prune: bool = True,
                 adaptive: bool = True,
                 initial_trials: int = 1,
                 confidence: float = 0.999,
                 use_probabilistic: bool = True,
                 empirical_inflation: float = 4.0,
                 tracer: object = None) -> None:
        from repro.engine.engine import EstimationEngine  # lazy: cycle

        if max_trials <= 0:
            raise AdvisorError(
                f"need a positive trial budget, got {max_trials}")
        if initial_trials <= 0:
            raise AdvisorError(
                f"need a positive initial allocation, got "
                f"{initial_trials}")
        if engine is None:
            engine = EstimationEngine(
                seed=seed if seed is not None else 0, store=store,
                tracer=tracer)
        else:
            if seed is not None:
                raise AdvisorError(
                    "pass either engine= or seed=, not both: a supplied "
                    "engine's master seed governs the randomness")
            if store is not None:
                raise AdvisorError(
                    "pass either engine= or store=, not both: a "
                    "supplied engine already decided its persistence "
                    "tier")
            if tracer is not None:
                raise AdvisorError(
                    "pass either engine= or tracer=, not both: a "
                    "supplied engine already carries its tracer")
        self.tables = tables
        self.queries = list(queries)
        self.algorithms = resolve_algorithms(algorithms)
        self.fraction = float(fraction)
        self.max_trials = int(max_trials)
        self.model = model or CostModel()
        self.engine = engine
        self.executor = executor
        self.prune = prune
        self.adaptive = adaptive
        self.initial_trials = min(int(initial_trials), self.max_trials)
        self.confidence = confidence
        self.use_probabilistic = use_probabilistic
        self.empirical_inflation = empirical_inflation
        self.states = self._build_states()
        self.last_report: WhatIfReport | None = None

    # ------------------------------------------------------------------
    # Candidate construction
    # ------------------------------------------------------------------
    def _build_states(self) -> list[CandidateState]:
        """States in eager enumeration order: plain then per-algorithm."""
        states: list[CandidateState] = []
        for table_name, key_columns in workload_key_sets(self.tables,
                                                         self.queries):
            table = self.tables[table_name]
            plain_bytes = float(
                uncompressed_index_bytes(table, key_columns))
            states.append(CandidateState(
                position=len(states), table_name=table_name,
                key_columns=key_columns, compressed=False,
                plain_bytes=plain_bytes, max_trials=self.max_trials))
            for algorithm in self.algorithms:
                request = candidate_request(
                    table, table_name, key_columns, algorithm,
                    self.fraction, self.max_trials)
                prior = prior_cf_interval(request)
                ns_range = None
                if isinstance(algorithm, NullSuppression) \
                        and prior is not TRIVIAL_CF_INTERVAL \
                        and prior.deterministic \
                        and prior.high < float("inf"):
                    ns_range = (prior.low, prior.high)
                states.append(CandidateState(
                    position=len(states), table_name=table_name,
                    key_columns=key_columns, compressed=True,
                    plain_bytes=plain_bytes,
                    max_trials=self.max_trials, algorithm=algorithm,
                    request=request,
                    trial_requests=self.engine.trial_requests(request),
                    prior=prior, ns_range=ns_range,
                    sample_rows=rows_for_fraction(table.num_rows,
                                                  self.fraction)))
        return states

    # ------------------------------------------------------------------
    # The lazy greedy loop
    # ------------------------------------------------------------------
    def advise(self, storage_bound_bytes: float,
               on_round: "Callable[[dict[str, Any]], None] | None" = None,
               ) -> WhatIfResult:
        """Select a design under ``storage_bound_bytes``, lazily.

        ``on_round``, when given, is called after every greedy round
        with a plain-dict progress event (round number, the committed
        winner or ``None`` on the final round, running cost, remaining
        budget) — the hook a streaming service uses to emit incremental
        events while a long run is still deciding. The callback is
        observational: selection is bit-identical with or without it.
        """
        if storage_bound_bytes <= 0:
            raise AdvisorError(
                f"storage bound must be positive, got "
                f"{storage_bound_bytes}")
        stats = stats_for_tables(self.tables)
        executed_before = sum(s.trials_run for s in self.states
                              if s.compressed)
        chosen: list[CandidateIndex] = []
        steps: list[str] = []
        budget = float(storage_bound_bytes)
        baseline = workload_cost(self.queries, stats, chosen, self.model)
        current = baseline.total
        available = list(self.states)
        prune_events: list[PruneEvent] = []
        rounds = 0
        tracer = self.engine.tracer
        with tracer.span("whatif.advise",
                         bound=float(storage_bound_bytes),
                         candidates=len(self.states)) as advise_span:
            while True:
                rounds += 1
                self.engine.stats.add("whatif_rounds")
                with tracer.span("whatif.round",
                                 round=rounds) as round_span:
                    winner = self._run_round(rounds, available, chosen,
                                             budget, current, stats,
                                             prune_events)
                    round_span.annotate(
                        winner=winner.name if winner is not None
                        else None)
                if winner is None:
                    if on_round is not None:
                        on_round({"round": rounds, "winner": None,
                                  "chosen": len(chosen),
                                  "cost": current,
                                  "budget_remaining": budget})
                    break
                candidate = winner.as_candidate()
                reduction, total = candidate_gain(
                    candidate, self.queries, stats, chosen, self.model,
                    current)
                chosen.append(candidate)
                available.remove(winner)
                budget -= candidate.size_bytes
                steps.append(
                    f"+{candidate.name} ({candidate.size_bytes:.0f} B, "
                    f"cost {current:.1f} -> {total:.1f})")
                current = total
                if on_round is not None:
                    on_round({"round": rounds, "winner": candidate.name,
                              "size_bytes": candidate.size_bytes,
                              "chosen": len(chosen),
                              "cost": current,
                              "budget_remaining": budget})
            advise_span.annotate(rounds=rounds, chosen=len(chosen))
        report = self._finish_report(rounds, tuple(prune_events),
                                     executed_before)
        self.last_report = report
        return WhatIfResult(
            chosen=tuple(chosen),
            storage_bound_bytes=float(storage_bound_bytes),
            bytes_used=float(storage_bound_bytes) - budget,
            cost_before=baseline.total,
            cost_after=current,
            steps=tuple(steps),
            report=report)

    def _run_round(self, round_no: int,
                   available: list[CandidateState],
                   chosen: list[CandidateIndex], budget: float,
                   current: float, stats: dict[str, TableStats],
                   prune_events: list[PruneEvent],
                   ) -> CandidateState | None:
        """One greedy round: bound, prune, refine, decide."""
        logged: set[int] = set()

        def log_prune(state: CandidateState, reason: str,
                      interval: CFInterval, incumbent: float) -> None:
            # Only unresolved compressed candidates represent skipped
            # estimation work; plain or fully-estimated ones cost
            # nothing to exclude.
            if state.position in logged or not state.compressed \
                    or state.resolved:
                return
            logged.add(state.position)
            prune_events.append(PruneEvent(
                round=round_no, candidate=state.name, reason=reason,
                cf_low=interval.low, cf_high=interval.high,
                deterministic=interval.deterministic,
                incumbent_density=incumbent))
            self.engine.stats.add("whatif_pruned")
            self.engine.tracer.event(
                "whatif.prune", candidate=state.name, reason=reason,
                round=round_no)

        # A resolved candidate's interval, size, and densities cannot
        # change within a round (chosen/budget/current only move
        # between rounds), so its evaluation is computed once per
        # round instead of once per refinement iteration.
        resolved_cache: dict[int, tuple[CFInterval, float, float]] = {}
        while True:
            evaluations: list[tuple[CandidateState, CFInterval,
                                    float, float]] = []
            for state in available:
                cached = resolved_cache.get(state.position)
                if cached is not None:
                    evaluations.append((state, *cached))
                    continue
                interval = state.cf_interval(self.use_probabilistic,
                                             self.confidence,
                                             self.empirical_inflation)
                density_lo, density_hi = self._density_bounds(
                    state, interval, chosen, budget, current, stats)
                if state.resolved:
                    resolved_cache[state.position] = (
                        interval, density_lo, density_hi)
                evaluations.append((state, interval, density_lo,
                                    density_hi))
            incumbent = max((density_lo for _, _, density_lo, _
                             in evaluations), default=0.0)
            survivors: list[tuple[CandidateState, float]] = []
            undecided: list[CandidateState] = []
            for state, interval, density_lo, density_hi in evaluations:
                lo_size, _ = self._size_interval(state, interval)
                if lo_size > budget:
                    log_prune(state, "budget", interval, incumbent)
                    continue
                if density_hi <= 0.0:
                    log_prune(state, "no-gain", interval, incumbent)
                    continue
                if self.prune and density_hi < incumbent:
                    log_prune(state, "bound", interval, incumbent)
                    continue
                survivors.append((state, density_hi))
                if not state.resolved:
                    undecided.append(state)
            if not undecided:
                # Every survivor is a point: replicate the eager scan
                # (input order, strictly-greater density wins).
                best_state: CandidateState | None = None
                best_density = 0.0
                for state, density in survivors:
                    if density > best_density:
                        best_density = density
                        best_state = state
                return best_state
            self._refine(undecided,
                         force_full=len(survivors) == 1)

    def _size_interval(self, state: CandidateState,
                       interval: CFInterval) -> tuple[float, float]:
        if not state.compressed:
            return state.plain_bytes, state.plain_bytes
        return (state.plain_bytes * interval.low,
                state.plain_bytes * interval.high)

    def _density_bounds(self, state: CandidateState,
                        interval: CFInterval,
                        chosen: list[CandidateIndex], budget: float,
                        current: float,
                        stats: dict[str, TableStats],
                        ) -> tuple[float, float]:
        """Guaranteed and best-case benefit density for one candidate.

        ``density_hi`` evaluates the candidate at its smallest possible
        size (cost reduction is non-increasing in size, so this is the
        best case); ``density_lo`` at its largest. The worst case is 0
        unless the candidate surely fits and surely improves — only
        then may it serve as a pruning incumbent.
        """
        lo_size, hi_size = self._size_interval(state, interval)
        if lo_size > budget:
            return 0.0, 0.0
        probe_lo = max(lo_size, _SIZE_FLOOR)
        reduction_hi, _ = candidate_gain(
            state.probe(probe_lo), self.queries, stats, chosen,
            self.model, current)
        density_hi = (reduction_hi / probe_lo
                      if reduction_hi > 0 else 0.0)
        density_lo = 0.0
        if hi_size <= budget:
            probe_hi = max(hi_size, _SIZE_FLOOR)
            reduction_lo, _ = candidate_gain(
                state.probe(probe_hi), self.queries, stats, chosen,
                self.model, current)
            if reduction_lo > 0:
                density_lo = reduction_lo / probe_hi
        return density_lo, density_hi

    def _next_stage(self, trials_run: int) -> int:
        """Adaptive allocation schedule: 1, 2, 4, ... up to the budget."""
        if trials_run == 0:
            return self.initial_trials
        return min(self.max_trials, max(trials_run + 1, 2 * trials_run))

    def _refine(self, undecided: list[CandidateState],
                force_full: bool = False) -> None:
        """One shared-sample engine batch over the missing trials.

        ``force_full`` is set when the round has exactly one surviving
        candidate left: it is the only possible winner and must reach
        the full budget before it may be committed, so staging through
        it would only add batches. A lone *undecided* candidate among
        several resolved survivors still stages normally — its next
        trials may prune it against a resolved incumbent.
        """
        allocations: list[tuple[CandidateState, int]] = []
        requests = []
        for state in undecided:
            if not self.adaptive or force_full:
                target = self.max_trials
            else:
                target = self._next_stage(state.trials_run)
            fresh = state.trial_requests[state.trials_run:target]
            allocations.append((state, len(fresh)))
            requests.extend(fresh)
        batch = self.engine.execute(requests, executor=self.executor)
        cursor = 0
        for state, count in allocations:
            for offset in range(count):
                result = batch.results[cursor + offset]
                state.values.append(result.estimates[0].estimate)
            cursor += count

    def _finish_report(self, rounds: int,
                       prune_events: tuple[PruneEvent, ...],
                       executed_before: int) -> WhatIfReport:
        """Per-call spend accounting.

        ``units_executed`` counts trials run *during this call* — a
        repeated :meth:`advise` under a new bound reuses earlier
        trials, and an eager run would pay the full ``K * T`` again —
        while ``trials_by_candidate`` shows the cumulative per-state
        allocation.
        """
        compressed = [s for s in self.states if s.compressed]
        executed = sum(s.trials_run for s in compressed) \
            - executed_before
        eager = len(compressed) * self.max_trials
        never = sum(1 for s in compressed if s.trials_run == 0)
        early = sum(1 for s in compressed
                    if 0 < s.trials_run < s.max_trials)
        self.engine.stats.add("whatif_early_stops", early)
        self.engine.stats.add("whatif_trials_saved", eager - executed)
        return WhatIfReport(
            max_trials=self.max_trials,
            candidates_total=len(self.states),
            compressed_candidates=len(compressed),
            rounds=rounds,
            units_executed=executed,
            units_eager=eager,
            pruned_never_estimated=never,
            early_stopped=early,
            trials_by_candidate={s.name: s.trials_run
                                 for s in compressed},
            prune_events=prune_events)


def advise_what_if(tables: dict[str, "Table"], queries: Sequence[Query],
                   storage_bound_bytes: float,
                   **kwargs: Any) -> WhatIfResult:
    """One-call lazy advisor run (mirrors :func:`advise_from_data`)."""
    advisor = WhatIfAdvisor(tables, queries, **kwargs)
    return advisor.advise(storage_bound_bytes)
