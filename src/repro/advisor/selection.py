"""Greedy index selection under a storage bound.

The classic physical-design loop: repeatedly add the candidate with the
best cost-reduction-per-byte that still fits the remaining budget, until
nothing helps. Compression enters purely through candidate sizes and the
per-page CPU penalty — which is exactly why an accurate compressed-size
estimate (SampleCF) changes which designs are feasible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.errors import AdvisorError
from repro.sampling.rng import SeedLike
from repro.advisor.candidates import (CandidateIndex,
                                      enumerate_candidates_batch)
from repro.advisor.cost import (CostModel, Query, TableStats,
                                stats_for_tables, workload_cost)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.table import Table
    from repro.compression.base import CompressionAlgorithm
    from repro.engine.engine import EstimationEngine
    from repro.engine.executors import PlanExecutor
    from repro.store.store import SampleStore


@dataclass(frozen=True)
class AdvisorResult:
    """Outcome of an advisor run."""

    chosen: tuple[CandidateIndex, ...]
    storage_bound_bytes: float
    bytes_used: float
    cost_before: float
    cost_after: float
    steps: tuple[str, ...] = field(default=())

    @property
    def improvement(self) -> float:
        """Fraction of workload cost eliminated."""
        if self.cost_before <= 0:
            raise AdvisorError("workload cost before must be positive")
        return 1.0 - self.cost_after / self.cost_before


def candidate_gain(candidate: CandidateIndex, queries: Sequence[Query],
                   tables: dict[str, TableStats],
                   chosen: Sequence[CandidateIndex], model: CostModel,
                   current: float) -> tuple[float, float]:
    """``(cost reduction, new total)`` from adding one candidate.

    The marginal-benefit evaluation both the eager greedy loop and the
    lazy what-if loop score candidates with — shared so their pruning
    arithmetic can never drift from the selection it predicts. The
    reduction is non-increasing in ``candidate.size_bytes`` (a bigger
    index touches at least as many pages for every query), which is the
    monotonicity the what-if bounds rely on.
    """
    trial = workload_cost(queries, tables, list(chosen) + [candidate],
                          model)
    return current - trial.total, trial.total


def select_indexes(candidates: Sequence[CandidateIndex],
                   queries: Sequence[Query],
                   tables: dict[str, TableStats],
                   storage_bound_bytes: float,
                   model: CostModel | None = None) -> AdvisorResult:
    """Greedy benefit-per-byte selection under the storage bound.

    Determinism contract: each round scans the remaining candidates in
    their input order and keeps a strictly better density only, so
    **ties break toward the earlier candidate** and a candidate whose
    addition does not reduce cost is never chosen (the zero-improvement
    path leaves the design as-is). The what-if advisor reproduces this
    scan exactly; tests pin both behaviours.
    """
    if storage_bound_bytes <= 0:
        raise AdvisorError(
            f"storage bound must be positive, got {storage_bound_bytes}")
    model = model or CostModel()
    chosen: list[CandidateIndex] = []
    steps: list[str] = []
    budget = float(storage_bound_bytes)
    baseline = workload_cost(queries, tables, chosen, model)
    current = baseline.total
    remaining = [c for c in candidates if c.size_bytes <= budget]
    while True:
        best_candidate: CandidateIndex | None = None
        best_cost = current
        best_density = 0.0
        for candidate in remaining:
            if candidate.size_bytes > budget:
                continue
            reduction, total = candidate_gain(candidate, queries, tables,
                                              chosen, model, current)
            if reduction <= 0:
                continue
            density = reduction / candidate.size_bytes
            if density > best_density:
                best_density = density
                best_candidate = candidate
                best_cost = total
        if best_candidate is None:
            break
        chosen.append(best_candidate)
        remaining.remove(best_candidate)
        budget -= best_candidate.size_bytes
        steps.append(
            f"+{best_candidate.name} ({best_candidate.size_bytes:.0f} B, "
            f"cost {current:.1f} -> {best_cost:.1f})")
        current = best_cost
    return AdvisorResult(
        chosen=tuple(chosen),
        storage_bound_bytes=float(storage_bound_bytes),
        bytes_used=float(storage_bound_bytes) - budget,
        cost_before=baseline.total,
        cost_after=current,
        steps=tuple(steps))


def advise_from_data(tables: dict[str, "Table"],
                     queries: Sequence[Query],
                     storage_bound_bytes: float,
                     algorithms: Sequence["CompressionAlgorithm | str"]
                     = ("page",),
                     fraction: float = 0.01,
                     trials: int = 1,
                     model: CostModel | None = None,
                     engine: "EstimationEngine | None" = None,
                     seed: SeedLike = None,
                     executor: "PlanExecutor | str | None" = None,
                     store: "SampleStore | str | None" = None,
                     ) -> AdvisorResult:
    """End-to-end advisor run straight from live tables.

    The engine-backed path: candidate CFs are *estimated from the data*
    (one shared-sample engine batch across every key set × algorithm)
    rather than supplied by the caller, and table statistics are
    derived from the heaps. This is the paper's motivating application
    loop — SampleCF inside a physical design tool — packaged as one
    call. ``executor`` (instance or name: ``"serial"``, ``"threads"``,
    ``"process"``) picks how the sizing batch runs; results are
    byte-identical across executors for a fixed seed. ``store`` (a
    :class:`~repro.store.store.SampleStore` or directory path) makes
    repeated advisor runs over the same stored tables warm-start from
    the persistent sample/estimate store.
    """
    candidates = enumerate_candidates_batch(
        tables, queries, algorithms=algorithms, fraction=fraction,
        trials=trials, engine=engine, seed=seed, executor=executor,
        store=store)
    return select_indexes(candidates, queries, stats_for_tables(tables),
                          storage_bound_bytes, model=model)


def design_summary(result: AdvisorResult) -> str:
    """Human-readable report of an advisor run."""
    lines = [
        f"storage bound : {result.storage_bound_bytes:,.0f} bytes",
        f"bytes used    : {result.bytes_used:,.0f}",
        f"workload cost : {result.cost_before:,.1f} -> "
        f"{result.cost_after:,.1f} "
        f"({result.improvement:.1%} better)",
        "chosen indexes:",
    ]
    if not result.chosen:
        lines.append("  (none fit / none helped)")
    for candidate in result.chosen:
        cf_note = (f", est. CF {candidate.estimated_cf:.3f}"
                   if candidate.estimated_cf is not None else "")
        lines.append(
            f"  {candidate.name}: {candidate.size_bytes:,.0f} bytes"
            f"{cf_note}")
    return "\n".join(lines)
