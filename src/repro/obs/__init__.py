"""repro.obs — zero-dependency tracing, metrics, and run reports.

The observability layer for the estimation stack: span tracing across
engine / executors / store / advisor / remote workers
(:mod:`repro.obs.trace`), a counters/gauges/histograms registry
(:mod:`repro.obs.metrics`), and trace-file analysis
(:mod:`repro.obs.report`).

This package is the *only* module tree allowed to read wall-clock time
on the unit-execution path — ``repro lint`` (RPL001) enforces the
boundary via the ``entropy_exempt_modules`` anchor in
:func:`repro.analysis.config.project_config`. Estimates must be
bit-identical with tracing on or off; the determinism property suite
locks that.
"""

from repro.obs.metrics import (Counter, Gauge, Histogram,
                               MetricsRegistry, absorb_engine_stats,
                               absorb_store_counters)
from repro.obs.trace import (NULL_TRACER, NullTracer, Span, SpanContext,
                             TRACE_SCHEMA_VERSION, Tracer, read_trace)
from repro.obs.report import load_trace, one_line, render, summarize

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "absorb_engine_stats", "absorb_store_counters",
    "NULL_TRACER", "NullTracer", "Span", "SpanContext",
    "TRACE_SCHEMA_VERSION", "Tracer", "read_trace",
    "load_trace", "one_line", "render", "summarize",
]
