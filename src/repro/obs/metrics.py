"""Counters, gauges, and histograms for the observability layer.

The registry is deliberately tiny: names map to instruments, every
mutation is lock-guarded, and :meth:`MetricsRegistry.snapshot` renders
plain dicts suitable for a JSONL ``metrics`` record or a service
``/metrics`` endpoint.

Naming scheme (dotted, lowercase):

* ``span.<name>.seconds`` — latency histogram auto-observed per span
  (``span.unit.run.seconds``, ``span.kernel.size.seconds``, ...);
* ``event.<name>`` — counter auto-incremented per point event
  (``event.steal``, ``event.whatif.prune``);
* ``engine.<counter>`` — :class:`~repro.engine.samples.EngineStats`
  counters absorbed by :func:`absorb_engine_stats`;
* ``store.bytes_read`` / ``store.bytes_written`` — store I/O volume;
* ``cost_model.*`` — calibration gauges (EMA seconds-per-cost per
  algorithm, predicted-vs-actual error) published by the remote
  dispatcher.
"""

from __future__ import annotations

import threading


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """A point-in-time value (queue depth, EMA rate, error ratio)."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value: float = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)


#: Exponential bucket upper bounds for latency histograms: 1µs base,
#: factor 4 — spans from sub-microsecond store probes to multi-minute
#: batches land in distinct buckets.
HISTOGRAM_BOUNDS = tuple(1e-6 * 4 ** i for i in range(15))


class Histogram:
    """Fixed exponential-bucket histogram with sum/count/min/max."""

    __slots__ = ("_lock", "buckets", "count", "total", "min", "max")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.buckets = [0] * (len(HISTOGRAM_BOUNDS) + 1)
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        value = float(value)
        slot = len(HISTOGRAM_BOUNDS)
        for i, bound in enumerate(HISTOGRAM_BOUNDS):
            if value <= bound:
                slot = i
                break
        with self._lock:
            self.buckets[slot] += 1
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    def as_dict(self) -> dict:
        with self._lock:
            return {"count": self.count, "sum": self.total,
                    "min": self.min, "max": self.max,
                    "mean": self.total / self.count if self.count else None,
                    "buckets": list(self.buckets)}


class MetricsRegistry:
    """Name-addressed counters/gauges/histograms behind one lock."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter()
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge()
            return instrument

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram()
            return instrument

    def snapshot(self) -> dict:
        """Plain-dict rendering: ``{"counters", "gauges", "histograms"}``."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {name: c.value
                         for name, c in sorted(counters.items())},
            "gauges": {name: g.value
                       for name, g in sorted(gauges.items())},
            "histograms": {name: h.as_dict()
                           for name, h in sorted(histograms.items())},
        }


def absorb_engine_stats(registry: MetricsRegistry, stats: object,
                        prefix: str = "engine.") -> None:
    """Mirror an ``EngineStats`` bag into ``registry`` as counters/gauges.

    This is the adapter half of the ``EngineStats`` <-> metrics-registry
    bridge, and the direction matters: **EngineStats is authoritative**
    for engine execution counters. It is the bag the engine mutates on
    the hot path, the thing ``BatchResult.stats`` snapshots, the value
    acceptance tests pin, and the merge discipline
    (batch-local -> engine-lifetime) lives there. The registry is a
    *read-side projection*: each absorb re-derives ``engine.*`` series
    from the current bag so trace files and metrics endpoints can
    render them next to obs-native series (span histograms, store
    bytes, cost-model calibration) — it never writes back, and
    disagreement between the two is by definition a stale projection,
    resolved by absorbing again.

    Counters land as ``{prefix}{name}`` counters (set to the absolute
    snapshot value via a delta), gauges from ``stats.gauges()`` as
    ``{prefix}gauges.{name}``.
    """
    snapshot = stats.snapshot()  # type: ignore[attr-defined]
    for name, value in snapshot.items():
        counter = registry.counter(f"{prefix}{name}")
        counter.inc(value - counter.value)
    gauges = getattr(stats, "gauges", None)
    if callable(gauges):
        for name, value in gauges().items():
            registry.gauge(f"{prefix}gauges.{name}").set(value)


def absorb_store_counters(registry: MetricsRegistry,
                          counters: dict,
                          prefix: str = "store.") -> None:
    """Mirror a :class:`SampleStore` counter dict into ``registry``.

    Same projection discipline as :func:`absorb_engine_stats`: the
    store's own ``counters`` dict is authoritative, the registry is a
    read-side rendering set to the absolute snapshot value via a
    delta, so repeated absorbs are idempotent and a ``/stats``
    endpoint can re-absorb on every scrape.
    """
    for name, value in counters.items():
        counter = registry.counter(f"{prefix}{name}")
        counter.inc(int(value) - counter.value)
