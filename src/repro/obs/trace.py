"""Span tracing for the estimation path.

A :class:`Tracer` produces nested spans (``engine.execute`` ->
``plan.build`` -> ``unit.run`` -> ``sample.materialize`` /
``kernel.size`` / ``store.get`` ...) recorded as JSONL trace events
with monotonic timings. Three deployment shapes share one class:

* **file tracer** (:meth:`Tracer.to_path`) — the parent process's
  tracer; writes every finished span as one JSON line, stamps a single
  wall-clock anchor in the ``meta`` record, and emits a final
  ``metrics`` record on :meth:`Tracer.close`;
* **collector** (:meth:`Tracer.collector`) — the worker-side tracer: it
  buffers records in memory, roots its spans under a
  :class:`SpanContext` shipped from the parent (so re-parenting is
  decided at *record* time, not merge time), and :meth:`Tracer.drain`
  returns the buffered records for the result frame to carry home;
* **null tracer** (:data:`NULL_TRACER`) — the default everywhere. Its
  :meth:`NullTracer.span` returns one shared no-op span object, so the
  hot path allocates nothing when tracing is disabled.

Timing discipline: every span timestamp is ``time.perf_counter()``
relative to the tracer's epoch — monotonic, never wall-clock. The one
``time.time()`` call in this package is the ``meta`` record's wall
anchor, which exists purely so a human can relate a trace file to the
outside world; it never reaches an estimate. ``repro lint`` enforces
this boundary: ``repro.obs`` is the *only* entropy-exempt module tree
(see :func:`repro.analysis.config.project_config`), so a wall-clock
read anywhere else on the unit path still fails RPL001.

Cross-process clocks are not comparable, so :meth:`Tracer.adopt`
re-bases foreign records: the batch of records is shifted uniformly so
its latest end time lands at the adopting tracer's "now" (which is the
moment the result frame arrived). Relative timing within the batch is
exact; its absolute placement is accurate to one result round trip.
"""

from __future__ import annotations

import io
import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator

from repro.obs.metrics import MetricsRegistry

#: Trace file schema version, stamped into the ``meta`` record.
TRACE_SCHEMA_VERSION = 1

_TRACE_IDS = itertools.count(1)


@dataclass(frozen=True)
class SpanContext:
    """The picklable identity of one span: ships across boundaries.

    Process-pool initargs and remote ``run`` frames carry a
    ``SpanContext`` so worker-side spans can parent themselves under
    the exact parent-side span that dispatched them.
    """

    trace_id: str
    span_id: str


class Span:
    """One in-flight span; finished (and recorded) on ``__exit__``."""

    __slots__ = ("name", "span_id", "parent_id", "start", "attrs",
                 "_tracer", "duration")

    def __init__(self, tracer: "Tracer", name: str, span_id: str,
                 parent_id: str | None, start: float,
                 attrs: dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.attrs = attrs
        self.duration: float | None = None

    @property
    def context(self) -> SpanContext:
        return SpanContext(trace_id=self._tracer.trace_id,
                           span_id=self.span_id)

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes discovered mid-span (rows drawn, hits...)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._tracer._finish(self)


class _NullSpan:
    """The shared do-nothing span the null tracer hands out."""

    __slots__ = ()

    def annotate(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


class NullTracer:
    """Tracing disabled: every operation is a shared-object no-op."""

    enabled = False
    trace_id = ""

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return NULL_SPAN

    def event(self, name: str, **attrs: Any) -> None:
        pass

    def current_context(self) -> None:
        return None

    @contextmanager
    def attach(self, context: "SpanContext | None") -> Iterator[None]:
        yield

    def adopt(self, records: list[dict],
              align_end: float | None = None) -> None:
        pass

    def drain(self) -> list[dict]:
        return []

    def close(self) -> None:
        pass


NULL_SPAN = _NullSpan()
NULL_TRACER = NullTracer()


class _JsonlSink:
    """Line-per-record JSON writer (thread-safety is the tracer's)."""

    def __init__(self, stream: io.TextIOBase, owns: bool) -> None:
        self._stream = stream
        self._owns = owns

    def write(self, record: dict) -> None:
        self._stream.write(json.dumps(record, default=str) + "\n")

    def close(self) -> None:
        self._stream.flush()
        if self._owns:
            self._stream.close()


class _MemorySink:
    """Buffering sink for worker-side collectors."""

    def __init__(self) -> None:
        self.records: list[dict] = []

    def write(self, record: dict) -> None:
        self.records.append(record)

    def drain(self) -> list[dict]:
        records, self.records = self.records, []
        return records

    def close(self) -> None:
        pass


class Tracer:
    """Produce nested spans and record them as JSONL trace events.

    Parenting is implicit: each thread keeps a stack of open spans, a
    new span parents under the stack top. Threads that did not open the
    enclosing span (pool workers, dispatcher threads) re-enter the tree
    via :meth:`attach`, and whole processes via a shipped
    :class:`SpanContext` (``root_context``).
    """

    enabled = True

    def __init__(self, sink: "_JsonlSink | _MemorySink",
                 proc: str = "main",
                 root_context: SpanContext | None = None) -> None:
        self._sink = sink
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._local = threading.local()
        self.proc = proc
        self.root_context = root_context
        self.metrics = MetricsRegistry()
        self._epoch = time.perf_counter()
        if root_context is not None:
            self.trace_id = root_context.trace_id
        else:
            self.trace_id = f"t{os.getpid():x}-{next(_TRACE_IDS)}"

    # -- construction shapes -------------------------------------------
    @classmethod
    def to_path(cls, path: str | os.PathLike) -> "Tracer":
        """A file tracer writing JSONL records to ``path``."""
        stream = open(path, "w", encoding="utf-8")
        tracer = cls(_JsonlSink(stream, owns=True))
        # The single wall-clock anchor: relates the monotonic offsets
        # to calendar time for humans. Confined to repro.obs by the
        # RPL001 entropy-exemption anchor — nowhere else may call it.
        tracer._write({"type": "meta", "schema": TRACE_SCHEMA_VERSION,
                       "trace": tracer.trace_id, "proc": tracer.proc,
                       "pid": os.getpid(),
                       "wall_start": time.time()})
        return tracer

    @classmethod
    def to_stream(cls, stream: io.TextIOBase) -> "Tracer":
        """A file tracer over an already-open text stream (tests)."""
        tracer = cls(_JsonlSink(stream, owns=False))
        tracer._write({"type": "meta", "schema": TRACE_SCHEMA_VERSION,
                       "trace": tracer.trace_id, "proc": tracer.proc,
                       "pid": os.getpid(),
                       "wall_start": time.time()})
        return tracer

    @classmethod
    def collector(cls, root_context: SpanContext,
                  proc: str | None = None) -> "Tracer":
        """A worker-side buffering tracer rooted under a shipped span.

        The default proc tag includes a process-local serial so two
        collectors in one process (one per remote chunk) never mint
        colliding span ids.
        """
        return cls(_MemorySink(),
                   proc=proc or f"w{os.getpid():x}-{next(_TRACE_IDS)}",
                   root_context=root_context)

    # -- time ----------------------------------------------------------
    def now(self) -> float:
        """Monotonic seconds since this tracer's epoch."""
        return time.perf_counter() - self._epoch

    # -- span production -----------------------------------------------
    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current_context(self) -> SpanContext | None:
        """The innermost open span on this thread (for re-attachment)."""
        stack = self._stack()
        if stack:
            return SpanContext(trace_id=self.trace_id, span_id=stack[-1])
        if self.root_context is not None:
            return self.root_context
        return None

    @contextmanager
    def attach(self, context: SpanContext | None) -> Iterator[None]:
        """Parent this thread's next spans under ``context``."""
        if context is None:
            yield
            return
        stack = self._stack()
        stack.append(context.span_id)
        try:
            yield
        finally:
            stack.pop()

    def span(self, name: str, **attrs: Any) -> Span:
        stack = self._stack()
        if stack:
            parent: str | None = stack[-1]
        elif self.root_context is not None:
            parent = self.root_context.span_id
        else:
            parent = None
        span = Span(self, name, f"{self.proc}.{next(self._ids)}",
                    parent, self.now(), attrs)
        stack.append(span.span_id)
        return span

    def _finish(self, span: Span) -> None:
        span.duration = self.now() - span.start
        stack = self._stack()
        # Exiting out of order (a leaked span) must not corrupt peers.
        if span.span_id in stack:
            del stack[stack.index(span.span_id):]
        record = {"type": "span", "id": span.span_id,
                  "parent": span.parent_id, "name": span.name,
                  "proc": self.proc, "t": span.start,
                  "dur": span.duration}
        if span.attrs:
            record["attrs"] = span.attrs
        self._write(record)
        self.metrics.histogram(f"span.{span.name}.seconds").observe(
            span.duration)

    def event(self, name: str, **attrs: Any) -> None:
        """A zero-duration point event under the current span."""
        stack = self._stack()
        if stack:
            parent: str | None = stack[-1]
        elif self.root_context is not None:
            parent = self.root_context.span_id
        else:
            parent = None
        record = {"type": "event", "id": f"{self.proc}.{next(self._ids)}",
                  "parent": parent, "name": name, "proc": self.proc,
                  "t": self.now()}
        if attrs:
            record["attrs"] = attrs
        self._write(record)
        self.metrics.counter(f"event.{name}").inc()

    def _write(self, record: dict) -> None:
        with self._lock:
            self._sink.write(record)

    # -- cross-boundary plumbing ---------------------------------------
    def drain(self) -> list[dict]:
        """Pop the buffered records (collector tracers only)."""
        sink = self._sink
        if isinstance(sink, _MemorySink):
            with self._lock:
                return sink.drain()
        return []

    def adopt(self, records: list[dict],
              align_end: float | None = None) -> None:
        """Fold a worker's drained records into this trace.

        Foreign perf_counter offsets are not comparable to ours, so the
        whole batch shifts uniformly: its latest end lands at
        ``align_end`` (default: now, i.e. the moment the result frame
        arrived). Parent ids are preserved — collectors already rooted
        their spans under the shipped :class:`SpanContext`.
        """
        if not records:
            return
        if align_end is None:
            align_end = self.now()
        latest = max(record["t"] + record.get("dur", 0.0)
                     for record in records)
        shift = align_end - latest
        for record in records:
            shifted = dict(record)
            shifted["t"] = record["t"] + shift
            shifted["adopted"] = True
            self._write(shifted)
            if record.get("type") == "span":
                self.metrics.histogram(
                    f"span.{record['name']}.seconds").observe(
                    record.get("dur", 0.0))

    def close(self) -> None:
        """Flush: emit the final metrics record and close the sink."""
        snapshot = self.metrics.snapshot()
        self._write({"type": "metrics", "proc": self.proc, **snapshot})
        with self._lock:
            self._sink.close()


def read_trace(path: str | os.PathLike) -> list[dict]:
    """Load one JSONL trace file back into its records."""
    records = []
    with open(path, "r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
