"""Trace analysis: per-phase breakdowns, stragglers, slowest units.

``repro trace summarize <trace.jsonl>`` renders the output of
:func:`summarize`, which answers three questions about one traced run:

* **where did the wall-clock go** — per-span-name totals and *self*
  times (duration minus same-process child durations, so the phase
  table partitions the run instead of double-counting nested spans);
* **did every unit run exactly once** — ``unit.run`` spans carry the
  plan-unit index, checked against the ``units`` count annotated on
  the ``engine.execute`` root;
* **who was the straggler** — per-worker busy time aggregated from
  remote ``chunk.run`` spans plus steal/failure event counts.

Coverage (summed main-process self-times over measured wall-clock) is
the report's honesty metric: spans adopted from workers run
*concurrently* with the parent's dispatch spans, so only the parent
process's spans partition wall-clock; worker time shows up under the
per-worker busy table instead.
"""

from __future__ import annotations

import json
import os
from typing import Any


def load_trace(path: str | os.PathLike) -> list[dict]:
    """Read a JSONL trace file into its records."""
    records = []
    with open(path, "r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def _main_proc(records: list[dict]) -> str:
    for record in records:
        if record.get("type") == "meta":
            return str(record.get("proc", "main"))
    return "main"


def summarize(records: list[dict], top: int = 10) -> dict:
    """Digest trace records into a report dict (see module docstring)."""
    main = _main_proc(records)
    spans = [r for r in records if r.get("type") == "span"]
    events = [r for r in records if r.get("type") == "event"]
    main_spans = [s for s in spans if s.get("proc") == main
                  and not s.get("adopted")]

    # Wall-clock: the envelope of the parent process's spans.
    if main_spans:
        start = min(s["t"] for s in main_spans)
        end = max(s["t"] + s.get("dur", 0.0) for s in main_spans)
        wall = end - start
    else:
        wall = 0.0

    # Self time: duration minus same-proc children (telescopes, so the
    # per-name totals partition each root span's duration exactly).
    child_sums: dict[str, float] = {}
    by_id = {s["id"]: s for s in main_spans}
    for span in main_spans:
        parent = span.get("parent")
        if parent in by_id:
            child_sums[parent] = child_sums.get(parent, 0.0) \
                + span.get("dur", 0.0)

    phases: dict[str, dict[str, float]] = {}
    for span in main_spans:
        duration = span.get("dur", 0.0)
        self_time = duration - child_sums.get(span["id"], 0.0)
        entry = phases.setdefault(
            span["name"], {"count": 0, "total": 0.0, "self": 0.0})
        entry["count"] += 1
        entry["total"] += duration
        entry["self"] += self_time

    self_total = sum(entry["self"] for entry in phases.values())
    coverage = self_total / wall if wall > 0 else None

    # Unit accounting: every executed unit exactly once, in any proc.
    # Unit indexes restart at 0 for every batch (an advise run executes
    # many), so identity is (enclosing engine.execute span, index) —
    # found by walking parents, which works for adopted worker spans
    # too because collectors root themselves under shipped contexts.
    by_span = {s["id"]: s for s in spans}

    def _batch_of(span: dict) -> Any:
        visited = set()
        current = span
        while True:
            parent = current.get("parent")
            if parent is None or parent in visited \
                    or parent not in by_span:
                return None
            visited.add(parent)
            current = by_span[parent]
            if current["name"] == "engine.execute":
                return current["id"]

    unit_spans = [s for s in spans if s["name"] == "unit.run"]
    seen: dict[Any, int] = {}
    for span in unit_spans:
        unit = (_batch_of(span), span.get("attrs", {}).get("unit"))
        seen[unit] = seen.get(unit, 0) + 1
    expected = None
    for span in spans:
        if span["name"] == "engine.execute":
            units = span.get("attrs", {}).get("units")
            if units is not None:
                expected = (expected or 0) + int(units)
    duplicates = sorted((u for u, n in seen.items() if n > 1),
                        key=str)
    units_report = {
        "expected": expected,
        "executed": len(unit_spans),
        "distinct": len(seen),
        "duplicates": duplicates,
        "exactly_once": (expected is None or expected == len(seen))
        and not duplicates,
    }

    # Straggler analysis: busy time per remote worker from chunk spans.
    workers: dict[str, dict[str, float]] = {}
    for span in spans:
        if span["name"] != "chunk.run":
            continue
        name = str(span.get("attrs", {}).get("worker", "?"))
        entry = workers.setdefault(
            name, {"busy": 0.0, "chunks": 0, "units": 0})
        entry["busy"] += span.get("dur", 0.0)
        entry["chunks"] += 1
        entry["units"] += int(span.get("attrs", {}).get("units", 0))

    event_counts: dict[str, int] = {}
    for event in events:
        event_counts[event["name"]] = event_counts.get(event["name"], 0) + 1

    slowest = sorted(unit_spans, key=lambda s: s.get("dur", 0.0),
                     reverse=True)[:top]
    slowest_rows = [
        {"unit": s.get("attrs", {}).get("unit"),
         "proc": s.get("proc"),
         "seconds": s.get("dur", 0.0),
         "algorithm": s.get("attrs", {}).get("algorithm"),
         "fraction": s.get("attrs", {}).get("fraction"),
         "label": s.get("attrs", {}).get("label")}
        for s in slowest]

    return {
        "wall_seconds": wall,
        "span_count": len(spans),
        "event_count": len(events),
        "phases": {name: dict(entry)
                   for name, entry in sorted(
                       phases.items(),
                       key=lambda item: -item[1]["self"])},
        "self_seconds": self_total,
        "coverage": coverage,
        "units": units_report,
        "workers": {name: dict(entry)
                    for name, entry in sorted(
                        workers.items(),
                        key=lambda item: -item[1]["busy"])},
        "events": dict(sorted(event_counts.items())),
        "slowest_units": slowest_rows,
    }


def _fmt_seconds(value: float | None) -> str:
    if value is None:
        return "-"
    if value >= 1.0:
        return f"{value:.3f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.2f}ms"
    return f"{value * 1e6:.1f}us"


def _table(headers: list[str], rows: list[list[str]]) -> list[str]:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = ["  ".join(h.ljust(widths[i])
                       for i, h in enumerate(headers)).rstrip()]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)).rstrip())
    return lines


def render(summary: dict) -> str:
    """Human-readable multi-section report for one summarized trace."""
    lines: list[str] = []
    wall = summary["wall_seconds"]
    coverage = summary["coverage"]
    lines.append(
        f"wall {_fmt_seconds(wall)}  spans {summary['span_count']}  "
        f"events {summary['event_count']}  self-time coverage "
        + (f"{coverage * 100.0:.1f}%" if coverage is not None else "-"))
    lines.append("")

    lines.append("Per-phase breakdown (self time):")
    rows = []
    for name, entry in summary["phases"].items():
        share = (entry["self"] / wall * 100.0) if wall > 0 else 0.0
        rows.append([name, str(int(entry["count"])),
                     _fmt_seconds(entry["total"]),
                     _fmt_seconds(entry["self"]),
                     f"{share:.1f}%"])
    lines.extend(_table(["phase", "count", "total", "self", "share"],
                        rows))
    lines.append("")

    units = summary["units"]
    status = "exactly once" if units["exactly_once"] else "MISMATCH"
    expected = units["expected"] if units["expected"] is not None else "?"
    lines.append(
        f"Units: {units['executed']} executed, {units['distinct']} "
        f"distinct, {expected} expected -> {status}")
    if units["duplicates"]:
        lines.append(f"  duplicated: {units['duplicates']}")
    lines.append("")

    if summary["workers"]:
        lines.append("Remote workers (busy time; top = straggler):")
        rows = [[name, _fmt_seconds(entry["busy"]),
                 str(int(entry["chunks"])), str(int(entry["units"]))]
                for name, entry in summary["workers"].items()]
        lines.extend(_table(["worker", "busy", "chunks", "units"], rows))
        lines.append("")

    if summary["events"]:
        lines.append("Events: " + ", ".join(
            f"{name}={count}"
            for name, count in summary["events"].items()))
        lines.append("")

    if summary["slowest_units"]:
        lines.append("Slowest units:")
        rows = [[str(row["unit"]), str(row["proc"]),
                 _fmt_seconds(row["seconds"]),
                 str(row["algorithm"] or "-"),
                 str(row["fraction"] if row["fraction"] is not None
                     else "-"),
                 str(row["label"] or "-")]
                for row in summary["slowest_units"]]
        lines.extend(_table(
            ["unit", "proc", "seconds", "algorithm", "fraction",
             "label"], rows))
    return "\n".join(lines).rstrip() + "\n"


def one_line(summary: dict) -> str:
    """The single-line digest ``--trace`` prints after a run."""
    units = summary["units"]
    coverage = summary["coverage"]
    parts = [
        f"trace: wall {_fmt_seconds(summary['wall_seconds'])}",
        f"{units['executed']} units",
        "exactly-once" if units["exactly_once"] else "UNIT MISMATCH",
        ("coverage " + f"{coverage * 100.0:.0f}%"
         if coverage is not None else "coverage -"),
    ]
    if summary["phases"]:
        hottest = next(iter(summary["phases"]))
        parts.append(f"hottest {hottest}")
    if summary["workers"]:
        parts.append(f"{len(summary['workers'])} workers")
    return "  ".join(parts)
