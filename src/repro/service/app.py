"""The HTTP estimation service: stdlib threads, one shared engine.

No framework, no new dependencies: a
:class:`http.server.ThreadingHTTPServer` whose handler routes a small
fixed endpoint set into one :class:`EstimationService` — a warm
:class:`~repro.engine.engine.EstimationEngine` (optionally
store-backed and traced) fronted by the
:class:`~repro.service.batching.MicroBatcher`.

Request flow for ``/estimate`` and ``/estimate-batch``:

1. parse and validate the CLI-shaped JSON spec
   (:mod:`repro.service.schemas`), resolving workloads through the
   shared :class:`~repro.service.schemas.WorkloadCache` so identical
   specs from different clients are one source object;
2. normalize seeds: every request is expanded with
   :func:`~repro.engine.plan.expand_trials` under the *spec's* seed,
   so results are bit-identical to a CLI run at that seed no matter
   what master seed the long-lived engine was built with — and
   cross-client duplicates carry equal node keys, which is what lets
   the engine dedupe them;
3. no deadline → ride the micro-batcher's shared batch; with a
   deadline → a direct bounded ``execute()`` on a non-blocking slot
   (503 when saturated), returning per-request typed nulls plus the
   engine's per-unit outcome accounting.

``/advise`` runs the lazy what-if advisor; with ``"stream": true`` the
response is chunked NDJSON — one event per greedy round as it
completes, then the final result record.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Sequence
from urllib.parse import urlparse

from repro._version import __version__
from repro.errors import ReproError
from repro.engine.engine import EstimationEngine
from repro.engine.executors import make_executor
from repro.engine.plan import expand_trials
from repro.engine.requests import (EstimationRequest,
                                   PartialBatchResult, RequestResult)
from repro.obs import (MetricsRegistry, absorb_engine_stats,
                       absorb_store_counters)
from repro.service.batching import MicroBatcher
from repro.service.errors import (BadRequest, DeadlineExceeded,
                                  PayloadTooLarge, ServiceError)
from repro.service.schemas import (WorkloadCache, build_advise_query,
                                   build_advise_table, build_batch,
                                   build_batch_workload, candidate_entry,
                                   parse_spec_text, request_result_entry)


@dataclass
class ServiceConfig:
    """Everything ``repro serve`` can turn into flags."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port (reported by the ready callback).
    port: int = 0
    #: The engine's master seed. Request randomness never depends on it
    #: (specs are seed-normalized), so it only namespaces the engine.
    seed: int = 0
    #: Micro-batch collection window in seconds.
    window: float = 0.02
    #: Persistent sample/estimate store directory (optional).
    store_dir: str | None = None
    #: Engine executor name (serial/thread/process) and worker count.
    executor: str | None = None
    workers: int | None = None
    #: Guardrails.
    max_body_bytes: int = 1 << 20
    max_batch_requests: int = 256
    max_pending: int = 64
    max_concurrent: int = 4
    #: JSONL trace path (optional); the tracer rides every batch.
    trace_path: str | None = None
    #: Log requests to stderr (quiet by default: tests boot in-process).
    verbose: bool = False


class EstimationService:
    """Shared engine + batcher + caches behind the HTTP handler."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        tracer = None
        if config.trace_path is not None:
            from repro.obs import Tracer

            tracer = Tracer.to_path(config.trace_path)
        executor = None
        if config.executor is not None:
            if config.workers is not None:
                executor = make_executor(config.executor,
                                         max_workers=config.workers)
            else:
                executor = make_executor(config.executor)
        self.engine = EstimationEngine(
            seed=config.seed, executor=executor,
            store=config.store_dir, tracer=tracer)
        self.tracer = tracer
        self.metrics: MetricsRegistry = (
            tracer.metrics if tracer is not None else MetricsRegistry())
        self.batcher = MicroBatcher(
            self.engine, window=config.window,
            max_pending=config.max_pending,
            max_concurrent=config.max_concurrent)
        self.workloads = WorkloadCache(builder=build_batch_workload)
        self.advise_tables = WorkloadCache(builder=build_advise_table)
        self.started = time.monotonic()
        self._lock = threading.Lock()
        self.counters: dict[str, int] = {
            "http_requests": 0,
            "http_errors": 0,
            "estimate_requests": 0,
            "batch_requests": 0,
            "advise_requests": 0,
            "deadline_requests": 0,
        }

    def count(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + amount

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    def _expand(self, requests: Sequence[EstimationRequest], seed: int,
                ) -> list[tuple[EstimationRequest, ...]]:
        """Seed-normalize: per-trial explicit-seed expansion per request.

        After this, the shared engine's master seed is irrelevant to
        the results, and two clients' identical specs produce requests
        with equal node keys — the precondition for cross-client
        sample sharing inside one coalesced batch.
        """
        return [expand_trials(request, seed) for request in requests]

    def _reassemble(self, requests: Sequence[EstimationRequest],
                    expanded: Sequence[tuple[EstimationRequest, ...]],
                    flat_results: Sequence[RequestResult | None],
                    ) -> list[dict[str, Any]]:
        """Fold per-trial results back into per-spec-request entries."""
        entries = []
        cursor = 0
        for request, trials in zip(requests, expanded):
            chunk = flat_results[cursor:cursor + len(trials)]
            cursor += len(trials)
            if any(result is None for result in chunk):
                entries.append(request_result_entry(request, None))
                continue
            estimates = tuple(
                estimate for result in chunk
                for estimate in result.estimates)  # type: ignore[union-attr]
            entries.append(request_result_entry(
                request, RequestResult(request=request,
                                       estimates=estimates)))
        return entries

    def run_batch(self, spec: dict) -> dict[str, Any]:
        """One ``/estimate-batch`` (or ``/estimate``) evaluation."""
        requests, seed = build_batch(
            spec, workload_builder=self.workloads)
        if len(requests) > self.config.max_batch_requests:
            raise PayloadTooLarge(
                f"batch has {len(requests)} requests; this service "
                f"accepts at most {self.config.max_batch_requests} "
                f"per submission")
        expanded = self._expand(requests, seed)
        flat = [trial for trials in expanded for trial in trials]
        deadline = spec.get("deadline")
        payload: dict[str, Any] = {
            "seed": seed,
            "requests": len(requests),
            "trial_units": len(flat),
        }
        if deadline is not None:
            self.count("deadline_requests")
            with self.batcher.try_execute_slot():
                batch = self.engine.execute(flat,
                                            deadline=float(deadline))
            payload["results"] = self._reassemble(
                requests, expanded, batch.results)
            payload["stats"] = batch.stats
            payload["deadline"] = float(deadline)
            if isinstance(batch, PartialBatchResult):
                payload["complete"] = batch.complete
                payload["outcome_counts"] = batch.counts()
            return payload
        submission = self.batcher.submit(flat)
        assert submission.results is not None
        payload["results"] = self._reassemble(
            requests, expanded, submission.results)
        payload["stats"] = submission.stats
        payload["batching"] = {
            "coalesced_with": submission.coalesced_with,
            "window_seconds": self.batcher.window,
        }
        return payload

    def run_estimate(self, spec: dict) -> dict[str, Any]:
        """Single-request convenience: ``request`` instead of a list."""
        item = spec.get("request")
        if not isinstance(item, dict):
            raise BadRequest(
                "estimate spec needs a 'request' object (use "
                "/estimate-batch for request lists)")
        batch_spec = dict(spec)
        batch_spec.pop("request")
        batch_spec["requests"] = [item]
        payload = self.run_batch(batch_spec)
        entry = payload["results"][0]
        if entry.get("deadline_exceeded"):
            raise DeadlineExceeded(
                "the request could not be evaluated before its "
                "deadline expired; retry with a larger budget")
        payload["result"] = entry
        del payload["results"]
        return payload

    # ------------------------------------------------------------------
    # Advising
    # ------------------------------------------------------------------
    def run_advise(self, spec: dict,
                   on_round: "Callable[[dict], None] | None" = None,
                   ) -> dict[str, Any]:
        """One what-if advisor run over an advise spec.

        A fresh advisor (and engine) per call, seeded by the spec so
        selections are bit-identical to ``repro advise --what-if`` —
        but sharing the service's disk store, so repeated advise runs
        over the same tables warm-start across clients.
        """
        from repro.advisor import WhatIfAdvisor

        table_specs = spec.get("tables")
        query_specs = spec.get("queries")
        if not isinstance(table_specs, dict) or not table_specs:
            raise BadRequest("advise spec needs a non-empty 'tables' "
                             "object")
        if not isinstance(query_specs, list) or not query_specs:
            raise BadRequest("advise spec needs a non-empty 'queries' "
                             "list")
        bound = spec.get("storage_bound_bytes")
        if bound is None:
            raise BadRequest("advise spec needs 'storage_bound_bytes'")
        tables = {name: self.advise_tables(name, tspec)
                  for name, tspec in table_specs.items()}
        queries = [build_advise_query(position, item, tables)
                   for position, item in enumerate(query_specs)]
        seed = int(spec.get("seed", 0))
        advisor = WhatIfAdvisor(
            tables, queries,
            algorithms=spec.get("algorithms", ["page"]),
            fraction=float(spec.get("fraction", 0.01)),
            max_trials=int(spec.get("trials", 1)),
            seed=seed,
            store=self.engine.store,
            prune=bool(spec.get("prune", True)),
            adaptive=bool(spec.get("adaptive", True)))
        with self.batcher.try_execute_slot():
            result = advisor.advise(float(bound), on_round=on_round)
        assert result.report is not None
        return {
            "mode": "what-if",
            "seed": seed,
            "storage_bound_bytes": float(bound),
            "cost_before": result.cost_before,
            "cost_after": result.cost_after,
            "improvement": result.improvement,
            "bytes_used": result.bytes_used,
            "chosen": [candidate_entry(c) for c in result.chosen],
            "steps": list(result.steps),
            "what_if": result.report.as_dict(),
        }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def health(self) -> dict[str, Any]:
        return {
            "status": "ok",
            "version": __version__,
            "uptime_seconds": round(time.monotonic() - self.started, 3),
            "executor": self.engine.executor.name,
            "store": (str(self.engine.store.root)
                      if self.engine.store is not None else None),
        }

    def stats(self) -> dict[str, Any]:
        """The ``/stats`` payload: every counter surface in one place."""
        store = self.engine.store
        absorb_engine_stats(self.metrics, self.engine.stats)
        if store is not None:
            absorb_store_counters(self.metrics, store.counters)
        with self._lock:
            service = dict(self.counters)
        return {
            "uptime_seconds": round(time.monotonic() - self.started, 3),
            "engine": self.engine.stats.as_dict(),
            "store": (dict(store.counters) if store is not None
                      else None),
            "batcher": self.batcher.snapshot(),
            "workload_cache": self.workloads.snapshot(),
            "service": service,
            "metrics": self.metrics.snapshot(),
        }

    def cache_info(self) -> dict[str, Any]:
        store = self.engine.store
        return {
            "memory_samples": len(self.engine.cache),
            "workload_cache": self.workloads.snapshot(),
            "store": store.stats() if store is not None else None,
        }

    def cache_action(self, spec: dict) -> dict[str, Any]:
        store = self.engine.store
        action = spec.get("action")
        if action == "prune":
            if store is None:
                raise BadRequest("this service has no disk store to "
                                 "prune")
            max_bytes = spec.get("max_bytes")
            if not isinstance(max_bytes, int) or max_bytes < 0:
                raise BadRequest("cache prune needs an integer "
                                 "'max_bytes'")
            return {"action": "prune", **store.prune(max_bytes)}
        if action == "clear":
            if store is None:
                raise BadRequest("this service has no disk store to "
                                 "clear")
            return {"action": "clear", "removed": store.clear()}
        raise BadRequest(
            f"unknown cache action {action!r}; known: clear, prune")

    def close(self) -> None:
        if self.tracer is not None:
            self.tracer.close()


# ----------------------------------------------------------------------
# HTTP plumbing
# ----------------------------------------------------------------------
class _ServiceServer(ThreadingHTTPServer):
    """One handler thread per connection over a shared service."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int],
                 service: EstimationService) -> None:
        super().__init__(address, _Handler)
        self.service = service


class _Handler(BaseHTTPRequestHandler):
    # Keep-alive + chunked responses both require 1.1.
    protocol_version = "HTTP/1.1"
    server: _ServiceServer

    @property
    def service(self) -> EstimationService:
        return self.server.service

    # -- I/O helpers ---------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:
        if self.service.config.verbose:  # pragma: no cover - debug aid
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, exc: Exception) -> None:
        self.service.count("http_errors")
        if isinstance(exc, ServiceError):
            status, code = exc.status, exc.code
        elif isinstance(exc, ReproError):
            status, code = 400, "bad_request"
        else:  # pragma: no cover - defensive: bugs become typed 500s
            status, code = 500, "internal_error"
        self._send_json(status,
                        {"error": {"code": code, "message": str(exc)}})

    def _read_spec(self) -> dict:
        length_header = self.headers.get("Content-Length")
        if length_header is None:
            raise BadRequest("POST requires a Content-Length header "
                             "and a JSON body")
        try:
            length = int(length_header)
        except ValueError:
            raise BadRequest(f"malformed Content-Length "
                             f"{length_header!r}") from None
        if length > self.service.config.max_body_bytes:
            # The body is never read, so this connection cannot be
            # reused for a follow-up request.
            self.close_connection = True
            raise PayloadTooLarge(
                f"request body of {length} bytes exceeds the "
                f"{self.service.config.max_body_bytes}-byte limit")
        text = self.rfile.read(length).decode("utf-8", errors="replace")
        return parse_spec_text(text, what="request body")

    # -- chunked streaming ---------------------------------------------
    def _start_stream(self) -> None:
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()

    def _stream_record(self, record: dict) -> None:
        data = (json.dumps(record) + "\n").encode("utf-8")
        self.wfile.write(f"{len(data):X}\r\n".encode("ascii"))
        self.wfile.write(data)
        self.wfile.write(b"\r\n")
        self.wfile.flush()

    def _end_stream(self) -> None:
        self.wfile.write(b"0\r\n\r\n")
        self.wfile.flush()

    # -- routing -------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        self.service.count("http_requests")
        path = urlparse(self.path).path.rstrip("/") or "/"
        try:
            if path == "/health":
                self._send_json(200, self.service.health())
            elif path == "/stats":
                self._send_json(200, self.service.stats())
            elif path == "/cache":
                self._send_json(200, self.service.cache_info())
            else:
                self._send_json(404, {"error": {
                    "code": "not_found",
                    "message": f"no such endpoint: GET {path}"}})
        except Exception as exc:
            self._send_error(exc)

    def do_POST(self) -> None:  # noqa: N802 - http.server contract
        self.service.count("http_requests")
        parsed = urlparse(self.path)
        path = parsed.path.rstrip("/") or "/"
        try:
            spec = self._read_spec()
            if path == "/estimate":
                self.service.count("estimate_requests")
                self._send_json(200, self.service.run_estimate(spec))
            elif path == "/estimate-batch":
                self.service.count("batch_requests")
                self._send_json(200, self.service.run_batch(spec))
            elif path == "/advise":
                self.service.count("advise_requests")
                stream = bool(spec.get("stream")) \
                    or "stream=1" in (parsed.query or "")
                if stream:
                    self._stream_advise(spec)
                else:
                    self._send_json(200, self.service.run_advise(spec))
            elif path == "/cache":
                self._send_json(200, self.service.cache_action(spec))
            else:
                self._send_json(404, {"error": {
                    "code": "not_found",
                    "message": f"no such endpoint: POST {path}"}})
        except Exception as exc:
            self._send_error(exc)

    def _stream_advise(self, spec: dict) -> None:
        """Chunked NDJSON: round events as they happen, then the result.

        Failures after the 200 status line cannot change it, so they
        stream as a terminal ``{"type": "error"}`` record — a client
        reading NDJSON always sees a typed ending, never a truncated
        silence.
        """
        self._start_stream()
        try:
            result = self.service.run_advise(
                spec, on_round=lambda event: self._stream_record(
                    {"type": "round", **event}))
            self._stream_record({"type": "result", **result})
        except Exception as exc:
            self.service.count("http_errors")
            code = (exc.code if isinstance(exc, ServiceError)
                    else "bad_request" if isinstance(exc, ReproError)
                    else "internal_error")
            self._stream_record({"type": "error", "code": code,
                                 "message": str(exc)})
        self._end_stream()


def make_server(config: ServiceConfig,
                ) -> tuple[_ServiceServer, EstimationService]:
    """Bind (but don't run) a service — the in-process test entry."""
    service = EstimationService(config)
    server = _ServiceServer((config.host, config.port), service)
    return server, service


def serve(config: ServiceConfig,
          ready: "Callable[[tuple[str, int]], None] | None" = None,
          ) -> None:
    """Run the service until interrupted (the ``repro serve`` loop)."""
    server, service = make_server(config)
    host, port = server.server_address[0], server.server_address[1]
    if ready is not None:
        ready((str(host), int(port)))
    try:
        server.serve_forever()
    finally:
        server.server_close()
        service.close()
