"""repro.service — estimation-as-a-service over one shared engine.

A long-lived, stdlib-only HTTP front end (ROADMAP item 1): many
concurrent clients hit one warm :class:`~repro.engine.engine.
EstimationEngine`, one :class:`~repro.store.store.SampleStore`, one
sample cache. The interesting mechanism is *multi-tenant
micro-batching* (:mod:`repro.service.batching`): a short collection
window coalesces concurrent clients' requests into a single
shared-sample ``execute()`` plan — the engine's dedup then
materializes each distinct (source, sampler, fraction, seed) sample
once across clients — and demuxes per-client results back out.

Endpoints (:mod:`repro.service.app`):

* ``POST /estimate`` — one request, coalesced through the batcher;
* ``POST /estimate-batch`` — a CLI-shaped batch spec, bit-identical
  results to ``repro estimate-batch`` at the same spec seed;
* ``POST /advise`` — what-if advisor runs, optionally streamed as
  chunked per-round NDJSON events;
* ``GET /health``, ``GET /stats``, ``GET/POST /cache`` — liveness,
  engine/store/batcher counters, and store maintenance.

Guardrails: per-request deadlines (typed 504), request-size limits
(413), a bounded submission queue (429), and bounded concurrent
execute slots (503) — degradation is always a typed error, never a
wrong number.
"""

from repro.service.app import (EstimationService, ServiceConfig,
                               make_server, serve)
from repro.service.batching import MicroBatcher
from repro.service.errors import (BadRequest, DeadlineExceeded,
                                  PayloadTooLarge, ServiceError,
                                  ServiceOverloaded, TooManyRequests)
from repro.service.schemas import WorkloadCache

__all__ = [
    "EstimationService", "ServiceConfig", "make_server", "serve",
    "MicroBatcher", "WorkloadCache",
    "ServiceError", "BadRequest", "PayloadTooLarge", "TooManyRequests",
    "ServiceOverloaded", "DeadlineExceeded",
]
