"""JSON spec parsing and result shaping, shared by the CLI and service.

The ``estimate-batch`` and ``advise`` spec formats predate the service
(they are the CLI's input language), so the builders live here and the
CLI imports them back — one schema, two transports. The service-only
addition is :class:`WorkloadCache`: engine source-cache keys are bound
to the *object identity* of a built table/histogram, so two clients
POSTing byte-identical workload specs would silently miss each other's
memory-tier samples if each request built fresh objects. The cache
canonicalizes a (name, spec) pair to one shared built workload,
which is what makes cross-client sample sharing real.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from typing import Any, Callable

from repro.errors import ReproError
from repro.compression.registry import get_algorithm
from repro.storage.index import IndexKind
from repro.engine.requests import EstimationRequest, RequestResult
from repro.workloads.generators import (histogram_to_table,
                                        make_histogram,
                                        make_multicolumn_table)
from repro.workloads.scenarios import get_scenario
from repro.advisor import Query


def parse_spec_text(text: str, what: str = "batch spec") -> dict:
    """Decode one JSON spec body; must be a JSON object."""
    try:
        spec = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ReproError(f"{what} is not valid JSON: {exc}")
    if not isinstance(spec, dict):
        raise ReproError(f"{what} must be a JSON object")
    return spec


# ----------------------------------------------------------------------
# estimate-batch specs
# ----------------------------------------------------------------------
def build_batch_workload(name: str, spec: Any) -> dict:
    """One named workload: a histogram, optionally materialised."""
    if not isinstance(spec, dict):
        raise ReproError(f"workload {name!r} must be a JSON object")
    seed = int(spec.get("seed", 0))
    if "scenario" in spec:
        histogram = get_scenario(spec["scenario"]).build(
            spec.get("rows"), seed=seed)
    elif all(field in spec for field in ("n", "d", "k")):
        histogram = make_histogram(
            int(spec["n"]), int(spec["d"]), int(spec["k"]),
            distribution=spec.get("distribution", "zipf"), seed=seed)
    else:
        raise ReproError(
            f"workload {name!r} needs either 'scenario' or all of "
            f"'n'/'d'/'k'")
    if spec.get("storage"):
        table = histogram_to_table(
            histogram, name=name, order=spec.get("order", "shuffled"),
            page_size=int(spec.get("page_size", 8192)), seed=seed)
        return {"table": table}
    return {"histogram": histogram,
            "page_size": int(spec.get("page_size", 8192))}


BATCH_KINDS = {"clustered": IndexKind.CLUSTERED,
               "nonclustered": IndexKind.NONCLUSTERED}


def build_batch_request(position: int, item: Any,
                        workloads: dict[str, dict]) -> EstimationRequest:
    if not isinstance(item, dict):
        raise ReproError(f"request #{position} must be a JSON object")
    workload_name = item.get("workload")
    if workload_name not in workloads:
        raise ReproError(
            f"request #{position} references unknown workload "
            f"{workload_name!r}; defined: {sorted(workloads)}")
    source = workloads[workload_name]
    kwargs: dict[str, Any] = {
        "algorithm": get_algorithm(
            item.get("algorithm", "null_suppression")),
        "fraction": float(item.get("fraction", 0.01)),
        "trials": int(item.get("trials", 1)),
        "label": workload_name,
    }
    if "seed" in item:
        kwargs["seed"] = int(item["seed"])
    if "table" in source:
        table = source["table"]
        kind = str(item.get("kind", "clustered"))
        if kind not in BATCH_KINDS:
            raise ReproError(
                f"request #{position} has unknown index kind {kind!r}; "
                f"known: {sorted(BATCH_KINDS)}")
        return EstimationRequest(
            table=table, columns=("a",), kind=BATCH_KINDS[kind],
            page_size=int(item.get("page_size", table.page_size)),
            **kwargs)
    return EstimationRequest(
        histogram=source["histogram"],
        page_size=int(item.get("page_size", source["page_size"])),
        **kwargs)


def build_batch(spec: dict,
                workload_builder: "Callable[[str, Any], dict] | None"
                = None) -> tuple[list[EstimationRequest], int]:
    """Validate one batch spec into ``(requests, seed)``.

    ``workload_builder`` lets the service route workload construction
    through its :class:`WorkloadCache`; the CLI passes nothing and
    builds fresh objects per invocation.
    """
    # An explicit None test: WorkloadCache defines __len__, so an
    # *empty* cache is falsy and ``or`` would silently bypass it.
    builder = (build_batch_workload if workload_builder is None
               else workload_builder)
    workload_specs = spec.get("workloads")
    request_specs = spec.get("requests")
    if not isinstance(workload_specs, dict) or not workload_specs:
        raise ReproError("batch spec needs a non-empty 'workloads' "
                         "object")
    if not isinstance(request_specs, list) or not request_specs:
        raise ReproError("batch spec needs a non-empty 'requests' list")
    workloads = {name: builder(name, wspec)
                 for name, wspec in workload_specs.items()}
    requests = [build_batch_request(position, item, workloads)
                for position, item in enumerate(request_specs)]
    return requests, int(spec.get("seed", 0))


def request_result_entry(request: EstimationRequest,
                         result: RequestResult | None) -> dict[str, Any]:
    """One output entry per spec request — the CLI's exact JSON shape.

    The service reuses this verbatim so its ``results`` arrays are
    bit-identical to ``repro estimate-batch`` output at the same spec
    seed (the acceptance criterion the service smoke asserts).
    """
    entry: dict[str, Any] = {
        "workload": request.label,
        "algorithm": request.algorithm.name,
        "fraction": request.fraction,
        "trials": request.trials,
    }
    if result is None:
        # Deadline-bounded runs may leave requests unevaluated; a
        # typed null (never a partial trial set) keeps positions
        # aligned with the spec's request list.
        entry.update({"path": None, "estimates": [], "mean": None,
                      "std": None, "sample_rows": [],
                      "deadline_exceeded": True})
        return entry
    values = result.values
    entry.update({
        "path": result.estimates[0].path,
        "estimates": [float(v) for v in values],
        "mean": float(values.mean()),
        "std": (float(values.std(ddof=1)) if len(values) > 1
                else None),
        "sample_rows": [e.sample_rows for e in result.estimates],
    })
    return entry


# ----------------------------------------------------------------------
# advise specs
# ----------------------------------------------------------------------
def build_advise_table(name: str, spec: Any):
    """One named table for the advisor: multi-column or workload-based."""
    if not isinstance(spec, dict):
        raise ReproError(f"table {name!r} must be a JSON object")
    if "columns" in spec:
        if "n" not in spec:
            raise ReproError(
                f"table {name!r} with 'columns' needs a row count 'n'")
        try:
            specs = [(str(cname), int(k), int(d))
                     for cname, k, d in spec["columns"]]
        except (TypeError, ValueError):
            raise ReproError(
                f"table {name!r} 'columns' must be [name, k, d] "
                f"triples") from None
        return make_multicolumn_table(
            name, int(spec["n"]), specs,
            page_size=int(spec.get("page_size", 8192)),
            seed=int(spec.get("seed", 0)))
    workload = build_batch_workload(name, {**spec, "storage": True})
    return workload["table"]


def build_advise_query(position: int, item: Any,
                       tables: dict[str, Any]) -> Query:
    if not isinstance(item, dict):
        raise ReproError(f"query #{position} must be a JSON object")
    table = item.get("table")
    if table not in tables:
        raise ReproError(
            f"query #{position} references unknown table {table!r}; "
            f"defined: {sorted(tables)}")
    columns = item.get("columns")
    if not isinstance(columns, list) or not columns:
        raise ReproError(
            f"query #{position} needs a non-empty 'columns' list")
    return Query(
        name=str(item.get("name", f"q{position}")), table=table,
        columns=tuple(str(column) for column in columns),
        selectivity=float(item.get("selectivity", 1.0)),
        weight=float(item.get("weight", 1.0)))


def candidate_entry(candidate) -> dict[str, Any]:
    return {
        "name": candidate.name,
        "table": candidate.table,
        "key_columns": list(candidate.key_columns),
        "compressed": candidate.compressed,
        "algorithm": candidate.algorithm,
        "size_bytes": candidate.size_bytes,
        "estimated_cf": candidate.estimated_cf,
    }


# ----------------------------------------------------------------------
# Cross-client workload identity
# ----------------------------------------------------------------------
def canonical_spec_key(name: str, spec: Any) -> str:
    """Stable content key for one named workload/table spec."""
    return json.dumps([name, spec], sort_keys=True,
                      separators=(",", ":"), default=str)


class WorkloadCache:
    """Canonicalize built workloads across requests and clients.

    Engine sample-cache keys embed ``id(source)``-bound cache tokens,
    so byte-identical specs only share memory-tier samples when they
    resolve to the *same* built object. This LRU maps the canonical
    JSON of a (name, spec) pair to one built workload (or advisor
    table), under a lock, so every client's ``customer_names`` is one
    histogram and the engine's dedup can do its job across clients.
    Building happens outside the lock (generation can take seconds);
    two racing builders of one key keep the first-published object.
    """

    def __init__(self, max_entries: int = 64,
                 builder: "Callable[[str, Any], Any] | None" = None,
                 ) -> None:
        self._builder = builder or build_batch_workload
        self._max_entries = int(max_entries)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __call__(self, name: str, spec: Any) -> Any:
        key = canonical_spec_key(name, spec)
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key]
        built = self._builder(name, spec)
        with self._lock:
            if key in self._entries:  # lost the build race: share theirs
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key]
            self.misses += 1
            self._entries[key] = built
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)
            return built

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return {"entries": len(self._entries), "hits": self.hits,
                    "misses": self.misses}
