"""Multi-tenant micro-batching: coalesce concurrent clients' requests.

The engine already does the hard part — ``execute()`` dedupes a batch
into a shared-sample plan, and content-keyed seeding makes every
request's result independent of what else rode in the batch. What a
service needs on top is small: hold arriving submissions for a short
collection window, run them as *one* engine batch, and hand each
client back exactly its own slice. Cross-client duplicate specs then
collapse inside the engine (one sample materialization, counted by
``sample_cache_hits`` / ``samples_materialized``), which is the whole
point of fronting one warm engine with many clients.

Protocol (leader/follower):

* a submitter finding no collection round open becomes the **leader**:
  it opens the round, sleeps the window, then atomically drains the
  queue (closing the round under the same lock, so late arrivals open
  a fresh one), executes the coalesced batch, and publishes each
  submission's result slice;
* every other submitter is a **follower**: it appends to the open
  round's queue and blocks on its own event until the leader (of
  whatever round it landed in) publishes.

Determinism: results are bit-identical to serial one-at-a-time
submission because batch composition never influences a request's
seeds (locked by the engine determinism suite, re-asserted
service-shaped in ``tests/test_service.py``).

Degradation is typed, never a wrong number: a full queue raises
:class:`~repro.service.errors.TooManyRequests` (429) before enqueueing,
and execute slots are bounded by a semaphore — leaders block on it
(their clients are already waiting), while direct/unbatched paths use
:meth:`try_execute_slot` and turn contention into a 503.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Sequence

from repro.service.errors import ServiceOverloaded, TooManyRequests

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.engine import EstimationEngine
    from repro.engine.requests import (EstimationRequest, RequestResult)


@dataclass
class _Submission:
    """One client's requests plus the rendezvous for its results."""

    requests: "tuple[EstimationRequest, ...]"
    # repro-lint: ignore[RPL003] -- service-side rendezvous state: a
    # submission lives only in the serving process for the span of one
    # collection round, passed between handler threads and the round
    # leader, never pickled or shipped (the engine's executors receive
    # PlanUnit lists, not submissions).
    done: threading.Event = field(default_factory=threading.Event)
    results: "tuple[RequestResult | None, ...] | None" = None
    stats: "dict | None" = None
    coalesced_with: int = 0
    error: BaseException | None = None


class MicroBatcher:
    """Collection-window request coalescing over one shared engine."""

    def __init__(self, engine: "EstimationEngine",
                 window: float = 0.02,
                 max_pending: int = 256,
                 max_concurrent: int = 4) -> None:
        if window < 0:
            raise ValueError(f"window must be >= 0, got {window}")
        self.engine = engine
        self.window = float(window)
        self.max_pending = int(max_pending)
        self._lock = threading.Lock()
        self._queue: list[_Submission] = []
        self._collecting = False
        self._slots = threading.BoundedSemaphore(int(max_concurrent))
        self.counters = {
            "submissions": 0,
            "submitted_requests": 0,
            "rounds": 0,
            "coalesced_rounds": 0,
            "coalesced_submissions": 0,
            "largest_round": 0,
            "rejected_queue_full": 0,
            "rejected_no_slot": 0,
        }

    # ------------------------------------------------------------------
    # Execute-slot guardrail (shared with the service's direct paths)
    # ------------------------------------------------------------------
    @contextmanager
    def execute_slot(self) -> Iterator[None]:
        """Blocking slot acquisition (for leaders: clients already wait)."""
        self._slots.acquire()
        try:
            yield
        finally:
            self._slots.release()

    @contextmanager
    def try_execute_slot(self) -> Iterator[None]:
        """Non-blocking slot acquisition for direct (unbatched) runs."""
        if not self._slots.acquire(blocking=False):
            with self._lock:
                self.counters["rejected_no_slot"] += 1
            raise ServiceOverloaded(
                "all execute slots are busy; retry shortly or submit "
                "without a deadline to ride the shared batch")
        try:
            yield
        finally:
            self._slots.release()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, requests: "Sequence[EstimationRequest]",
               ) -> _Submission:
        """Run ``requests`` through a coalesced batch; block for results.

        Returns the completed submission: ``results`` aligned with
        ``requests``, ``stats`` the shared batch's counter snapshot,
        and ``coalesced_with`` the number of *other* submissions that
        shared the engine batch.
        """
        submission = _Submission(requests=tuple(requests))
        with self._lock:
            if len(self._queue) >= self.max_pending:
                self.counters["rejected_queue_full"] += 1
                raise TooManyRequests(
                    f"the batching queue is full "
                    f"({self.max_pending} pending submissions); "
                    f"retry with backoff")
            self.counters["submissions"] += 1
            self.counters["submitted_requests"] += len(submission.requests)
            self._queue.append(submission)
            leader = not self._collecting
            if leader:
                self._collecting = True
        if leader:
            if self.window > 0:
                time.sleep(self.window)
            self._run_round()
        submission.done.wait()
        if submission.error is not None:
            raise submission.error
        return submission

    def _run_round(self) -> None:
        """Drain the open round atomically, execute, demux, publish."""
        with self._lock:
            round_submissions = self._queue
            self._queue = []
            # Closing the round under the same lock as the drain means
            # a submitter can never land in a drained queue: it either
            # made this round or opens the next one as its leader.
            self._collecting = False
            self.counters["rounds"] += 1
            if len(round_submissions) > 1:
                self.counters["coalesced_rounds"] += 1
                self.counters["coalesced_submissions"] += \
                    len(round_submissions)
            self.counters["largest_round"] = max(
                self.counters["largest_round"], len(round_submissions))
        flat: list = []
        for submission in round_submissions:
            flat.extend(submission.requests)
        try:
            with self.execute_slot():
                batch = self.engine.execute(flat)
        except BaseException as exc:
            for submission in round_submissions:
                submission.error = exc
                submission.done.set()
            return
        cursor = 0
        for submission in round_submissions:
            count = len(submission.requests)
            submission.results = tuple(
                batch.results[cursor:cursor + count])
            submission.stats = batch.stats
            submission.coalesced_with = len(round_submissions) - 1
            cursor += count
            submission.done.set()

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            counters = dict(self.counters)
            counters["pending"] = len(self._queue)
        return counters
