"""Typed service errors with HTTP status codes.

Every service-level failure is a :class:`ServiceError` carrying the
HTTP status and a stable machine-readable ``code``, so the handler
layer renders degradation uniformly (a JSON error envelope, never a
stack trace) and clients can branch on ``code`` without parsing
messages. All of them derive from :class:`~repro.errors.ReproError`,
keeping the library's one-base-class catch contract.
"""

from __future__ import annotations

from repro.errors import ReproError


class ServiceError(ReproError):
    """Base class for HTTP-facing service failures."""

    #: HTTP status the handler responds with.
    status: int = 500
    #: Stable machine-readable identifier for the error envelope.
    code: str = "internal_error"


class BadRequest(ServiceError):
    """The request body is malformed or fails spec validation."""

    status = 400
    code = "bad_request"


class PayloadTooLarge(ServiceError):
    """The body or batch exceeds the configured size limits."""

    status = 413
    code = "payload_too_large"


class TooManyRequests(ServiceError):
    """The micro-batcher's submission queue is full (back off)."""

    status = 429
    code = "too_many_requests"


class ServiceOverloaded(ServiceError):
    """No execute slot is free for a direct (unbatched) run."""

    status = 503
    code = "service_overloaded"


class DeadlineExceeded(ServiceError):
    """The request's deadline expired before it could be evaluated."""

    status = 504
    code = "deadline_exceeded"
