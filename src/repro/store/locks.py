"""Inter-process file locking for the persistent store.

POSIX ``flock`` advisory locks wrapped in a context manager. Two
processes materializing the same sample key serialize on a per-key lock
file, so exactly one draws the sample (the other finds it on disk when
the lock releases); structural mutations (eviction, prune, clear) hold
the store-wide lock so a concurrent reader never observes a half-pruned
directory listing.

Locks are advisory and scoped to the store directory, so they compose
with the engine's in-process ``SampleCache`` single-flight: the memory
cache dedupes threads, the file lock dedupes processes. On platforms
without ``fcntl`` the lock degrades to a no-op — writes stay safe
(atomic tmp+rename) but cross-process single-materialization is no
longer guaranteed.
"""

from __future__ import annotations

import os
import pathlib

try:  # pragma: no cover - platform-dependent import
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

#: Whether real inter-process locking is available on this platform.
HAVE_FLOCK = fcntl is not None


class FileLock:
    """An exclusive advisory lock on one path, used as a context manager.

    Acquiring blocks until the current holder releases; the lock file
    itself is left in place (removing it would race new acquirers on
    POSIX flock semantics).
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = pathlib.Path(path)
        self._handle: int | None = None

    def acquire(self) -> None:
        if self._handle is not None:
            raise RuntimeError(f"lock {self.path} is already held")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        handle = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        if fcntl is not None:
            try:
                fcntl.flock(handle, fcntl.LOCK_EX)
            except BaseException:
                os.close(handle)
                raise
        self._handle = handle

    def release(self) -> None:
        handle, self._handle = self._handle, None
        if handle is None:
            return
        try:
            if fcntl is not None:
                fcntl.flock(handle, fcntl.LOCK_UN)
        finally:
            os.close(handle)

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "held" if self._handle is not None else "free"
        return f"FileLock({str(self.path)!r}, {state})"
