"""The persistent content-addressed sample & estimate store.

A :class:`SampleStore` is a directory of immutable entries, each holding
one pickled :class:`~repro.engine.samples.MaterializedSample` or one
pickled :class:`~repro.core.samplecf.SampleCFEstimate`, keyed by the
content fingerprints of :mod:`repro.store.fingerprint`. It is the disk
tier of the engine's two-tier cache: repeated CLI/advisor/benchmark
invocations over the same stored tables skip re-drawing (and, on exact
repeats, re-compressing) entirely.

Layout::

    <root>/
        STORE_FORMAT            # format version, checked on open
        samples/<aa>/<key>.bin  # one envelope per stored sample
        estimates/<aa>/<key>.bin
        locks/<key>.lock        # per-key materialization locks
        quarantine/             # corrupt envelopes, moved aside
        .store.lock             # store-wide structural lock

Entry envelope::

    magic "RPROSTORE1\\n" | 32-byte SHA-256 of body | body
    body = u32 meta_len | meta JSON | pickled payload

Guarantees:

* **append-safe, atomic writes** — entries are written to a tmp file in
  the destination directory and ``os.replace``-d into place, so readers
  only ever observe complete envelopes (no torn writes);
* **cross-process single materialization** —
  :meth:`get_or_create_sample` double-checks under a per-key ``flock``,
  so two processes racing one key materialize once;
* **corruption detection** — every read verifies the envelope checksum;
  a mismatch quarantines the file (moved, never deleted) and reads as a
  miss, so the caller transparently re-materializes;
* **size-bounded LRU eviction** — reads bump the entry's mtime;
  :meth:`prune` (and every write, when ``max_bytes`` is set) removes
  least-recently-used entries until the store fits;
* **invalidation** — keys embed the source's content fingerprint, so a
  mutated table simply stops matching its old entries; those age out
  via eviction or can be dropped eagerly with
  :meth:`invalidate_source`.
"""

from __future__ import annotations

import contextlib
import errno
import hashlib
import json
import os
import pathlib
import pickle
import struct
import tempfile
import threading
import time
from typing import Any, Callable, Iterator, NamedTuple

from repro.errors import (InjectedFault, PermanentStoreError, StoreError,
                          TransientStoreError)
from repro.engine.samples import MaterializedSample
from repro.faults import FaultInjector, NULL_INJECTOR, NullInjector, \
    injector_from_env
from repro.store.locks import FileLock

#: On-disk format version; bumped on incompatible envelope changes.
STORE_FORMAT = 1

_MAGIC = b"RPROSTORE1\n"
_CHECKSUM_BYTES = 32
_META_LEN = struct.Struct(">I")

_KINDS = ("samples", "estimates")


class _Corrupt(Exception):
    """Internal: an envelope failed validation (never escapes the store)."""


class StoreEntry(NamedTuple):
    """One on-disk entry, as listed by :meth:`SampleStore.entries`."""

    kind: str
    key: str
    path: pathlib.Path
    size_bytes: int
    mtime: float


#: OS error codes a retry can plausibly clear: contention, interrupted
#: syscalls, momentary resource exhaustion. Everything else stays a
#: plain :class:`StoreError` (degrade immediately, no retry).
_TRANSIENT_ERRNOS = frozenset({
    errno.EAGAIN, errno.EINTR, errno.EBUSY, errno.ENOSPC, errno.EDQUOT,
    errno.ETIMEDOUT, errno.EMFILE, errno.ENFILE,
})


def _store_error_for(exc: OSError) -> type[StoreError]:
    """The StoreError subclass matching an OS error's retryability."""
    if exc.errno in _TRANSIENT_ERRNOS:
        return TransientStoreError
    return StoreError


def _checksum(body: bytes) -> bytes:
    return hashlib.sha256(body).digest()


def _pack_envelope(meta: dict, payload: bytes) -> bytes:
    meta_bytes = json.dumps(meta, sort_keys=True).encode("utf-8")
    body = _META_LEN.pack(len(meta_bytes)) + meta_bytes + payload
    return _MAGIC + _checksum(body) + body


def _unpack_envelope(blob: bytes) -> tuple[dict, bytes]:
    if not blob.startswith(_MAGIC):
        raise _Corrupt("bad magic")
    offset = len(_MAGIC)
    checksum = blob[offset:offset + _CHECKSUM_BYTES]
    body = blob[offset + _CHECKSUM_BYTES:]
    if len(checksum) != _CHECKSUM_BYTES or _checksum(body) != checksum:
        raise _Corrupt("checksum mismatch")
    if len(body) < _META_LEN.size:
        raise _Corrupt("truncated body")
    (meta_len,) = _META_LEN.unpack_from(body)
    meta_end = _META_LEN.size + meta_len
    if len(body) < meta_end:
        raise _Corrupt("truncated metadata")
    try:
        meta = json.loads(body[_META_LEN.size:meta_end].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise _Corrupt(f"unreadable metadata: {exc}")
    return meta, body[meta_end:]


def _sample_for_disk(sample: MaterializedSample) -> MaterializedSample:
    """A copy of ``sample`` without its built indexes.

    Sample indexes are derived data (rebuilt lazily, deterministically,
    from rows + rids) and can dwarf the rows themselves; persisting them
    would bloat the store without changing any estimate.
    """
    state = dict(sample.__getstate__())
    state["indexes"] = {}
    clone = MaterializedSample.__new__(MaterializedSample)
    clone.__setstate__(state)
    return clone


class SampleStore:
    """A persistent, content-addressed store of samples and estimates.

    Parameters
    ----------
    root:
        Store directory; created (with parents) if missing.
    max_bytes:
        Optional size budget. When set, every write triggers LRU
        eviction down to the budget; when unset the store only shrinks
        via explicit :meth:`prune` / :meth:`clear`.

    Handles are cheap and picklable (only the configuration crosses
    process boundaries), so process-pool workers can share one store
    directory instead of private cold caches.
    """

    def __init__(self, root: str | os.PathLike,
                 max_bytes: int | None = None,
                 injector: "FaultInjector | NullInjector | None" = None,
                 ) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise StoreError(
                f"store size budget must be positive, got {max_bytes}")
        self.root = pathlib.Path(root).expanduser()
        self.max_bytes = max_bytes
        # Fault hooks: explicit injector, else the REPRO_FAULT_PLAN
        # environment hook (how subprocess workers inherit chaos
        # plans), else the allocation-free no-op.
        self.injector = injector if injector is not None \
            else injector_from_env()
        self._counter_lock = threading.Lock()
        #: Per-thread attribution sink (see :meth:`attributed`): the
        #: handle-global :attr:`counters` always move, and a thread
        #: that entered an attribution scope additionally mirrors its
        #: own movement into the scope's sink — which is how a batch
        #: charges exactly its own store I/O when several batches
        #: share this handle concurrently.
        self._local = threading.local()
        #: Running size estimate this handle maintains so budgeted
        #: writes don't rescan the directory every time; ``None`` until
        #: the first budget check seeds it from a real scan.
        self._approx_bytes: int | None = None
        self.counters: dict[str, int] = {
            "sample_hits": 0, "sample_misses": 0, "sample_writes": 0,
            "estimate_hits": 0, "estimate_misses": 0,
            "estimate_writes": 0, "quarantined": 0, "evicted": 0,
            "bytes_read": 0, "bytes_written": 0, "faults_injected": 0,
        }
        self._init_layout()

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    def _init_layout(self) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        for kind in _KINDS:
            (self.root / kind).mkdir(exist_ok=True)
        (self.root / "quarantine").mkdir(exist_ok=True)
        (self.root / "locks").mkdir(exist_ok=True)
        version_file = self.root / "STORE_FORMAT"
        if version_file.exists():
            text = version_file.read_text(encoding="ascii").strip()
            if text != str(STORE_FORMAT):
                raise PermanentStoreError(
                    f"store at {self.root} uses format {text!r}; this "
                    f"build reads format {STORE_FORMAT} — clear the "
                    f"directory or point --store-dir elsewhere")
        else:
            # tmp+replace, not write_text: two processes opening a
            # fresh store concurrently must never let one read the
            # other's half-written (empty) version file. Both racing
            # writers publish identical content, so last-replace-wins
            # is harmless.
            fd, tmp = tempfile.mkstemp(prefix=".tmp-format-",
                                       dir=self.root)
            with os.fdopen(fd, "w", encoding="ascii") as handle:
                handle.write(f"{STORE_FORMAT}\n")
            os.replace(tmp, version_file)

    def _entry_path(self, kind: str, key: str) -> pathlib.Path:
        if kind not in _KINDS:
            raise PermanentStoreError(f"unknown entry kind {kind!r}")
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise PermanentStoreError(
                f"store keys are hex digests, got {key!r}")
        return self.root / kind / key[:2] / f"{key}.bin"

    def _store_lock(self) -> FileLock:
        return FileLock(self.root / ".store.lock")

    def _key_lock(self, key: str) -> FileLock:
        return FileLock(self.root / "locks" / f"{key}.lock")

    def _count(self, name: str, amount: int = 1) -> None:
        sink = getattr(self._local, "sink", None)
        with self._counter_lock:
            self.counters[name] += amount
            if sink is not None:
                sink[name] = sink.get(name, 0) + amount

    @contextlib.contextmanager
    def attributed(self, sink: "dict[str, int] | None",
                   ) -> Iterator[None]:
        """Mirror this thread's counter movement into ``sink`` too.

        Attribution is thread-scoped on purpose: a store handle shared
        by concurrent batches (one engine, many ``execute()`` calls)
        cannot attribute movement per batch from handle-global
        counters — a before/after snapshot diff charges each batch the
        *union* of all concurrent movement. Each unit's store I/O runs
        on a thread that belongs to exactly one batch, so a
        thread-local sink set around the store call charges exactly
        that batch. ``None`` is a no-op so call sites don't branch.
        Scopes nest (the previous sink is restored on exit); sink
        updates share :attr:`_counter_lock`, so one sink dict may be
        fed by many pool threads of the same batch.
        """
        if sink is None:
            yield
            return
        previous = getattr(self._local, "sink", None)
        self._local.sink = sink
        try:
            yield
        finally:
            self._local.sink = previous

    # ------------------------------------------------------------------
    # Fault hooks (no-ops unless an injector is armed)
    # ------------------------------------------------------------------
    def _injected_read(self, blob: bytes) -> bytes:
        """Apply any scheduled ``store.read`` fault to a read blob."""
        spec = self.injector.fire("store.read")
        if spec is None:
            return blob
        self._count("faults_injected")
        if spec.kind == "error":
            raise TransientStoreError(
                "injected store.read fault (transient I/O error)")
        offset = int(spec.arg) % max(len(blob), 1)
        if spec.kind == "corrupt":
            # Flip one byte — the envelope checksum must catch it and
            # the entry must quarantine, never decode garbage.
            return (blob[:offset] + bytes([blob[offset] ^ 0xFF])
                    + blob[offset + 1:])
        return blob[:offset]  # "truncate": a short read

    def _injected_write(self, blob: bytes,
                        directory: pathlib.Path) -> None:
        """Apply any scheduled ``store.write`` fault before publishing."""
        spec = self.injector.fire("store.write")
        if spec is None:
            return
        self._count("faults_injected")
        if spec.kind == "error":
            raise TransientStoreError(
                "injected store.write fault (transient I/O error)")
        if spec.kind == "error_permanent":
            raise PermanentStoreError(
                "injected store.write fault (permanent)")
        # "torn" / "crash": simulate the writer dying mid-write — the
        # partial envelope lands in a private tmp file that is never
        # os.replace-d, exactly the on-disk state a real kill leaves.
        offset = min(int(spec.arg), len(blob))
        fd, tmp = tempfile.mkstemp(prefix=f".tmp-{os.getpid()}-",
                                   dir=directory)
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob[:offset])
            handle.flush()
            os.fsync(handle.fileno())
        if spec.kind == "crash":
            os._exit(32)
        raise InjectedFault(
            f"injected torn write after {offset} of {len(blob)} bytes "
            f"(tmp file abandoned at {tmp})")

    # ------------------------------------------------------------------
    # Raw entry I/O
    # ------------------------------------------------------------------
    def _write_entry(self, kind: str, key: str, payload_obj: Any,
                     meta: dict | None = None) -> int:
        path = self._entry_path(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        full_meta = dict(meta or {})
        # repro-lint: ignore[RPL001] -- wall-clock envelope metadata
        # (creation time for debugging/audit); it never feeds keys,
        # checksums cover it separately, and readers ignore it.
        full_meta.update({"kind": kind, "key": key,
                          "created": time.time()})
        try:
            payload = pickle.dumps(payload_obj,
                                   protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise PermanentStoreError(
                f"cannot serialize {kind} entry {key[:12]}…: {exc}"
            ) from exc
        blob = _pack_envelope(full_meta, payload)
        if self.injector.enabled:
            self._injected_write(blob, path.parent)
        tmp = None
        try:
            # mkstemp: a unique name per call, so concurrent writers of
            # the same key (two threads racing one estimate) each get a
            # private tmp file and os.replace publishes whole envelopes
            # only — never interleaved ones.
            fd, tmp = tempfile.mkstemp(prefix=f".tmp-{os.getpid()}-",
                                       dir=path.parent)
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except OSError as exc:
            if tmp is not None:
                pathlib.Path(tmp).unlink(missing_ok=True)
            raise _store_error_for(exc)(
                f"cannot write store entry under {self.root}: {exc}"
            ) from exc
        if self.max_bytes is not None:
            self._note_write(len(blob))
        self._count("bytes_written", len(blob))
        return len(blob)

    def _read_entry(self, kind: str, key: str) -> Any | None:
        path = self._entry_path(kind, key)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError as exc:
            raise _store_error_for(exc)(
                f"cannot read store entry {path}: {exc}") from exc
        if self.injector.enabled:
            blob = self._injected_read(blob)
        self._count("bytes_read", len(blob))
        try:
            _meta, payload = _unpack_envelope(blob)
            value = pickle.loads(payload)
        except Exception as exc:  # _Corrupt or a failed unpickle
            self._quarantine(path, kind, key, exc)
            return None
        try:
            os.utime(path, None)  # LRU recency signal
        except OSError:  # pragma: no cover - entry raced an eviction
            pass
        return value

    def _quarantine(self, path: pathlib.Path, kind: str, key: str,
                    exc: Exception) -> None:
        """Move a corrupt entry aside so the key reads as a miss.

        Quarantined files are renamed, never deleted — the bytes stay
        available for post-mortem while the store heals itself by
        re-materializing the entry on the next request.
        """
        target = self.root / "quarantine" / f"{kind}-{key}.bin"
        try:
            os.replace(path, target)
        except OSError:  # pragma: no cover - concurrent quarantine race
            path.unlink(missing_ok=True)
        self._count("quarantined")

    # ------------------------------------------------------------------
    # Samples
    # ------------------------------------------------------------------
    def get_sample(self, key: str) -> MaterializedSample | None:
        """The stored sample under ``key``, or ``None`` on a miss."""
        value = self._read_entry("samples", key)
        if isinstance(value, MaterializedSample):
            self._count("sample_hits")
            return value
        if value is not None:  # wrong type smells like key reuse
            self._quarantine(self._entry_path("samples", key),
                             "samples", key,
                             StoreError("entry is not a sample"))
        self._count("sample_misses")
        return None

    def put_sample(self, key: str, sample: MaterializedSample,
                   meta: dict | None = None) -> None:
        """Persist one materialized sample (built indexes stripped)."""
        self._write_entry("samples", key, _sample_for_disk(sample), meta)
        self._count("sample_writes")

    def get_or_create_sample(self, key: str,
                             factory: Callable[[], MaterializedSample],
                             meta: dict | None = None,
                             ) -> tuple[MaterializedSample, bool]:
        """Load ``key``, or materialize-and-store exactly once.

        Returns ``(sample, was_hit)``. Cross-process single-flight: the
        factory only runs while holding the key's file lock, and the
        second check under the lock turns the loser of a race into a
        plain disk hit.
        """
        sample = self.get_sample(key)
        if sample is not None:
            return sample, True
        if self.injector.enabled and \
                self.injector.fire("store.lock") is not None:
            self._count("faults_injected")
            raise TransientStoreError(
                f"injected store.lock fault for key {key[:12]}…")
        with self._key_lock(key):
            sample = self.get_sample(key)
            if sample is not None:
                return sample, True
            sample = factory()
            self.put_sample(key, sample, meta)
            return sample, False

    # ------------------------------------------------------------------
    # Estimates
    # ------------------------------------------------------------------
    def get_estimate(self, key: str) -> Any | None:
        """The stored estimate under ``key``, or ``None`` on a miss."""
        value = self._read_entry("estimates", key)
        if value is None:
            self._count("estimate_misses")
            return None
        self._count("estimate_hits")
        return value

    def put_estimate(self, key: str, estimate: Any,
                     meta: dict | None = None) -> None:
        """Persist one finished estimate."""
        self._write_entry("estimates", key, estimate, meta)
        self._count("estimate_writes")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def entries(self) -> Iterator[StoreEntry]:
        """All live entries (quarantine excluded), unordered."""
        for kind in _KINDS:
            base = self.root / kind
            if not base.exists():
                continue
            for bucket in sorted(base.iterdir()):
                if not bucket.is_dir():
                    continue
                for path in sorted(bucket.glob("*.bin")):
                    try:
                        stat = path.stat()
                    except OSError:  # pragma: no cover - eviction race
                        continue
                    yield StoreEntry(kind=kind, key=path.stem, path=path,
                                     size_bytes=stat.st_size,
                                     mtime=stat.st_mtime)

    def entry_meta(self, entry: StoreEntry) -> dict | None:
        """The metadata header of one entry (``None`` if unreadable)."""
        try:
            meta, _payload = _unpack_envelope(entry.path.read_bytes())
        except (OSError, _Corrupt):
            return None
        return meta

    def stats(self) -> dict:
        """Entry counts and byte totals per kind, plus configuration."""
        per_kind = {kind: {"entries": 0, "bytes": 0} for kind in _KINDS}
        for entry in self.entries():
            per_kind[entry.kind]["entries"] += 1
            per_kind[entry.kind]["bytes"] += entry.size_bytes
        quarantine = self.root / "quarantine"
        quarantined = [p for p in quarantine.glob("*.bin")] \
            if quarantine.exists() else []
        return {
            "root": str(self.root),
            "format": STORE_FORMAT,
            "max_bytes": self.max_bytes,
            "samples": per_kind["samples"],
            "estimates": per_kind["estimates"],
            "total_entries": sum(k["entries"] for k in per_kind.values()),
            "total_bytes": sum(k["bytes"] for k in per_kind.values()),
            "quarantined": {
                "entries": len(quarantined),
                "bytes": sum(p.stat().st_size for p in quarantined),
            },
            "counters": dict(self.counters),
        }

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())

    # ------------------------------------------------------------------
    # Eviction / maintenance
    # ------------------------------------------------------------------
    def _note_write(self, size: int) -> None:
        """Budget bookkeeping after one write; evicts when over.

        The running total is per-handle and best-effort (other
        processes' writes aren't seen until the next real scan), so it
        only decides *when* to pay for an eviction pass — every pass
        itself recomputes exact sizes from the directory. Overwrites
        double-count, which errs toward evicting early, never late by
        more than other processes' unseen writes.
        """
        with self._counter_lock:
            if self._approx_bytes is None:
                self._approx_bytes = sum(entry.size_bytes
                                         for entry in self.entries())
            else:
                self._approx_bytes += size
            over = self._approx_bytes > self.max_bytes
        if over:
            self._evict_to(self.max_bytes)

    def _evict_to(self, max_bytes: int) -> tuple[int, int]:
        """Drop least-recently-used entries until the store fits."""
        with self._store_lock():
            entries = sorted(self.entries(), key=lambda e: e.mtime)
            total = sum(entry.size_bytes for entry in entries)
            evicted_entries = 0
            evicted_bytes = 0
            for entry in entries:
                if total <= max_bytes:
                    break
                try:
                    entry.path.unlink()
                except OSError:  # pragma: no cover - concurrent unlink
                    continue
                total -= entry.size_bytes
                evicted_entries += 1
                evicted_bytes += entry.size_bytes
        with self._counter_lock:
            self._approx_bytes = total
        if evicted_entries:
            self._count("evicted", evicted_entries)
        return evicted_entries, evicted_bytes

    def prune(self, max_bytes: int) -> dict:
        """Evict LRU entries until the store is at most ``max_bytes``."""
        if max_bytes < 0:
            raise StoreError(
                f"prune budget must be non-negative, got {max_bytes}")
        evicted_entries, evicted_bytes = self._evict_to(max_bytes)
        return {"evicted_entries": evicted_entries,
                "evicted_bytes": evicted_bytes,
                "remaining_bytes": self.stats()["total_bytes"]}

    def clear(self) -> int:
        """Remove every live entry (quarantine is kept); returns count."""
        removed = 0
        with self._store_lock():
            for entry in list(self.entries()):
                try:
                    entry.path.unlink()
                except OSError:  # pragma: no cover - concurrent unlink
                    continue
                removed += 1
        with self._counter_lock:
            self._approx_bytes = 0
        return removed

    def invalidate_source(self, source_fingerprint: str) -> int:
        """Eagerly drop all entries recorded against one source.

        Content addressing already makes stale entries unreachable (a
        mutated table fingerprints differently); this reclaims their
        space immediately instead of waiting for LRU eviction.
        """
        removed = 0
        with self._store_lock():
            for entry in list(self.entries()):
                meta = self.entry_meta(entry)
                if meta is None or \
                        meta.get("source") != source_fingerprint:
                    continue
                try:
                    entry.path.unlink()
                except OSError:  # pragma: no cover - concurrent unlink
                    continue
                removed += 1
        with self._counter_lock:
            self._approx_bytes = None  # re-seed from a scan next time
        return removed

    # ------------------------------------------------------------------
    # Serialisation (process-pool workers share a handle)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        return {"root": str(self.root), "max_bytes": self.max_bytes}

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["root"], max_bytes=state["max_bytes"])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        budget = (f", max_bytes={self.max_bytes}"
                  if self.max_bytes is not None else "")
        return f"SampleStore({str(self.root)!r}{budget})"


def open_store(store: "SampleStore | str | os.PathLike | None",
               max_bytes: int | None = None) -> "SampleStore | None":
    """Normalise a store argument: a handle passes through, a path opens.

    ``None`` stays ``None`` — callers use this to make ``store=``
    parameters accept either form without caring which they got.
    """
    if store is None:
        return None
    if isinstance(store, SampleStore):
        return store
    return SampleStore(store, max_bytes=max_bytes)
