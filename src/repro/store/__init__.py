"""Persistent content-addressed sample & estimate store.

The disk tier of the engine's two-tier cache. Where the in-memory
:class:`~repro.engine.samples.SampleCache` dedupes work within one
process, a :class:`SampleStore` dedupes it across processes and runs:
entries are keyed by *content* fingerprints (table content hash x
sampler x fraction x seed, plus the full algorithm/layout identity for
estimates), so any run that rebuilds the same workload warm-starts from
disk. See :mod:`repro.store.store` for the layout and guarantees and
:mod:`repro.store.fingerprint` for the key derivations.

Typical use::

    from repro.engine import EstimationEngine

    engine = EstimationEngine(seed=7, store="~/.cache/repro-store")
    engine.execute(requests)   # cold: materializes and persists
    # ... any later process ...
    engine = EstimationEngine(seed=7, store="~/.cache/repro-store")
    engine.execute(requests)   # warm: zero samples materialized
"""

from repro.store.fingerprint import (digest_parts, estimate_store_key,
                                     histogram_fingerprint,
                                     sample_store_key, source_fingerprint,
                                     table_fingerprint)
from repro.store.locks import FileLock, HAVE_FLOCK
from repro.store.store import (STORE_FORMAT, SampleStore, StoreEntry,
                               open_store)

__all__ = [
    "FileLock",
    "HAVE_FLOCK",
    "STORE_FORMAT",
    "SampleStore",
    "StoreEntry",
    "digest_parts",
    "estimate_store_key",
    "histogram_fingerprint",
    "open_store",
    "sample_store_key",
    "source_fingerprint",
    "table_fingerprint",
]
