"""Content fingerprints and store keys for persistent caching.

The in-memory :class:`~repro.engine.samples.SampleCache` keys on object
*identity* (the Table/ColumnHistogram instance itself), which is exactly
right inside one process and exactly wrong on disk: a persistent store
must recognise "the same table" across processes, runs, and rebuilds.
These helpers translate the engine's canonical identities into pure
*content* keys:

* :func:`source_fingerprint` — SHA-256 of the source's bytes (a table's
  schema + page images, a histogram's dtype/values/counts);
* :func:`sample_store_key` — what a drawn sample depends on: source
  content x sampler x fraction x resolved seed;
* :func:`estimate_store_key` — what a finished estimate additionally
  depends on: columns, algorithm, index kind, accounting, layout.

Keys are hex digests, so they double as filenames; two runs that build
byte-identical workloads derive byte-identical keys, which is the whole
warm-start story.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING

from repro.errors import StoreError
from repro.engine.requests import algorithm_key, sampler_key

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cf_models import ColumnHistogram
    from repro.engine.units import PlanUnit
    from repro.storage.table import Table


def digest_parts(*parts: object) -> str:
    """A stable SHA-256 hex digest over description parts.

    Same construction as the engine's seed derivation (string forms
    joined on an unprintable separator) so the result is independent of
    per-process hash randomisation and object identity.
    """
    text = "\x1f".join(str(part) for part in parts)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def histogram_fingerprint(histogram: "ColumnHistogram") -> str:
    """Content identity of a histogram: dtype, values, counts.

    Memoized on the instance — histograms are immutable in practice
    (every transformation builds a new object), so a cached digest can
    never go stale.
    """
    cached = getattr(histogram, "_content_fingerprint", None)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    digest.update(f"histogram:{histogram.dtype.name}:"
                  f"{int(histogram.n)}:".encode("utf-8"))
    for value, count in zip(histogram.values, histogram.counts):
        digest.update(f"{value!r}={int(count)}\x1f".encode("utf-8"))
    fingerprint = digest.hexdigest()
    histogram._content_fingerprint = fingerprint
    return fingerprint


def source_fingerprint(unit_or_request) -> str:
    """Content fingerprint of a request's source (table or histogram)."""
    request = getattr(unit_or_request, "request", unit_or_request)
    if request.table is not None:
        return request.table.content_fingerprint()
    return histogram_fingerprint(request.histogram)


def sample_store_key(unit: "PlanUnit") -> str:
    """Disk key of the sample one plan unit draws.

    Mirrors the in-memory cache key's *scope* — (source, sampler,
    fraction, resolved seed) — but replaces object identity with
    content. Units with opaque Generator seeds have no reproducible
    identity and cannot be stored.
    """
    if unit.sample_key is None:
        raise StoreError(
            "a unit with an opaque Generator seed has no reproducible "
            "store key")
    return digest_parts("sample", source_fingerprint(unit),
                        sampler_key(unit.request.sampler),
                        repr(float(unit.request.fraction)),
                        int(unit.seed))


def estimate_store_key(unit: "PlanUnit") -> str:
    """Disk key of the finished estimate one plan unit computes.

    Everything that can change the estimate participates: the sample's
    scope plus columns, algorithm (class and configuration), index
    kind, accounting mode, repacking, and page layout.
    """
    if unit.sample_key is None:
        raise StoreError(
            "a unit with an opaque Generator seed has no reproducible "
            "store key")
    request = unit.request
    return digest_parts(
        "estimate", source_fingerprint(unit),
        sampler_key(request.sampler), repr(float(request.fraction)),
        int(unit.seed), request.columns,
        algorithm_key(request.algorithm), request.kind.value,
        request.accounting, request.repack, request.page_size,
        repr(float(request.fill_factor)), request.record_bytes)


def table_fingerprint(table: "Table") -> str:
    """Convenience alias: a table's content fingerprint."""
    return table.content_fingerprint()
