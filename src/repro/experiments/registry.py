"""Registry of paper artefacts and the benches that regenerate them.

One entry per table, figure, theorem, worked example and declared
future-work item of the paper, plus the engine-fidelity and application
experiments — the machine-readable version of DESIGN.md section 5.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ExperimentError


@dataclass(frozen=True)
class ExperimentSpec:
    """A reproducible experiment tied to a paper artefact."""

    id: str
    paper_ref: str
    title: str
    description: str
    bench_module: str | None
    modules: tuple[str, ...]


_SPECS = (
    ExperimentSpec(
        id="fig1",
        paper_ref="Figure 1",
        title="Compression techniques illustration",
        description="Byte-level demonstration of null suppression "
                    "('abc' in char(20) -> 3+1 bytes) and dictionary "
                    "compression (repeated values -> one entry + "
                    "pointers), plus throughput.",
        bench_module="benchmarks/bench_figure1_compression.py",
        modules=("repro.compression.null_suppression",
                 "repro.compression.dictionary", "repro.storage.page")),
    ExperimentSpec(
        id="fig2",
        paper_ref="Figure 2",
        title="The SampleCF algorithm end to end",
        description="Literal pseudocode run: sample, build index on the "
                    "sample, compress, return CF; staged timings and "
                    "accuracy check.",
        bench_module="benchmarks/bench_figure2_samplecf.py",
        modules=("repro.core.samplecf", "repro.storage.index",
                 "repro.sampling.row_samplers")),
    ExperimentSpec(
        id="table1",
        paper_ref="Table I",
        title="Notation",
        description="Non-experimental notation glossary; encoded as the "
                    "shared vocabulary of repro.core.metrics and "
                    "repro.core.bounds (see EXPERIMENTS.md).",
        bench_module=None,
        modules=("repro.core.metrics", "repro.core.bounds")),
    ExperimentSpec(
        id="table2",
        paper_ref="Table II",
        title="Summary of results, measured",
        description="The 2x2 grid: NS bias~0 with variance <= 1/(4r) in "
                    "both d regimes; dictionary biased, ratio error -> 1 "
                    "for small d and <= constant for large d.",
        bench_module="benchmarks/bench_table2_summary.py",
        modules=("repro.core.samplecf", "repro.core.cf_models",
                 "repro.core.bounds", "repro.experiments.runner")),
    ExperimentSpec(
        id="thm1",
        paper_ref="Theorem 1",
        title="NS unbiasedness and std-dev bound",
        description="Measured bias and std-dev of CF'_NS against "
                    "(1/2)sqrt(1/(f n)) across sampling fractions and "
                    "length distributions.",
        bench_module="benchmarks/bench_theorem1_ns_bound.py",
        modules=("repro.core.samplecf", "repro.core.bounds")),
    ExperimentSpec(
        id="ex1",
        paper_ref="Example 1",
        title="Paper-scale example (n=100M, r=1M)",
        description="The example at its true scale via the histogram "
                    "path: measured sigma vs the 0.0005 bound.",
        bench_module="benchmarks/bench_example1_paper_scale.py",
        modules=("repro.core.samplecf", "repro.core.bounds")),
    ExperimentSpec(
        id="thm2",
        paper_ref="Theorem 2",
        title="Dictionary, small d: ratio error -> 1",
        description="Ratio error as n grows with d = o(n) (d = sqrt n), "
                    "against the deterministic bound 1 + dk/(fnp).",
        bench_module="benchmarks/bench_theorem2_small_d.py",
        modules=("repro.core.samplecf", "repro.core.bounds")),
    ExperimentSpec(
        id="thm3",
        paper_ref="Theorem 3",
        title="Dictionary, large d: constant ratio error",
        description="Ratio error as n grows with d = alpha n; stays "
                    "below the constant bound, independent of n.",
        bench_module="benchmarks/bench_theorem3_large_d.py",
        modules=("repro.core.samplecf", "repro.core.bounds")),
    ExperimentSpec(
        id="abl-paging",
        paper_ref="Section III-B / future work",
        title="Paging effects in dictionary compression",
        description="Paged (in-place and repacked) vs simplified global "
                    "dictionary CF across d; how paging shifts CF and "
                    "SampleCF's error.",
        bench_module="benchmarks/bench_ablation_paging.py",
        modules=("repro.compression.dictionary",
                 "repro.core.cf_models")),
    ExperimentSpec(
        id="abl-block",
        paper_ref="Section II-C / future work",
        title="Tuple vs block-level sampling",
        description="Estimator error under tuple vs page sampling at "
                    "equal row budget, clustered vs shuffled layouts.",
        bench_module="benchmarks/bench_ablation_block_sampling.py",
        modules=("repro.sampling.block", "repro.core.samplecf")),
    ExperimentSpec(
        id="abl-distinct",
        paper_ref="Section III-B, ref [1]",
        title="Distinct-estimator plug-ins vs SampleCF",
        description="Chao/GEE/Shlosser plug-in CF estimators vs "
                    "SampleCF's implicit scale-up across d regimes and "
                    "skew.",
        bench_module="benchmarks/bench_ablation_distinct_estimators.py",
        modules=("repro.core.distinct", "repro.core.estimator")),
    ExperimentSpec(
        id="abl-replacement",
        paper_ref="Section II-C assumption",
        title="Sampling-design ablation",
        description="With- vs without-replacement vs Bernoulli vs "
                    "reservoir at equal fraction.",
        bench_module="benchmarks/bench_ablation_sampling_designs.py",
        modules=("repro.sampling.row_samplers",
                 "repro.sampling.reservoir", "repro.core.samplecf")),
    ExperimentSpec(
        id="abl-multicol",
        paper_ref="Sections II-A / III (multi-column remark)",
        title="Multi-column indexes",
        description="The paper's 'extends in a straightforward manner' "
                    "claim made measurable: per-column CF decomposition, "
                    "model-vs-engine agreement, and SampleCF accuracy on "
                    "two-column indexes.",
        bench_module="benchmarks/bench_ablation_multicolumn.py",
        modules=("repro.core.multicolumn", "repro.storage.index")),
    ExperimentSpec(
        id="micro-storage",
        paper_ref="(engine fidelity)",
        title="Storage engine microbenchmarks",
        description="Page fill, bulk load, compression throughput; "
                    "payload-mode CF equality with the closed forms.",
        bench_module="benchmarks/bench_storage_engine.py",
        modules=("repro.storage", "repro.compression")),
    ExperimentSpec(
        id="app-advisor",
        paper_ref="Section I application",
        title="Physical design under a storage bound",
        description="Greedy index selection consuming SampleCF estimates "
                    "vs exact sizes: decision agreement and cost gap.",
        bench_module="benchmarks/bench_advisor.py",
        modules=("repro.advisor",)),
    ExperimentSpec(
        id="perf-store",
        paper_ref="(engine performance)",
        title="Persistent store warm start",
        description="Cold vs warm runs of one estimation batch against "
                    "the content-addressed sample/estimate store: wall "
                    "time, per-tier hit counts, and bit-identical "
                    "estimates.",
        bench_module="benchmarks/bench_store_warm_start.py",
        modules=("repro.store", "repro.engine")),
    ExperimentSpec(
        id="app-whatif",
        paper_ref="Section I application / Theorems 1-2",
        title="What-if advisor with bound pruning",
        description="Lazy engine-backed greedy selection: Theorem 1/2 "
                    "CF bounds prune candidates that cannot win, "
                    "adaptive allocation stops trials early; engine "
                    "units and wall-clock vs. the eager advisor, with "
                    "bit-identical selected designs asserted.",
        bench_module="benchmarks/bench_whatif_advisor.py",
        modules=("repro.advisor.whatif", "repro.core.bounds",
                 "repro.engine")),
    ExperimentSpec(
        id="perf-size-kernels",
        paper_ref="(engine performance)",
        title="Vectorized size-only kernels",
        description="Scalar compress vs. size-only vectorized kernels "
                    "per codec on the canonical clustered CHAR index: "
                    "cold and batch-shared speedups, with bit-identical "
                    "payload sizes asserted.",
        bench_module="benchmarks/bench_size_kernels.py",
        modules=("repro.compression.kernels", "repro.storage.index")),
    ExperimentSpec(
        id="perf-remote",
        paper_ref="(engine performance)",
        title="Remote plan executor scaling",
        description="Plan units sharded across store-warmed socket "
                    "workers: cost-model LPT scheduling with a "
                    "work-stealing tail vs. round-robin, simulated-"
                    "service throughput scaling at 1/2/4 workers, and "
                    "zero sample materializations against a warm "
                    "shared store — with bit-identical estimates "
                    "asserted against the serial executor.",
        bench_module="benchmarks/bench_remote_executor.py",
        modules=("repro.engine.remote", "repro.store")),
)

EXPERIMENTS: dict[str, ExperimentSpec] = {spec.id: spec for spec in _SPECS}


def get_experiment(experiment_id: str) -> ExperimentSpec:
    """Look up an experiment by id."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: "
            f"{sorted(EXPERIMENTS)}") from None


def list_experiments() -> list[ExperimentSpec]:
    """All experiments in registry order."""
    return list(_SPECS)
