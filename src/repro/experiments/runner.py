"""Multi-trial experiment execution with reproducible seeding.

An estimation experiment is "run the estimator T times with independent
randomness, compare against the truth". The runner owns the seeding
discipline (one master seed spawns independent child generators, so any
trial can be replayed) and returns :class:`ErrorSummary` objects ready
for the report formatter.

Two execution styles coexist:

* **callable trials** (:func:`run_trials` / :func:`sweep`) — the
  historical API: the experiment supplies a function of a Generator;
* **engine batches** (:func:`run_request_trials` /
  :func:`engine_sweep`) — the experiment supplies
  :class:`~repro.engine.requests.EstimationRequest` descriptions and
  the whole sweep executes as one
  :class:`~repro.engine.engine.EstimationEngine` batch, so sweep
  points over the same source share materialized samples trial by
  trial instead of re-drawing O(points × trials) times.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable

import numpy as np

from repro.errors import ExperimentError
from repro.sampling.rng import SeedLike, spawn_rngs
from repro.core.metrics import ErrorSummary

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.engine import EstimationEngine
    from repro.engine.executors import PlanExecutor
    from repro.engine.requests import EstimationRequest
    from repro.store.store import SampleStore

#: A trial function: receives a dedicated Generator, returns an estimate.
TrialFn = Callable[[np.random.Generator], float]


def run_trials(trial: TrialFn, trials: int,
               seed: SeedLike = None) -> np.ndarray:
    """Run ``trial`` with ``trials`` independent generators."""
    if trials <= 0:
        raise ExperimentError(f"need a positive trial count, got {trials}")
    generators = spawn_rngs(seed, trials)
    return np.asarray([trial(rng) for rng in generators],
                      dtype=np.float64)


def summarize_trials(true_value: float, trial: TrialFn, trials: int,
                     seed: SeedLike = None) -> ErrorSummary:
    """Run trials and fold them into an :class:`ErrorSummary`."""
    estimates = run_trials(trial, trials, seed)
    return ErrorSummary.from_estimates(true_value, estimates)


@dataclass(frozen=True)
class SweepPoint:
    """One point of a parameter sweep."""

    parameter: Any
    summary: ErrorSummary
    extra: dict


def sweep(parameters: Iterable[Any],
          make_truth_and_trial: Callable[[Any], tuple[float, TrialFn, dict]],
          trials: int, seed: SeedLike = None) -> list[SweepPoint]:
    """Evaluate an estimator across a parameter grid.

    ``make_truth_and_trial(parameter)`` returns ``(truth, trial_fn,
    extra)``; each grid point runs ``trials`` independent trials. Used
    by the theorem benches (sweep over ``f``, ``n``, or ``alpha``).
    """
    points: list[SweepPoint] = []
    parameters = list(parameters)
    generators = spawn_rngs(seed, len(parameters))
    for parameter, rng in zip(parameters, generators):
        truth, trial, extra = make_truth_and_trial(parameter)
        summary = summarize_trials(truth, trial, trials, rng)
        points.append(SweepPoint(parameter=parameter, summary=summary,
                                 extra=dict(extra)))
    return points


# ----------------------------------------------------------------------
# Engine-backed execution (shared samples across trials and points)
# ----------------------------------------------------------------------
def _resolve_engine(engine: "EstimationEngine | None",
                    seed: SeedLike,
                    store: "SampleStore | str | None" = None,
                    tracer: object = None) -> "EstimationEngine":
    from repro.engine.engine import EstimationEngine  # lazy: cycle guard

    if engine is not None:
        if seed is not None:
            raise ExperimentError(
                "pass either engine= or seed=, not both: a supplied "
                "engine's master seed governs the randomness")
        if store is not None:
            raise ExperimentError(
                "pass either engine= or store=, not both: a supplied "
                "engine already decided its persistence tier")
        if tracer is not None:
            raise ExperimentError(
                "pass either engine= or tracer=, not both: a supplied "
                "engine already carries its tracer")
        return engine
    return EstimationEngine(seed=seed if seed is not None else 0,
                            store=store, tracer=tracer)


def run_request_trials(request: "EstimationRequest",
                       trials: int | None = None,
                       engine: "EstimationEngine | None" = None,
                       seed: SeedLike = None,
                       executor: "PlanExecutor | str | None" = None,
                       store: "SampleStore | str | None" = None,
                       ) -> np.ndarray:
    """Run one request's trials on the engine; returns the estimates.

    ``trials`` overrides the request's own count when given. Trial
    randomness derives from the engine's master seed and the request's
    sample scope, so re-running on a same-seeded engine replays
    exactly — on any ``executor`` (instance or name), since estimates
    are executor-independent. ``store`` attaches the persistent disk
    tier so repeated runs warm-start.
    """
    if trials is not None:
        if trials <= 0:
            raise ExperimentError(
                f"need a positive trial count, got {trials}")
        request = request.with_trials(trials)
    batch = _resolve_engine(engine, seed, store).execute(
        [request], executor=executor)
    return batch.results[0].values


@dataclass(frozen=True)
class AdaptiveTrials:
    """Outcome of a staged (1/2/4/...) trial allocation.

    ``values`` holds the trials actually run — trial ``j`` is
    bit-identical to trial ``j`` of a full-budget
    :func:`run_request_trials` on the same engine, so a converged run
    is a *prefix* of the exhaustive one, not a different experiment.
    """

    values: np.ndarray
    #: The budget the allocation was allowed to spend.
    trials_budget: int
    #: Stage sizes executed, in order (e.g. ``(1, 1, 2, 4)``).
    stages: tuple[int, ...]
    #: Half-width of the final confidence interval for the full-budget
    #: trial mean; ``None`` when fewer than two trials ran.
    halfwidth: float | None
    #: Whether the tolerance was met before the budget ran out.
    converged: bool

    @property
    def trials_run(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return float(self.values.mean())


def run_request_trials_adaptive(request: "EstimationRequest",
                                trials: int | None = None,
                                engine: "EstimationEngine | None" = None,
                                seed: SeedLike = None,
                                executor: "PlanExecutor | str | None"
                                = None,
                                store: "SampleStore | str | None" = None,
                                tolerance: float = 0.005,
                                confidence: float = 0.99,
                                ) -> AdaptiveTrials:
    """Staged trial allocation for a plain request, outside the advisor.

    The what-if advisor's 1/2/4/... schedule, surfaced for ordinary
    sweeps: run stages of doubling size through
    :meth:`~repro.engine.engine.EstimationEngine.trial_requests` (so
    each stage replays bit-identically to the corresponding trials of
    the full request), and stop once the confidence interval for the
    *full-budget* trial mean has half-width at most ``tolerance`` —
    i.e. once the remaining trials provably cannot move the answer
    beyond the tolerance. Requires a non-opaque seed (staged replay
    needs reproducible per-trial identities).
    """
    from repro.core.confidence import empirical_trial_mean_interval

    budget = trials if trials is not None else request.trials
    if budget <= 0:
        raise ExperimentError(
            f"need a positive trial budget, got {budget}")
    if tolerance <= 0:
        raise ExperimentError(
            f"need a positive tolerance, got {tolerance}")
    resolved = _resolve_engine(engine, seed, store)
    per_trial = resolved.trial_requests(request.with_trials(budget))
    values: list[float] = []
    stages: list[int] = []
    halfwidth: float | None = None
    converged = False
    while len(values) < budget:
        # Doubling schedule: 1, then as many as already ran (1, 2, 4,
        # ...), clipped to the budget.
        count = min(max(1, len(values)), budget - len(values))
        batch = resolved.execute(
            list(per_trial[len(values):len(values) + count]),
            executor=executor)
        values.extend(float(result.values[0])
                      for result in batch.results)
        stages.append(count)
        interval = empirical_trial_mean_interval(
            np.asarray(values, dtype=np.float64), budget,
            confidence=confidence)
        if interval is not None:
            halfwidth = float(interval.width) / 2.0
            if halfwidth <= tolerance:
                converged = True
                break
    return AdaptiveTrials(values=np.asarray(values, dtype=np.float64),
                          trials_budget=budget, stages=tuple(stages),
                          halfwidth=halfwidth, converged=converged)


def summarize_request(true_value: float, request: "EstimationRequest",
                      trials: int | None = None,
                      engine: "EstimationEngine | None" = None,
                      seed: SeedLike = None) -> ErrorSummary:
    """Engine-backed analogue of :func:`summarize_trials`."""
    estimates = run_request_trials(request, trials=trials, engine=engine,
                                   seed=seed)
    return ErrorSummary.from_estimates(true_value, estimates)


def engine_sweep(parameters: Iterable[Any],
                 make_truth_and_request: Callable[
                     [Any], tuple[float, "EstimationRequest", dict]],
                 trials: int,
                 engine: "EstimationEngine | None" = None,
                 seed: SeedLike = None,
                 executor: "PlanExecutor | str | None" = None,
                 store: "SampleStore | str | None" = None,
                 tracer: object = None) -> list[SweepPoint]:
    """Evaluate an estimator grid as **one** shared-sample batch.

    ``make_truth_and_request(parameter)`` returns ``(truth, request,
    extra)``. All points execute in a single engine batch: points whose
    requests target the same source and fraction share one materialized
    sample per trial, which is what makes algorithm sweeps and advisor
    grids O(samples + points) instead of O(points × trials) full
    passes. ``executor`` (instance or name: ``"serial"``,
    ``"threads"``, ``"process"``) picks how that batch runs without
    changing any estimate. ``store`` (a
    :class:`~repro.store.store.SampleStore` or directory path) lets
    whole artefact regenerations warm-start from samples and estimates
    persisted by earlier sweeps. ``tracer`` (a
    :class:`~repro.obs.Tracer`) records the sweep's spans; mutually
    exclusive with ``engine=`` like ``seed``/``store``.
    """
    if trials <= 0:
        raise ExperimentError(f"need a positive trial count, got {trials}")
    parameters = list(parameters)
    resolved = _resolve_engine(engine, seed, store, tracer)
    truths: list[float] = []
    extras: list[dict] = []
    requests: list["EstimationRequest"] = []
    for parameter in parameters:
        truth, request, extra = make_truth_and_request(parameter)
        truths.append(truth)
        extras.append(dict(extra))
        requests.append(request.with_trials(trials))
    batch = resolved.execute(requests, executor=executor)
    return [SweepPoint(parameter=parameter,
                       summary=ErrorSummary.from_estimates(
                           truth, result.values),
                       extra=extra)
            for parameter, truth, result, extra
            in zip(parameters, truths, batch.results, extras)]


@dataclass(frozen=True)
class Timed:
    """Result of a timed call."""

    value: Any
    seconds: float


def timed(fn: Callable[[], Any]) -> Timed:
    """Wall-clock a callable (used for throughput rows in benches)."""
    start = time.perf_counter()
    value = fn()
    return Timed(value=value, seconds=time.perf_counter() - start)
