"""Multi-trial experiment execution with reproducible seeding.

An estimation experiment is "run the estimator T times with independent
randomness, compare against the truth". The runner owns the seeding
discipline (one master seed spawns independent child generators, so any
trial can be replayed) and returns :class:`ErrorSummary` objects ready
for the report formatter.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable

import numpy as np

from repro.errors import ExperimentError
from repro.sampling.rng import SeedLike, spawn_rngs
from repro.core.metrics import ErrorSummary

#: A trial function: receives a dedicated Generator, returns an estimate.
TrialFn = Callable[[np.random.Generator], float]


def run_trials(trial: TrialFn, trials: int,
               seed: SeedLike = None) -> np.ndarray:
    """Run ``trial`` with ``trials`` independent generators."""
    if trials <= 0:
        raise ExperimentError(f"need a positive trial count, got {trials}")
    generators = spawn_rngs(seed, trials)
    return np.asarray([trial(rng) for rng in generators],
                      dtype=np.float64)


def summarize_trials(true_value: float, trial: TrialFn, trials: int,
                     seed: SeedLike = None) -> ErrorSummary:
    """Run trials and fold them into an :class:`ErrorSummary`."""
    estimates = run_trials(trial, trials, seed)
    return ErrorSummary.from_estimates(true_value, estimates)


@dataclass(frozen=True)
class SweepPoint:
    """One point of a parameter sweep."""

    parameter: Any
    summary: ErrorSummary
    extra: dict


def sweep(parameters: Iterable[Any],
          make_truth_and_trial: Callable[[Any], tuple[float, TrialFn, dict]],
          trials: int, seed: SeedLike = None) -> list[SweepPoint]:
    """Evaluate an estimator across a parameter grid.

    ``make_truth_and_trial(parameter)`` returns ``(truth, trial_fn,
    extra)``; each grid point runs ``trials`` independent trials. Used
    by the theorem benches (sweep over ``f``, ``n``, or ``alpha``).
    """
    points: list[SweepPoint] = []
    parameters = list(parameters)
    generators = spawn_rngs(seed, len(parameters))
    for parameter, rng in zip(parameters, generators):
        truth, trial, extra = make_truth_and_trial(parameter)
        summary = summarize_trials(truth, trial, trials, rng)
        points.append(SweepPoint(parameter=parameter, summary=summary,
                                 extra=dict(extra)))
    return points


@dataclass(frozen=True)
class Timed:
    """Result of a timed call."""

    value: Any
    seconds: float


def timed(fn: Callable[[], Any]) -> Timed:
    """Wall-clock a callable (used for throughput rows in benches)."""
    start = time.perf_counter()
    value = fn()
    return Timed(value=value, seconds=time.perf_counter() - start)
