"""Experiment harness: trial running, reporting, and the artefact registry."""

from repro.experiments.registry import (EXPERIMENTS, ExperimentSpec,
                                        get_experiment, list_experiments)
from repro.experiments.report import (banner, fmt_bytes, fmt_float,
                                      format_markdown_table, format_table)
from repro.experiments.runner import (AdaptiveTrials, SweepPoint, Timed,
                                      engine_sweep, run_request_trials,
                                      run_request_trials_adaptive,
                                      run_trials, summarize_request,
                                      summarize_trials, sweep, timed)

__all__ = [
    "AdaptiveTrials",
    "EXPERIMENTS",
    "ExperimentSpec",
    "SweepPoint",
    "Timed",
    "banner",
    "engine_sweep",
    "fmt_bytes",
    "fmt_float",
    "format_markdown_table",
    "format_table",
    "get_experiment",
    "list_experiments",
    "run_request_trials",
    "run_request_trials_adaptive",
    "run_trials",
    "summarize_request",
    "summarize_trials",
    "sweep",
    "timed",
]
