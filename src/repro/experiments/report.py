"""Paper-style table and series formatting.

Benches print the rows a paper table would contain and the series a
figure would plot; this module renders them as aligned ASCII so the
harness output is directly comparable to EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import ExperimentError


def fmt_float(value: float, digits: int = 4) -> str:
    """Fixed-point rendering used throughout reports."""
    return f"{value:.{digits}f}"


def fmt_bytes(size: float) -> str:
    """Human-readable byte count (binary units)."""
    magnitude = float(size)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(magnitude) < 1024.0 or unit == "TiB":
            if unit == "B":
                return f"{int(magnitude)} B"
            return f"{magnitude:.1f} {unit}"
        magnitude /= 1024.0
    raise ExperimentError("unreachable")  # pragma: no cover


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: str | None = None) -> str:
    """Render an aligned ASCII table."""
    if not headers:
        raise ExperimentError("a table needs headers")
    cells = [[str(cell) for cell in row] for row in rows]
    for row in cells:
        if len(row) != len(headers):
            raise ExperimentError(
                f"row has {len(row)} cells, expected {len(headers)}")
    widths = [len(header) for header in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    rule = "-+-".join("-" * width for width in widths)
    lines.append(" | ".join(header.ljust(width)
                            for header, width in zip(headers, widths)))
    lines.append(rule)
    for row in cells:
        lines.append(" | ".join(cell.ljust(width)
                                for cell, width in zip(row, widths)))
    return "\n".join(lines)


def format_markdown_table(headers: Sequence[str],
                          rows: Sequence[Sequence[Any]]) -> str:
    """Render a GitHub-flavoured markdown table (for EXPERIMENTS.md)."""
    if not headers:
        raise ExperimentError("a table needs headers")
    lines = ["| " + " | ".join(str(h) for h in headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        if len(row) != len(headers):
            raise ExperimentError(
                f"row has {len(row)} cells, expected {len(headers)}")
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def banner(title: str, width: int = 72) -> str:
    """Section banner used between bench outputs."""
    bar = "=" * width
    return f"\n{bar}\n{title}\n{bar}"
