"""Storage-engine constants shared across the package.

The defaults mirror the page organisation of mainstream commercial systems
(8 KiB pages, small fixed page header, 4-byte slot entries) so that the
``physical`` accounting mode of the engine produces realistic sizes, while
the ``payload`` mode strips all of these overheads and reproduces the
paper's analytical model exactly.
"""

from __future__ import annotations

#: Default page size in bytes (SQL Server uses 8 KiB pages).
DEFAULT_PAGE_SIZE: int = 8192

#: Bytes reserved at the start of every page for the page header
#: (page id, page type, slot count, free-space offset, flags, checksum).
PAGE_HEADER_SIZE: int = 16

#: Bytes per slot-directory entry (2-byte record offset + 2-byte length).
SLOT_SIZE: int = 4

#: Default dictionary pointer width in bytes. The paper treats the pointer
#: size ``p`` as a parameter (in general ``ceil(log2 d)`` bits); 2 bytes
#: covers dictionaries of up to 65536 distinct values and matches the
#: symbol width used by SQL Server page dictionaries.
DEFAULT_POINTER_BYTES: int = 2

#: Byte used to pad CHAR(k) values (an ASCII blank, as in the paper).
PAD_BYTE: bytes = b" "

#: Default leaf fill factor used when bulk loading B+-trees.
DEFAULT_FILL_FACTOR: float = 1.0

#: Minimum page size accepted by the engine. Small, but large enough for a
#: header, a couple of slots and a record; tests use tiny pages to force
#: many-page layouts cheaply.
MIN_PAGE_SIZE: int = 64
