"""repro — reproduction of *Estimating the Compression Fraction of an
Index using Sampling* (Idreos, Kaushik, Narasayya, Ramamurthy; ICDE 2010).

The package ships the paper's estimator (:class:`SampleCF`) together with
everything it runs on, built from scratch:

* a relational **storage engine** (:mod:`repro.storage`) — types, slotted
  pages, heap files, B+-tree clustered/non-clustered indexes;
* the **compression algorithms** the paper analyses and several
  extensions (:mod:`repro.compression`);
* **sampling designs** (:mod:`repro.sampling`) — with/without
  replacement, Bernoulli, reservoir (Vitter), and block-level;
* the **estimator core** (:mod:`repro.core`) — SampleCF, closed-form CF
  models, the analytic bounds of Theorems 1-3, distinct-value estimator
  baselines, and confidence intervals;
* **workload generators** (:mod:`repro.workloads`) and the
  **physical-design advisor** application (:mod:`repro.advisor`);
* the **experiment harness** (:mod:`repro.experiments`) that regenerates
  every table and figure (see EXPERIMENTS.md);
* the **estimation engine** (:mod:`repro.engine`) — plan/execute batches
  of estimation requests with shared materialized samples, LRU caching,
  and pluggable serial/thread-pool executors; every other layer's
  estimates run through it.

Quickstart::

    from repro import (SampleCF, NullSuppression, make_table,
                       true_cf_table)

    table = make_table(n=100_000, d=500, k=20, seed=7)
    estimator = SampleCF(NullSuppression())
    estimate = estimator.estimate_table(table, 0.01, ["a"], seed=7)
    truth = true_cf_table(table, ["a"], NullSuppression())
    print(estimate.estimate, truth)
"""

from repro._version import __version__
from repro.errors import (AdvisorError, CompressionError, EncodingError,
                          EstimationError, ExperimentError, PageError,
                          PageFormatError, PageFullError, ReproError,
                          SamplingError, SchemaError, StoreError)
from repro.storage import (BPlusTree, CharType, Column, HeapFile, Index,
                           IndexKind, Page, RID, Schema, Table,
                           single_char_schema)
from repro.compression import (CompressionAlgorithm, DictionaryCompression,
                               GlobalDictionaryCompression, NullSuppression,
                               PageCompression, PrefixCompression,
                               RunLengthEncoding, get_algorithm,
                               list_algorithms)
from repro.sampling import (BernoulliSampler, BlockSampler, ReservoirSampler,
                            WithReplacementSampler,
                            WithoutReplacementSampler, make_rng)
from repro.core import (ColumnHistogram, DistinctPlugInEstimator,
                        ErrorSummary, SampleCF, SampleCFEstimate,
                        dict_large_d_bound, dict_small_d_bound, example1,
                        ns_confidence_interval, ns_stddev_bound,
                        ns_variance_bound, ratio_error, sample_cf,
                        true_cf_histogram, true_cf_table)
from repro.workloads import (SCENARIOS, get_scenario, make_histogram,
                             make_table)
from repro.advisor import (CostModel, Query, TableStats, advise_from_data,
                           plan_capacity, select_indexes)
from repro.experiments import EXPERIMENTS, get_experiment
from repro.engine import (BatchResult, EstimationEngine, EstimationPlan,
                          EstimationRequest, MaterializedSample, PlanUnit,
                          ProcessPoolPlanExecutor, RequestResult,
                          SerialExecutor, ThreadPoolPlanExecutor,
                          default_engine, make_executor)
from repro.store import SampleStore, open_store, table_fingerprint

__all__ = [
    "__version__",
    # errors
    "AdvisorError", "CompressionError", "EncodingError", "EstimationError",
    "ExperimentError", "PageError", "PageFormatError", "PageFullError",
    "ReproError", "SamplingError", "SchemaError", "StoreError",
    # storage
    "BPlusTree", "CharType", "Column", "HeapFile", "Index", "IndexKind",
    "Page", "RID", "Schema", "Table", "single_char_schema",
    # compression
    "CompressionAlgorithm", "DictionaryCompression",
    "GlobalDictionaryCompression", "NullSuppression", "PageCompression",
    "PrefixCompression", "RunLengthEncoding", "get_algorithm",
    "list_algorithms",
    # sampling
    "BernoulliSampler", "BlockSampler", "ReservoirSampler",
    "WithReplacementSampler", "WithoutReplacementSampler", "make_rng",
    # core
    "ColumnHistogram", "DistinctPlugInEstimator", "ErrorSummary",
    "SampleCF", "SampleCFEstimate", "dict_large_d_bound",
    "dict_small_d_bound", "example1", "ns_confidence_interval",
    "ns_stddev_bound", "ns_variance_bound", "ratio_error", "sample_cf",
    "true_cf_histogram", "true_cf_table",
    # workloads
    "SCENARIOS", "get_scenario", "make_histogram", "make_table",
    # advisor
    "CostModel", "Query", "TableStats", "advise_from_data",
    "plan_capacity", "select_indexes",
    # experiments
    "EXPERIMENTS", "get_experiment",
    # engine
    "BatchResult", "EstimationEngine", "EstimationPlan",
    "EstimationRequest", "MaterializedSample", "PlanUnit",
    "ProcessPoolPlanExecutor", "RequestResult", "SerialExecutor",
    "ThreadPoolPlanExecutor", "default_engine", "make_executor",
    # store
    "SampleStore", "open_store", "table_fingerprint",
]
