"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class. Subsystems raise the most specific
subclass that applies; constructors accept a human-readable message and
optionally attach structured context as attributes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SchemaError(ReproError):
    """A schema definition or a row does not satisfy schema constraints."""


class EncodingError(ReproError):
    """A value cannot be encoded to, or decoded from, its on-page bytes."""


class PageError(ReproError):
    """Base class for page-level storage errors."""


class PageFullError(PageError):
    """A record does not fit into the remaining free space of a page."""

    def __init__(self, message: str, *, record_bytes: int | None = None,
                 free_bytes: int | None = None) -> None:
        super().__init__(message)
        self.record_bytes = record_bytes
        self.free_bytes = free_bytes


class PageFormatError(PageError):
    """A serialized page image is malformed and cannot be parsed."""


class RecordNotFoundError(ReproError, LookupError):
    """A RID or key does not resolve to a stored record."""


class IndexError_(ReproError):
    """An index operation failed (build, insert, or scan).

    Named with a trailing underscore to avoid shadowing the built-in
    :class:`IndexError`.
    """


class CompressionError(ReproError):
    """A compression algorithm could not process the given records."""


class KernelUnavailable(ReproError):
    """No vectorized size kernel covers this algorithm/column combination.

    Raised by :meth:`CompressionAlgorithm.size_of` implementations to
    signal "use the scalar path"; callers treat it as a routing decision,
    never as a failure, which is why it is not a
    :class:`CompressionError` subclass (a genuine compression failure
    must not be silently absorbed by the fallback).
    """


class SamplingError(ReproError):
    """A sampler received invalid parameters or an empty population."""


class EstimationError(ReproError):
    """An estimator could not produce an estimate (degenerate input)."""


class StoreError(ReproError):
    """The persistent sample/estimate store cannot serve a request."""


class TransientStoreError(StoreError):
    """A store failure that may clear on retry.

    Lock timeouts, interrupted syscalls, a momentarily full disk: the
    operation was well-formed and the store is structurally sound, so
    the engine's :class:`~repro.faults.RetryPolicy` targets exactly
    this class — and nothing broader — before degrading.
    """


class PermanentStoreError(StoreError):
    """A store failure no retry can fix.

    Format-version mismatches, malformed keys, unserializable payloads:
    retrying would burn the deadline repeating the same failure, so
    these degrade immediately (materialize / skip persistence).
    """


class InjectedFault(ReproError):
    """Raised by fault-injection hooks that simulate hard process death.

    Deliberately *not* a :class:`StoreError`: the degradation paths
    must never absorb a simulated crash — the torture harness catches
    it at the call site instead (subprocess variants ``os._exit`` and
    never raise at all).
    """


class AdvisorError(ReproError):
    """The physical-design advisor received an infeasible problem."""


class ExperimentError(ReproError):
    """An experiment specification or run is invalid."""
