"""Confidence intervals for compression-fraction estimates.

Two complementary constructions:

* :func:`ns_confidence_interval` — distribution-free normal interval for
  null suppression, powered by Theorem 1's standard-deviation bound.
  Because the bound is worst-case, the interval is conservative (its
  actual coverage exceeds the nominal level), which the tests verify.
* :func:`bootstrap_cf_ci` — percentile bootstrap over the *sample
  histogram*: resample ``r`` rows from the sample with replacement,
  recompute the plug-in CF, take percentiles. Works for any algorithm
  with a histogram model (including dictionary compression, where no
  clean parametric interval exists).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.special import ndtri

from repro.errors import EstimationError
from repro.sampling.rng import SeedLike, make_rng
from repro.sampling.row_samplers import WithReplacementSampler
from repro.compression.base import CompressionAlgorithm
from repro.core.bounds import CFInterval, ns_stddev_bound_range
from repro.core.cf_models import ColumnHistogram


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided confidence interval around a point estimate."""

    estimate: float
    low: float
    high: float
    confidence: float
    method: str

    def __post_init__(self) -> None:
        if not self.low <= self.estimate <= self.high:
            raise EstimationError(
                f"malformed interval [{self.low}, {self.high}] around "
                f"{self.estimate}")

    @property
    def width(self) -> float:
        return self.high - self.low

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval."""
        return self.low <= value <= self.high


def _z_value(confidence: float) -> float:
    if not 0.0 < confidence < 1.0:
        raise EstimationError(
            f"confidence must be in (0, 1), got {confidence}")
    return float(ndtri(0.5 + confidence / 2.0))


def ns_confidence_interval(estimate: float, r: int,
                           confidence: float = 0.95,
                           stored_fraction_range: tuple[float, float] =
                           (0.0, 1.0)) -> ConfidenceInterval:
    """Conservative normal interval for a null-suppression estimate.

    Theorem 1 bounds the estimator's standard deviation by
    ``(b - a) / (2 sqrt(r))`` where ``[a, b]`` contains the per-tuple
    stored fraction (``[0, 1]`` with no further knowledge); the interval
    is ``estimate ± z * bound`` clipped to the feasible CF range.
    """
    if r <= 0:
        raise EstimationError(f"sample size must be positive, got {r}")
    low_fraction, high_fraction = stored_fraction_range
    sigma = ns_stddev_bound_range(r, low_fraction, high_fraction)
    z = _z_value(confidence)
    half = z * sigma
    return ConfidenceInterval(
        estimate=estimate,
        low=max(0.0, estimate - half),
        high=min(1.0, max(estimate, estimate + half)),
        confidence=confidence,
        method="normal_theorem1")


def bootstrap_cf_ci(sample: ColumnHistogram,
                    algorithm: CompressionAlgorithm,
                    confidence: float = 0.95,
                    n_boot: int = 200,
                    seed: SeedLike = None,
                    **layout) -> ConfidenceInterval:
    """Percentile bootstrap interval from a sampled histogram.

    Resamples the observed sample (with replacement, same size), so it
    captures the sampling variability of the plug-in CF without any
    distributional assumption. Note that for dictionary compression the
    plug-in is *biased* (Section III-B) and the bootstrap inherits that
    bias — the interval is about variability, not about correcting bias.
    """
    if n_boot < 10:
        raise EstimationError(
            f"need at least 10 bootstrap replicates, got {n_boot}")
    rng = make_rng(seed)
    sampler = WithReplacementSampler()
    point = float(algorithm.cf_from_histogram(sample, **layout))
    replicates = np.empty(n_boot, dtype=np.float64)
    for b in range(n_boot):
        resample = sampler.sample_histogram(sample, sample.n, rng)
        replicates[b] = algorithm.cf_from_histogram(resample, **layout)
    tail = (1.0 - confidence) / 2.0
    low = float(np.quantile(replicates, tail))
    high = float(np.quantile(replicates, 1.0 - tail))
    return ConfidenceInterval(
        estimate=point,
        low=min(low, point),
        high=max(high, point),
        confidence=confidence,
        method="bootstrap_percentile")


def _mean_extrapolation_halfwidth(sigma_trial: float, t: int,
                                  total_trials: int,
                                  confidence: float) -> float:
    """Half-width of a CI for a ``T``-trial mean seen through ``t`` trials.

    Write ``M_T = (t * M_t + (T - t) * M_rest) / T`` with the trials
    i.i.d. and each trial's estimator having standard deviation at most
    ``sigma_trial``. Then ``M_T - M_t = (T - t)/T * (M_rest - M_t)``
    and ``Var[M_rest - M_t] <= sigma^2 (1/(T - t) + 1/t)``, giving the
    closed-form half-width below. It vanishes at ``t == T``.
    """
    if not 1 <= t <= total_trials:
        raise EstimationError(
            f"observed {t} trials of a {total_trials}-trial estimate")
    if t == total_trials:
        return 0.0
    remaining = total_trials - t
    z = _z_value(confidence)
    spread = math.sqrt(1.0 / remaining + 1.0 / t)
    return z * sigma_trial * (remaining / total_trials) * spread


def ns_trial_mean_interval(values, total_trials: int, r: int,
                           stored_fraction_range: tuple[float, float] =
                           (0.0, 1.0),
                           confidence: float = 0.999) -> CFInterval:
    """Theorem 1 interval for an NS multi-trial mean, from a prefix.

    ``values`` are the first ``t`` trial estimates of a
    ``total_trials``-trial request (each trial over ``r`` sampled
    rows). Theorem 1 bounds every trial's standard deviation by
    ``(b - a) / (2 sqrt(r))``, so the final mean lies within the
    closed-form half-width of the observed partial mean. The interval
    is probabilistic (``deterministic=False``) but doubly conservative:
    Popoviciu is worst-case and the trials are independent.
    """
    if r <= 0:
        raise EstimationError(f"sample size must be positive, got {r}")
    t = len(values)
    low_fraction, high_fraction = stored_fraction_range
    sigma = ns_stddev_bound_range(r, low_fraction, high_fraction)
    half = _mean_extrapolation_halfwidth(sigma, t, total_trials,
                                         confidence)
    mean_t = float(np.mean(np.asarray(values, dtype=np.float64)))
    return CFInterval(max(0.0, mean_t - half), mean_t + half,
                      deterministic=False)


def empirical_trial_mean_interval(values, total_trials: int,
                                  inflation: float = 4.0,
                                  confidence: float = 0.999,
                                  ) -> CFInterval | None:
    """Distribution-free-ish interval for a multi-trial mean.

    For algorithms without a Theorem 1 analogue the only handle on a
    trial's variability is the observed spread itself: the sample
    standard deviation over the first ``t >= 2`` trials, inflated by
    ``inflation`` to hedge against underestimating sigma from few
    observations. Returns ``None`` when fewer than two trials exist
    (no spread to observe). Deliberately marked non-deterministic;
    callers intersect it with a deterministic envelope so an unlucky
    spread can only weaken pruning, never unsound-crash it.
    """
    if inflation < 1.0:
        raise EstimationError(
            f"inflation must be at least 1, got {inflation}")
    t = len(values)
    if t < 2:
        return None
    arr = np.asarray(values, dtype=np.float64)
    sigma = float(arr.std(ddof=1)) * inflation
    half = _mean_extrapolation_halfwidth(sigma, t, total_trials,
                                         confidence)
    mean_t = float(arr.mean())
    return CFInterval(max(0.0, mean_t - half), mean_t + half,
                      deterministic=False)


def ns_sample_size_for_width(target_halfwidth: float,
                             confidence: float = 0.95,
                             stored_fraction_range: tuple[float, float] =
                             (0.0, 1.0)) -> int:
    """Smallest ``r`` whose Theorem 1 interval half-width meets a target.

    Inverts ``z (b - a) / (2 sqrt(r)) <= target``: the planning question
    a physical-design tool asks before paying for a sample scan.
    """
    if target_halfwidth <= 0:
        raise EstimationError(
            f"target half-width must be positive, got {target_halfwidth}")
    low_fraction, high_fraction = stored_fraction_range
    if not 0.0 <= low_fraction <= high_fraction:
        raise EstimationError(
            f"invalid stored-fraction range [{low_fraction}, "
            f"{high_fraction}]")
    z = _z_value(confidence)
    spread = high_fraction - low_fraction
    if spread == 0.0:
        return 1
    needed = (z * spread / (2.0 * target_halfwidth)) ** 2
    return max(1, math.ceil(needed))
