"""Compression-fraction and estimator-accuracy metrics.

Definitions follow Section II of the paper:

* **Compression fraction**: ``CF = size(compressed) / size(uncompressed)``
  — between 0 and 1 outside degenerate cases; lower is better.
* **Ratio error** of an estimate ``CF'`` against the truth ``CF``:
  ``max(CF/CF', CF'/CF)`` — always >= 1, with 1 meaning exact.

:class:`ErrorSummary` aggregates repeated estimation trials into the
quantities the paper's results are stated in (bias, variance/std-dev,
expected ratio error) plus the usual extras (RMSE, quantiles).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import EstimationError


def compression_fraction(compressed_bytes: int | float,
                         uncompressed_bytes: int | float) -> float:
    """``CF = compressed / uncompressed``; denominator must be positive."""
    if uncompressed_bytes <= 0:
        raise EstimationError(
            f"uncompressed size must be positive, got {uncompressed_bytes}")
    if compressed_bytes < 0:
        raise EstimationError(
            f"compressed size must be non-negative, got {compressed_bytes}")
    return compressed_bytes / uncompressed_bytes


def space_savings(cf: float) -> float:
    """``1 - CF``: fraction of storage reclaimed by compressing."""
    return 1.0 - cf


def ratio_error(true_cf: float, estimated_cf: float) -> float:
    """``max(CF/CF', CF'/CF)``; >= 1, equality iff the estimate is exact."""
    if true_cf <= 0 or estimated_cf <= 0:
        raise EstimationError(
            f"ratio error needs positive fractions, got true={true_cf}, "
            f"estimate={estimated_cf}")
    return max(true_cf / estimated_cf, estimated_cf / true_cf)


@dataclass(frozen=True)
class ErrorSummary:
    """Accuracy of an estimator over repeated independent trials."""

    true_value: float
    trials: int
    mean: float
    std: float
    bias: float
    mse: float
    mean_ratio_error: float
    max_ratio_error: float
    q05: float
    q50: float
    q95: float

    @property
    def variance(self) -> float:
        return self.std ** 2

    @property
    def rmse(self) -> float:
        return math.sqrt(self.mse)

    @property
    def relative_bias(self) -> float:
        """Bias as a fraction of the true value."""
        if self.true_value == 0:
            raise EstimationError("relative bias undefined for truth 0")
        return self.bias / self.true_value

    @classmethod
    def from_estimates(cls, true_value: float,
                       estimates: Sequence[float] | np.ndarray,
                       ) -> "ErrorSummary":
        """Summarise raw estimates from repeated trials."""
        data = np.asarray(estimates, dtype=np.float64)
        if data.size == 0:
            raise EstimationError("no estimates to summarise")
        if true_value <= 0:
            raise EstimationError(
                f"true value must be positive, got {true_value}")
        if np.any(data <= 0):
            raise EstimationError("estimates must be positive")
        ratio_errors = np.maximum(true_value / data, data / true_value)
        std = float(data.std(ddof=1)) if data.size > 1 else 0.0
        return cls(
            true_value=float(true_value),
            trials=int(data.size),
            mean=float(data.mean()),
            std=std,
            bias=float(data.mean() - true_value),
            mse=float(((data - true_value) ** 2).mean()),
            mean_ratio_error=float(ratio_errors.mean()),
            max_ratio_error=float(ratio_errors.max()),
            q05=float(np.quantile(data, 0.05)),
            q50=float(np.quantile(data, 0.50)),
            q95=float(np.quantile(data, 0.95)),
        )

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (f"truth={self.true_value:.6f} mean={self.mean:.6f} "
                f"bias={self.bias:+.6f} std={self.std:.6f} "
                f"ratio_err(mean={self.mean_ratio_error:.4f}, "
                f"max={self.max_ratio_error:.4f}) trials={self.trials}")
