"""Analytical guarantees: Theorems 1-3 and Example 1 of the paper.

Every bound is implemented as a plain function so the benchmark harness
can overlay "measured" against "bound" for each figure. Derivations are
spelled out in the docstrings because the paper's camera-ready omits the
proofs' arithmetic; all steps use only the paper's own definitions.

Notation (paper Table I): ``n`` rows, ``d`` distinct values, ``k`` column
width, ``r`` sample rows, ``f = r/n`` sampling fraction, ``p`` dictionary
pointer bytes, ``l_i`` null-suppressed lengths.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import EstimationError


def _require_positive(**named_values: float) -> None:
    for name, value in named_values.items():
        if value is None or value <= 0:
            raise EstimationError(f"{name} must be positive, got {value}")


def resolve_sample_size(n: int | None = None, r: int | None = None,
                        f: float | None = None) -> int:
    """Resolve ``r`` from any consistent subset of ``n``, ``r``, ``f``."""
    if r is not None:
        _require_positive(r=r)
        return int(r)
    if n is not None and f is not None:
        _require_positive(n=n, f=f)
        if f > 1:
            raise EstimationError(f"sampling fraction {f} exceeds 1")
        return max(1, round(f * n))
    raise EstimationError("need r, or both n and f, to fix the sample size")


# ----------------------------------------------------------------------
# Theorem 1 — null suppression
# ----------------------------------------------------------------------
def ns_variance_bound(n: int | None = None, r: int | None = None,
                      f: float | None = None) -> float:
    """Theorem 1 variance bound: ``Var[CF'_NS] <= 1/(4r)``.

    Derivation: the estimate is the mean of ``r`` i.i.d. terms
    ``X_j = (l_j + c)/k`` (the stored fraction of the sampled tuple),
    each confined to ``(0, 1]`` because tuple lengths are bounded by the
    column width. Popoviciu's inequality gives ``Var[X] <= 1/4`` for any
    random variable supported on an interval of length 1, hence the mean
    of ``r`` independent copies has variance at most ``1/(4r)``.
    """
    sample = resolve_sample_size(n, r, f)
    return 1.0 / (4.0 * sample)


def ns_stddev_bound(n: int | None = None, r: int | None = None,
                    f: float | None = None) -> float:
    """Theorem 1 std-dev bound: ``sigma(CF'_NS) <= (1/2) sqrt(1/(f n))``."""
    return math.sqrt(ns_variance_bound(n, r, f))


def ns_stddev_bound_range(r: int, low_fraction: float,
                          high_fraction: float) -> float:
    """Sharper Theorem 1 bound using the actual stored-fraction range.

    When the per-tuple stored fraction ``(l + c)/k`` is known to lie in
    ``[a, b]`` (e.g. from schema knowledge: minimum and maximum value
    lengths), Popoviciu tightens to ``sigma <= (b - a) / (2 sqrt(r))``.
    """
    _require_positive(r=r)
    if not 0.0 <= low_fraction <= high_fraction:
        raise EstimationError(
            f"invalid stored-fraction range [{low_fraction}, "
            f"{high_fraction}]")
    return (high_fraction - low_fraction) / (2.0 * math.sqrt(r))


def example1() -> dict[str, float]:
    """The paper's Example 1: n = 100M, r = 1M (1%) => sigma <= 0.0005."""
    n = 100_000_000
    r = 1_000_000
    return {
        "n": float(n),
        "r": float(r),
        "f": r / n,
        "stddev_bound": ns_stddev_bound(r=r),
    }


# ----------------------------------------------------------------------
# Theorems 2 and 3 — dictionary compression (simplified global model)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RatioErrorBound:
    """A two-sided ratio-error bound with its components.

    ``overestimate`` bounds ``CF'/CF`` (sampling sees too many distincts
    per row is impossible, so this side comes from ``d' <= d``);
    ``underestimate`` bounds ``CF/CF'`` (the sample misses values).
    """

    overestimate: float
    underestimate: float

    @property
    def bound(self) -> float:
        return max(self.overestimate, self.underestimate)


def dict_small_d_bound(n: int, d: int, k: int, p: int, f: float,
                       ) -> RatioErrorBound:
    """Theorem 2 (small d): deterministic ratio-error bound.

    With the simplified model ``CF = d/n + p/k`` and the estimate
    ``CF' = d'/r + p/k``:

    * Underestimate side: ``CF' >= p/k`` always, so
      ``CF/CF' <= 1 + d k / (n p)``.
    * Overestimate side: ``d' <= min(r, d)`` gives ``d'/r <= d/r``, so
      ``CF'/CF <= 1 + d k / (f n p)``.

    Both converge to 1 whenever ``d = o(n)`` with ``f`` fixed — the
    paper's "small d" regime where the ``p/k`` term dominates. The
    returned bound is deterministic (holds for every sample), which is
    stronger than the theorem's expected-ratio-error statement. The
    derivation is in terms of the drawn sample size ``r = f n``; when a
    sampler rounds ``r`` to an integer, pass the effective fraction
    ``r / n`` — at tiny ``r`` the nominal fraction can overstate the
    sample by up to half a row, which is enough to break the
    deterministic claim.
    """
    _require_positive(n=n, d=d, k=k, p=p, f=f)
    if f > 1:
        raise EstimationError(f"sampling fraction {f} exceeds 1")
    underestimate = 1.0 + (d * k) / (n * p)
    overestimate = 1.0 + (d * k) / (f * n * p)
    return RatioErrorBound(overestimate=overestimate,
                           underestimate=underestimate)


def dict_large_d_bound(alpha: float, f: float, k: int, p: int,
                       ) -> RatioErrorBound:
    """Theorem 3 (large d): constant expected-ratio-error bound.

    Assume ``d >= alpha * n``. Write ``beta = p/k``.

    * Overestimate side (deterministic): ``d' <= r`` gives
      ``CF' <= 1 + beta`` while ``CF >= alpha + beta``, so
      ``CF'/CF <= (1 + beta) / (alpha + beta)``.
    * Underestimate side (in expectation): a with-replacement sample of
      ``r = f n`` rows retains each distinct value with probability at
      least ``1 - (1 - 1/n)^r >= 1 - e^{-f}`` (worst case: the value
      occurs once), so ``E[d'] >= alpha n (1 - e^{-f})`` and
      ``E[d'/r] >= alpha (1 - e^{-f}) / f``. Since ``CF <= 1 + beta``,
      ``CF / (E[d']/r + beta) <= (1 + beta) / (alpha (1-e^{-f})/f + beta)``.
      Concentration of ``d'`` (it is a 1-Lipschitz function of the
      independent draws, so McDiarmid applies with deviation
      ``O(sqrt(r))``) turns this first-order bound into an expected
      ratio-error bound up to lower-order terms; the benches confirm the
      constant empirically.

    Both sides are constants independent of ``n`` — the theorem's claim.
    """
    _require_positive(alpha=alpha, f=f, k=k, p=p)
    if alpha > 1:
        raise EstimationError(f"alpha = d/n cannot exceed 1, got {alpha}")
    if f > 1:
        raise EstimationError(f"sampling fraction {f} exceeds 1")
    beta = p / k
    overestimate = (1.0 + beta) / (alpha + beta)
    retained = alpha * (1.0 - math.exp(-f)) / f
    underestimate = (1.0 + beta) / (retained + beta)
    return RatioErrorBound(overestimate=overestimate,
                           underestimate=underestimate)


def theorem2_minimum_n(d_of_n, k: int, p: int, f: float,
                       epsilon: float, n_start: int = 2,
                       n_limit: int = 10**12) -> int:
    """Smallest ``n`` at which Theorem 2's bound drops below ``1 + eps``.

    ``d_of_n`` is the distinct-count function (the theorem quantifies
    over functions ``d(n) = o(n)``); doubling search against
    :func:`dict_small_d_bound`.
    """
    _require_positive(k=k, p=p, f=f, epsilon=epsilon)
    n = max(2, n_start)
    while n <= n_limit:
        d = max(1, int(d_of_n(n)))
        if d <= n and dict_small_d_bound(n, d, k, p, f).bound <= 1 + epsilon:
            return n
        n *= 2
    raise EstimationError(
        f"bound never reached 1 + {epsilon} below n = {n_limit}; "
        "is d(n) really o(n)?")
