"""Analytical guarantees: Theorems 1-3 and Example 1 of the paper.

Every bound is implemented as a plain function so the benchmark harness
can overlay "measured" against "bound" for each figure. Derivations are
spelled out in the docstrings because the paper's camera-ready omits the
proofs' arithmetic; all steps use only the paper's own definitions.

Notation (paper Table I): ``n`` rows, ``d`` distinct values, ``k`` column
width, ``r`` sample rows, ``f = r/n`` sampling fraction, ``p`` dictionary
pointer bytes, ``l_i`` null-suppressed lengths.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import EstimationError
from repro.storage.types import (BigIntType, CharType, DataType,
                                 IntegerType)


def _require_positive(**named_values: float) -> None:
    for name, value in named_values.items():
        if value is None or value <= 0:
            raise EstimationError(f"{name} must be positive, got {value}")


def resolve_sample_size(n: int | None = None, r: int | None = None,
                        f: float | None = None) -> int:
    """Resolve ``r`` from any consistent subset of ``n``, ``r``, ``f``."""
    if r is not None:
        _require_positive(r=r)
        return int(r)
    if n is not None and f is not None:
        _require_positive(n=n, f=f)
        if f > 1:
            raise EstimationError(f"sampling fraction {f} exceeds 1")
        return max(1, round(f * n))
    raise EstimationError("need r, or both n and f, to fix the sample size")


# ----------------------------------------------------------------------
# Theorem 1 — null suppression
# ----------------------------------------------------------------------
def ns_variance_bound(n: int | None = None, r: int | None = None,
                      f: float | None = None) -> float:
    """Theorem 1 variance bound: ``Var[CF'_NS] <= 1/(4r)``.

    Derivation: the estimate is the mean of ``r`` i.i.d. terms
    ``X_j = (l_j + c)/k`` (the stored fraction of the sampled tuple),
    each confined to ``(0, 1]`` because tuple lengths are bounded by the
    column width. Popoviciu's inequality gives ``Var[X] <= 1/4`` for any
    random variable supported on an interval of length 1, hence the mean
    of ``r`` independent copies has variance at most ``1/(4r)``.
    """
    sample = resolve_sample_size(n, r, f)
    return 1.0 / (4.0 * sample)


def ns_stddev_bound(n: int | None = None, r: int | None = None,
                    f: float | None = None) -> float:
    """Theorem 1 std-dev bound: ``sigma(CF'_NS) <= (1/2) sqrt(1/(f n))``."""
    return math.sqrt(ns_variance_bound(n, r, f))


def ns_stddev_bound_range(r: int, low_fraction: float,
                          high_fraction: float) -> float:
    """Sharper Theorem 1 bound using the actual stored-fraction range.

    When the per-tuple stored fraction ``(l + c)/k`` is known to lie in
    ``[a, b]`` (e.g. from schema knowledge: minimum and maximum value
    lengths), Popoviciu tightens to ``sigma <= (b - a) / (2 sqrt(r))``.
    """
    _require_positive(r=r)
    if not 0.0 <= low_fraction <= high_fraction:
        raise EstimationError(
            f"invalid stored-fraction range [{low_fraction}, "
            f"{high_fraction}]")
    return (high_fraction - low_fraction) / (2.0 * math.sqrt(r))


def example1() -> dict[str, float]:
    """The paper's Example 1: n = 100M, r = 1M (1%) => sigma <= 0.0005."""
    n = 100_000_000
    r = 1_000_000
    return {
        "n": float(n),
        "r": float(r),
        "f": r / n,
        "stddev_bound": ns_stddev_bound(r=r),
    }


# ----------------------------------------------------------------------
# Theorems 2 and 3 — dictionary compression (simplified global model)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RatioErrorBound:
    """A two-sided ratio-error bound with its components.

    ``overestimate`` bounds ``CF'/CF`` (sampling sees too many distincts
    per row is impossible, so this side comes from ``d' <= d``);
    ``underestimate`` bounds ``CF/CF'`` (the sample misses values).
    """

    overestimate: float
    underestimate: float

    @property
    def bound(self) -> float:
        return max(self.overestimate, self.underestimate)


def dict_small_d_bound(n: int, d: int, k: int, p: int, f: float,
                       ) -> RatioErrorBound:
    """Theorem 2 (small d): deterministic ratio-error bound.

    With the simplified model ``CF = d/n + p/k`` and the estimate
    ``CF' = d'/r + p/k``:

    * Underestimate side: ``CF' >= p/k`` always, so
      ``CF/CF' <= 1 + d k / (n p)``.
    * Overestimate side: ``d' <= min(r, d)`` gives ``d'/r <= d/r``, so
      ``CF'/CF <= 1 + d k / (f n p)``.

    Both converge to 1 whenever ``d = o(n)`` with ``f`` fixed — the
    paper's "small d" regime where the ``p/k`` term dominates. The
    returned bound is deterministic (holds for every sample), which is
    stronger than the theorem's expected-ratio-error statement. The
    derivation is in terms of the drawn sample size ``r = f n``; when a
    sampler rounds ``r`` to an integer, pass the effective fraction
    ``r / n`` — at tiny ``r`` the nominal fraction can overstate the
    sample by up to half a row, which is enough to break the
    deterministic claim.
    """
    _require_positive(n=n, d=d, k=k, p=p, f=f)
    if f > 1:
        raise EstimationError(f"sampling fraction {f} exceeds 1")
    underestimate = 1.0 + (d * k) / (n * p)
    overestimate = 1.0 + (d * k) / (f * n * p)
    return RatioErrorBound(overestimate=overestimate,
                           underestimate=underestimate)


def dict_large_d_bound(alpha: float, f: float, k: int, p: int,
                       ) -> RatioErrorBound:
    """Theorem 3 (large d): constant expected-ratio-error bound.

    Assume ``d >= alpha * n``. Write ``beta = p/k``.

    * Overestimate side (deterministic): ``d' <= r`` gives
      ``CF' <= 1 + beta`` while ``CF >= alpha + beta``, so
      ``CF'/CF <= (1 + beta) / (alpha + beta)``.
    * Underestimate side (in expectation): a with-replacement sample of
      ``r = f n`` rows retains each distinct value with probability at
      least ``1 - (1 - 1/n)^r >= 1 - e^{-f}`` (worst case: the value
      occurs once), so ``E[d'] >= alpha n (1 - e^{-f})`` and
      ``E[d'/r] >= alpha (1 - e^{-f}) / f``. Since ``CF <= 1 + beta``,
      ``CF / (E[d']/r + beta) <= (1 + beta) / (alpha (1-e^{-f})/f + beta)``.
      Concentration of ``d'`` (it is a 1-Lipschitz function of the
      independent draws, so McDiarmid applies with deviation
      ``O(sqrt(r))``) turns this first-order bound into an expected
      ratio-error bound up to lower-order terms; the benches confirm the
      constant empirically.

    Both sides are constants independent of ``n`` — the theorem's claim.
    """
    _require_positive(alpha=alpha, f=f, k=k, p=p)
    if alpha > 1:
        raise EstimationError(f"alpha = d/n cannot exceed 1, got {alpha}")
    if f > 1:
        raise EstimationError(f"sampling fraction {f} exceeds 1")
    beta = p / k
    overestimate = (1.0 + beta) / (alpha + beta)
    retained = alpha * (1.0 - math.exp(-f)) / f
    underestimate = (1.0 + beta) / (retained + beta)
    return RatioErrorBound(overestimate=overestimate,
                           underestimate=underestimate)


# ----------------------------------------------------------------------
# CF intervals — the what-if advisor's pruning currency
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CFInterval:
    """A closed interval guaranteed (or believed) to contain a CF.

    ``deterministic=True`` means the interval holds for *every* sample
    (it came from schema arithmetic or an exhaustive case split);
    ``False`` marks probabilistic intervals (Theorem 1 confidence
    bounds, empirical spreads) that hold with high probability only.
    The distinction travels through :meth:`intersect` so a pruning
    decision knows the strength of the evidence it rests on.
    """

    low: float
    high: float
    deterministic: bool = True

    def __post_init__(self) -> None:
        if math.isnan(self.low) or math.isnan(self.high):
            raise EstimationError("CF interval bounds cannot be NaN")
        if self.low > self.high:
            raise EstimationError(
                f"malformed CF interval [{self.low}, {self.high}]")
        if self.low < 0.0:
            raise EstimationError(
                f"a compression fraction cannot be negative, interval "
                f"starts at {self.low}")

    @property
    def width(self) -> float:
        return self.high - self.low

    @property
    def is_point(self) -> bool:
        return self.low == self.high

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def intersect(self, other: "CFInterval") -> "CFInterval":
        """Tightest interval consistent with both.

        If the two are disjoint — which can only happen when a
        probabilistic operand is invalid — the call degrades to the
        deterministic operand (or ``self``) instead of fabricating an
        empty interval, so a missed confidence bound can never crash a
        pruning pass, only weaken it.
        """
        low = max(self.low, other.low)
        high = min(self.high, other.high)
        if low > high:
            if self.deterministic and not other.deterministic:
                return self
            if other.deterministic and not self.deterministic:
                return other
            return self
        return CFInterval(low, high,
                          self.deterministic and other.deterministic)


#: The interval that claims nothing: any CF, any expansion.
TRIVIAL_CF_INTERVAL = CFInterval(0.0, math.inf, deterministic=True)


def ns_stored_size_range(dtype: DataType, mode: str = "trailing",
                         ) -> tuple[int, int] | None:
    """Deterministic [min, max] stored bytes of one NS value.

    Mirrors :func:`repro.compression.null_suppression.ns_stored_size`
    case by case: a CHAR(k) body survives with 0..k bytes after
    trailing-pad stripping (0..2k in ``runs`` mode, where escape
    tokens can double a pathological value) behind its length header;
    integers store 1 length byte plus 1..width minimal two's-complement
    bytes. Returns ``None`` for types NS cannot bound without data
    (variable-width columns), which callers must treat as "no bound".
    """
    from repro.compression.null_suppression import ns_header_bytes

    if isinstance(dtype, CharType):
        header = ns_header_bytes(dtype, mode)
        body_max = dtype.k if mode == "trailing" else 2 * dtype.k
        return (header, header + body_max)
    if isinstance(dtype, (IntegerType, BigIntType)):
        return (2, 1 + dtype.fixed_size)
    return None


def ns_prior_cf_interval(dtypes: Sequence[DataType],
                         mode: str = "trailing") -> CFInterval:
    """Theorem 1's deterministic envelope for an NS estimate.

    For a fixed-width record layout every leaf entry stores exactly
    ``U = sum(fixed widths)`` uncompressed bytes, so the payload CF —
    the mean of the per-entry stored fractions — is confined to
    ``[sum(min_i)/U, sum(max_i)/U]`` for *any* sample (and for the
    exact CF of the full index, by the same argument). This is the
    ``[a, b]`` range Theorem 1's sharper Popoviciu form
    (:func:`ns_stddev_bound_range`) wants, exposed as an interval so
    the what-if advisor can prune candidates before estimating them.
    """
    minimum = 0
    maximum = 0
    uncompressed = 0
    for dtype in dtypes:
        span = ns_stored_size_range(dtype, mode)
        if span is None or dtype.fixed_size is None:
            return TRIVIAL_CF_INTERVAL
        minimum += span[0]
        maximum += span[1]
        uncompressed += dtype.fixed_size
    if uncompressed <= 0:
        return TRIVIAL_CF_INTERVAL
    return CFInterval(minimum / uncompressed, maximum / uncompressed,
                      deterministic=True)


def dict_prior_cf_interval(dtypes: Sequence[DataType], r: int,
                           pointer_bytes: int | None,
                           entry_storage: str = "fixed") -> CFInterval:
    """Theorem 2's deterministic envelope for a dictionary estimate.

    The paper's simplified model ``CF = d/n + p/k`` brackets the codec
    exactly once ``d`` is replaced by its extreme values: a sample of
    ``r`` rows observes between 1 and ``r`` distinct values per column,
    so per column the payload lies in ``[r*p_min + e_min,
    r*p_max + r*e_max]`` (pointers plus dictionary entries). With a
    fixed pointer width the ``p`` terms coincide; a derived width
    ranges over ``[1, pointer_bytes_for(r)]``. Holds for every sample
    and for the exact CF (``d <= n`` plays the role of ``d' <= r``),
    whether the dictionary is page-scoped (each page holds at least one
    and at most all of its rows' values) or index-scoped.
    """
    from repro.compression.dictionary import pointer_bytes_for
    from repro.compression.null_suppression import ns_header_bytes

    _require_positive(r=r)
    low = 0.0
    high = 0.0
    uncompressed = 0
    for dtype in dtypes:
        width = dtype.fixed_size
        if width is None:
            return TRIVIAL_CF_INTERVAL
        if pointer_bytes is not None:
            p_min = p_max = pointer_bytes
        else:
            p_min, p_max = 1, pointer_bytes_for(r)
        if entry_storage == "fixed":
            entry_min, entry_max = width, width
        else:
            try:
                header = ns_header_bytes(dtype)
            except Exception:
                return TRIVIAL_CF_INTERVAL
            entry_min, entry_max = header, header + width
        # At least one dictionary entry exists somewhere; at most every
        # row contributes one (per page or globally alike).
        low += r * p_min + entry_min
        high += r * p_max + r * entry_max
        uncompressed += width
    if uncompressed <= 0:
        return TRIVIAL_CF_INTERVAL
    total_uncompressed = r * uncompressed
    return CFInterval(low / total_uncompressed, high / total_uncompressed,
                      deterministic=True)


def mix_trials_interval(prior: CFInterval, values: Sequence[float],
                        total_trials: int) -> CFInterval:
    """Deterministic interval for a ``total_trials``-mean given a prefix.

    The eager advisor's per-candidate estimate is the mean over
    ``total_trials`` trials. After observing the first ``t`` of them,
    that mean equals ``(t * mean_t + sum of the missing trials) / T``,
    and each missing trial lies in ``prior`` — so the full mean is
    deterministically confined to the convex mix below. The interval
    tightens linearly in ``t`` and collapses to a point at ``t == T``,
    which is what lets the what-if advisor's bound get sharper with
    every trial it spends.
    """
    _require_positive(total_trials=total_trials)
    t = len(values)
    if t > total_trials:
        raise EstimationError(
            f"observed {t} trials of a {total_trials}-trial estimate")
    if t == 0:
        return prior
    mean_t = sum(values) / t
    if t == total_trials:
        return CFInterval(mean_t, mean_t, deterministic=True)
    remaining = total_trials - t
    low = (t * mean_t + remaining * prior.low) / total_trials
    high = (t * mean_t + remaining * prior.high) / total_trials
    return CFInterval(low, high, deterministic=prior.deterministic)


def theorem2_minimum_n(d_of_n, k: int, p: int, f: float,
                       epsilon: float, n_start: int = 2,
                       n_limit: int = 10**12) -> int:
    """Smallest ``n`` at which Theorem 2's bound drops below ``1 + eps``.

    ``d_of_n`` is the distinct-count function (the theorem quantifies
    over functions ``d(n) = o(n)``); doubling search against
    :func:`dict_small_d_bound`.
    """
    _require_positive(k=k, p=p, f=f, epsilon=epsilon)
    n = max(2, n_start)
    while n <= n_limit:
        d = max(1, int(d_of_n(n)))
        if d <= n and dict_small_d_bound(n, d, k, p, f).bound <= 1 + epsilon:
            return n
        n *= 2
    raise EstimationError(
        f"bound never reached 1 + {epsilon} below n = {n_limit}; "
        "is d(n) really o(n)?")
