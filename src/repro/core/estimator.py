"""Estimator protocol and the distinct-value plug-in family.

SampleCF is one member of a family: any compression-fraction estimator
consumes a sampled histogram and returns a CF estimate. This module
defines the shared protocol plus :class:`DistinctPlugInEstimator`, which
builds a dictionary-CF estimator out of *any* distinct-value estimator
(Chao, GEE, Shlosser, ...) via the simplified model
``CF_hat = d_hat/n + p/k``. The `abl-distinct` ablation races these
against SampleCF's implicit scale-up rule.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.constants import DEFAULT_POINTER_BYTES
from repro.errors import EstimationError
from repro.sampling.base import rows_for_fraction
from repro.sampling.rng import SeedLike, make_rng
from repro.sampling.row_samplers import WithReplacementSampler
from repro.core.cf_models import ColumnHistogram
from repro.core.distinct import (DISTINCT_ESTIMATORS,
                                 DistinctValueEstimator,
                                 dictionary_cf_from_distinct)


@runtime_checkable
class HistogramCFEstimator(Protocol):
    """Anything that can estimate a CF from a value histogram."""

    def estimate_histogram(self, histogram: ColumnHistogram,
                           fraction: float, seed: SeedLike = None):
        """Estimate the compression fraction by sampling ``histogram``."""
        ...  # pragma: no cover - protocol body


class DistinctPlugInEstimator:
    """Dictionary-CF estimator built from a distinct-value estimator.

    Draws the same uniform-with-replacement sample SampleCF draws, feeds
    the sample's frequency-of-frequencies into the chosen distinct-value
    estimator, and plugs the result into the simplified dictionary
    model. With the ``scale_up`` estimator this reproduces SampleCF's
    dictionary estimate exactly (tested), making the comparison fair.
    """

    def __init__(self, distinct: DistinctValueEstimator | str,
                 pointer_bytes: int = DEFAULT_POINTER_BYTES) -> None:
        if isinstance(distinct, str):
            try:
                distinct = DISTINCT_ESTIMATORS[distinct]
            except KeyError:
                raise EstimationError(
                    f"unknown distinct estimator {distinct!r}; known: "
                    f"{sorted(DISTINCT_ESTIMATORS)}") from None
        if pointer_bytes <= 0:
            raise EstimationError(
                f"pointer width must be positive, got {pointer_bytes}")
        self.distinct = distinct
        self.pointer_bytes = pointer_bytes
        self.name = f"dict_cf[{distinct.name}]"

    def estimate_histogram(self, histogram: ColumnHistogram,
                           fraction: float,
                           seed: SeedLike = None) -> float:
        """Sample, estimate ``d``, plug into ``d_hat/n + p/k``."""
        fixed = histogram.dtype.fixed_size
        if fixed is None:
            raise EstimationError(
                "the simplified dictionary model needs a fixed-width "
                "column")
        rng = make_rng(seed)
        r = rows_for_fraction(histogram.n, fraction)
        sample = WithReplacementSampler().sample_histogram(
            histogram, r, rng)
        d_hat = self.distinct.estimate_from_histogram(sample, histogram.n)
        return dictionary_cf_from_distinct(
            d_hat, histogram.n, fixed, self.pointer_bytes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DistinctPlugInEstimator({self.distinct.name!r})"
