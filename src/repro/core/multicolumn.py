"""Multi-column index support for the histogram fast path.

Section II-A: "In the case of multi-column indexes, each column is
compressed independently", and Section III notes the analysis "extends
for the case of multi-column indexes in a straightforward manner". This
module is that straightforward extension, made precise:

* a :class:`TableHistogram` holds one :class:`ColumnHistogram` per
  column (plus the fixed leaf-record width so paged models know the
  rows-per-page);
* the CF of the index is the byte-weighted combination of the
  per-column CFs::

      CF = sum_c compressed_c / sum_c uncompressed_c

* SampleCF over a table histogram draws one sample size ``r`` and
  applies the column-level model to each column's sampled histogram.

Modelling note: the columns of one sampled row are drawn together, so
per-column sampled histograms are *marginally* exact but jointly
correlated. Since each column's compressed size depends only on its own
marginal, the combined estimate has exactly the right expectation; only
the trial-to-trial variance of the *sum* can differ from the
independent-columns approximation used here when population columns are
correlated. The integration tests compare against the storage path on
real multi-column tables to validate the approximation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.constants import DEFAULT_PAGE_SIZE
from repro.errors import EstimationError
from repro.sampling.base import RowSampler, rows_for_fraction
from repro.sampling.rng import SeedLike, make_rng
from repro.sampling.row_samplers import WithReplacementSampler
from repro.compression.base import CompressionAlgorithm
from repro.compression.registry import get_algorithm
from repro.core.cf_models import ColumnHistogram


class TableHistogram:
    """Per-column value histograms of one index's leaf records."""

    def __init__(self, columns: Sequence[ColumnHistogram],
                 names: Sequence[str] | None = None) -> None:
        columns = list(columns)
        if not columns:
            raise EstimationError("need at least one column histogram")
        sizes = {histogram.n for histogram in columns}
        if len(sizes) != 1:
            raise EstimationError(
                f"column histograms disagree on row count: {sizes}")
        for histogram in columns:
            if histogram.dtype.fixed_size is None:
                raise EstimationError(
                    "multi-column models need fixed-width columns")
        if names is None:
            names = [f"c{i}" for i in range(len(columns))]
        names = list(names)
        if len(names) != len(columns):
            raise EstimationError(
                f"{len(names)} names for {len(columns)} columns")
        self.columns = tuple(columns)
        self.names = tuple(names)

    @property
    def n(self) -> int:
        """Rows in the index."""
        return self.columns[0].n

    @property
    def record_bytes(self) -> int:
        """Fixed leaf-record width: the sum of the column widths."""
        return sum(histogram.dtype.fixed_size
                   for histogram in self.columns)

    @property
    def total_bytes(self) -> int:
        """Uncompressed leaf payload: ``n * record_bytes``."""
        return self.n * self.record_bytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(
            f"{name}:{histogram.dtype.name}"
            for name, histogram in zip(self.names, self.columns))
        return f"TableHistogram(n={self.n}, [{inner}])"


def multicolumn_cf(table: TableHistogram,
                   algorithm: CompressionAlgorithm | str,
                   page_size: int = DEFAULT_PAGE_SIZE,
                   fill_factor: float = 1.0) -> float:
    """Exact CF of a multi-column index under the given algorithm.

    Each column contributes its own compressed bytes; paged algorithms
    see the *full record width* when computing rows per page, exactly
    as the engine packs leaves.

    Paged-model caveat: a clustered multi-column index sorts rows by the
    full key, so only the **leading** column is guaranteed to form
    contiguous runs. For trailing columns the paged dictionary/RLE
    models are upper approximations; the layout-free models (NS, global
    dictionary) are exact regardless. The integration tests quantify
    this against the engine.
    """
    if isinstance(algorithm, str):
        algorithm = get_algorithm(algorithm)
    record_bytes = table.record_bytes
    compressed = 0.0
    for histogram in table.columns:
        column_cf = algorithm.cf_from_histogram(
            histogram, page_size=page_size, record_bytes=record_bytes,
            fill_factor=fill_factor)
        compressed += column_cf * histogram.total_bytes
    return compressed / table.total_bytes


@dataclass(frozen=True)
class MultiColumnEstimate:
    """Outcome of a multi-column SampleCF run on the histogram path."""

    estimate: float
    sample_rows: int
    sampling_fraction: float
    algorithm: str
    per_column: dict


def sample_multicolumn_cf(table: TableHistogram, fraction: float,
                          algorithm: CompressionAlgorithm | str,
                          sampler: RowSampler | None = None,
                          page_size: int = DEFAULT_PAGE_SIZE,
                          fill_factor: float = 1.0,
                          seed: SeedLike = None) -> MultiColumnEstimate:
    """SampleCF for a multi-column index, column-independent model."""
    if isinstance(algorithm, str):
        algorithm = get_algorithm(algorithm)
    sampler = sampler if sampler is not None else WithReplacementSampler()
    rng = make_rng(seed)
    r = rows_for_fraction(table.n, fraction)
    record_bytes = table.record_bytes
    compressed = 0.0
    uncompressed = 0
    per_column: dict = {}
    for name, histogram in zip(table.names, table.columns):
        sample = sampler.sample_histogram(histogram, r, rng)
        column_cf = algorithm.cf_from_histogram(
            sample, page_size=page_size, record_bytes=record_bytes,
            fill_factor=fill_factor)
        per_column[name] = column_cf
        compressed += column_cf * sample.total_bytes
        uncompressed += sample.total_bytes
    return MultiColumnEstimate(
        estimate=compressed / uncompressed,
        sample_rows=r,
        sampling_fraction=fraction,
        algorithm=algorithm.name,
        per_column=per_column)


def table_histogram_from_table(table, columns: Sequence[str],
                               ) -> TableHistogram:
    """Build a :class:`TableHistogram` from a storage-engine table."""
    histograms = []
    for column in columns:
        dtype = table.schema[column].dtype
        histograms.append(ColumnHistogram.from_values(
            dtype, table.column_values(column)))
    return TableHistogram(histograms, names=columns)
